//! The MAX-SNP hardness machinery of Theorems 1 and 2, executed.
//!
//! ```sh
//! cargo run --release --example hardness_gadgets
//! ```
//!
//! * builds a random 3-regular graph, relabels it so no edge joins
//!   consecutive nodes (the Dirac-ordering step of the proof),
//! * translates it to a CSoP instance (Theorem 2) and verifies the
//!   correspondence `|U*| = 5n + |W*|` with exact solvers on both
//!   sides,
//! * reduces the paper's CSR example to UCSR (Lemma 1) and maps the
//!   optimum solution forward and back, demonstrating the
//!   score-preservation properties.

use fragalign::core::csop::{csop_solution_to_mis, mis_to_csop_solution, reduce_mis_to_csop};
use fragalign::core::ucsr::{map_solution_back, map_solution_forward, pairs_score, reduce_to_ucsr};
use fragalign::graph::{dirac_relabel, max_independent_set, random_regular};
use fragalign::model::Sym;

fn main() {
    // ---- Theorem 2: 3-MIS → CSoP --------------------------------------
    println!("== Theorem 2: 3-MIS → CSoP ==");
    let g0 = random_regular(10, 3, 42);
    let (g, _) = dirac_relabel(&g0, 42);
    println!(
        "3-regular graph: {} nodes, {} edges",
        g.len(),
        g.edge_count()
    );
    let inst = reduce_mis_to_csop(&g);
    println!(
        "CSoP instance: {} elements, {} pairs",
        inst.universe(),
        inst.pairs.len()
    );

    let w = max_independent_set(&g);
    let n = g.len() / 2;
    println!("max independent set |W*| = {}", w.len());

    let u = mis_to_csop_solution(&g, &w);
    assert!(inst.is_feasible(&u));
    println!(
        "forward map gives feasible U with |U| = {} = 5n + |W*| = {}",
        u.len(),
        5 * n + w.len()
    );

    let u_star = inst.solve_exact();
    println!("exact CSoP optimum |U*| = {}", u_star.len());
    assert_eq!(u_star.len(), 5 * n + w.len());

    let w_back = csop_solution_to_mis(&g, &inst.normalize(&u_star));
    println!(
        "backward map recovers independent set of size {}",
        w_back.len()
    );
    assert_eq!(w_back.len(), w.len());

    // ---- Lemma 1: CSR → UCSR -------------------------------------------
    println!("\n== Lemma 1: CSR → UCSR (φ₀, φ₁) ==");
    let csr = fragalign::model::instance::paper_example();
    for eps in [1.0, 0.5] {
        let red = reduce_to_ucsr(&csr, eps);
        println!(
            "ε = {eps}: K = {} letters, s = {}, |H'| fragment sizes: {:?}",
            red.k,
            red.s,
            red.ucsr.h.iter().map(Vec::len).collect::<Vec<_>>()
        );
        // The paper's optimum as aligned pairs: (a,s), (c,u), (d^R,v).
        let al = &csr.alphabet;
        let sym = |nm: &str| Sym::fwd(al.get(nm).unwrap());
        let pairs = vec![
            (sym("a"), sym("s")),
            (sym("c"), sym("u")),
            (sym("d").reversed(), sym("v")),
        ];
        let csr_score = pairs_score(&csr, &pairs);

        let f = map_solution_forward(&red, &pairs);
        let ucsr_score = red.ucsr.validate(&f).expect("forward map is valid");
        println!(
            "  forward: CSR score {csr_score} → UCSR score {ucsr_score} = s·{csr_score} ✓({})",
            ucsr_score == csr_score * red.s as i64
        );
        assert_eq!(ucsr_score, csr_score * red.s as i64);

        let back = map_solution_back(&red, &csr, &f);
        let back_score = pairs_score(&csr, &back);
        println!(
            "  backward: recovered CSR score {back_score} ≥ (1−ε)·{csr_score} ✓({})",
            back_score as f64 >= (1.0 - eps) * csr_score as f64
        );
        assert!(back_score as f64 >= (1.0 - eps) * csr_score as f64);
    }
    println!("\nConclusion (Thm 1): a c-approximation for UCSR yields one for CSR;\nCSoP ⊂ UCSR is MAX-SNP hard, so CSR admits no PTAS unless P = NP.");
}
