//! Quickstart: solve the paper's running example (Figs. 2, 4, 5).
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the instance from the introduction — contigs `h1 = ⟨a,b,c⟩`,
//! `h2 = ⟨d⟩`, `m1 = ⟨s,t⟩`, `m2 = ⟨u,v⟩` with alignment scores
//! `σ(a,s)=4, σ(a,t)=1, σ(b,t^R)=3, σ(c,u)=5, σ(d,t)=σ(d,v^R)=2` —
//! runs every solver in the library on it, and prints the resulting
//! order/orient layout. The optimum deletes `b` and `t`, reverses
//! `h2`, and scores 4 + 5 + 2 = 11.

use fragalign::prelude::*;

fn main() {
    let instance = fragalign::model::instance::paper_example();
    println!("== instance ==");
    for (tag, frags) in [("H", &instance.h), ("M", &instance.m)] {
        for f in frags {
            let regions: Vec<String> = f
                .regions
                .iter()
                .map(|&s| instance.alphabet.render(s))
                .collect();
            println!("  {tag} {}: ⟨{}⟩", f.name, regions.join(", "));
        }
    }

    println!("\n== solvers ==");
    let exact = solve_exact(&instance, ExactLimits::default());
    println!("  exact optimum              : {}", exact.score);

    let greedy = solve_greedy(&instance);
    println!("  greedy heuristic           : {}", greedy.total_score());

    let four = solve_four_approx(&instance);
    println!("  4-approx (Corollary 1)     : {}", four.total_score());

    let matching = border_matching_2approx(&instance);
    println!("  matching (Lemma 9)         : {}", matching.total_score());

    let improve = csr_improve(&instance, false);
    println!(
        "  CSR_Improve (3+ε, Thm 6)   : {} in {} rounds",
        improve.score, improve.rounds
    );

    println!("\n== layout of the CSR_Improve solution ==");
    let layout = LayoutBuilder::new(&instance, &DpAligner)
        .layout(&improve.matches)
        .expect("solver output is consistent");
    println!("{}", layout.render(&instance));
    println!(
        "\nlayout score: {} (paper's optimum: 11)",
        layout.score(&instance)
    );

    for (id, m) in improve.matches.iter() {
        println!(
            "  match #{id}: {:?} ~ {:?} ({:?}, score {})",
            m.h, m.m, m.orient, m.score
        );
    }
}
