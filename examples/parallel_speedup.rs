//! Parallel scaling of the alignment and improvement kernels.
//!
//! ```sh
//! cargo run --release --example parallel_speedup
//! ```
//!
//! The IPPS venue context: the paper's era evaluated on small
//! clusters; our substitute is shared-memory data parallelism. This
//! example measures the wavefront-parallel `P_score` DP and the
//! parallel improvement-attempt evaluation against their sequential
//! versions, asserting identical results (integer scores make the
//! parallel reduction exact).

use fragalign::align::{p_score, p_score_wavefront};
use fragalign::model::{ScoreTable, Sym};
use fragalign::par::{speedup_sweep, with_threads};
use fragalign::prelude::*;
use fragalign::sim::generate;

fn big_words(len: usize) -> (ScoreTable, Vec<Sym>, Vec<Sym>) {
    let mut t = ScoreTable::new();
    let mut state = 0x243F6A8885A308D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for a in 0..32u32 {
        for b in 0..32u32 {
            let r = next() % 9;
            if r > 4 {
                t.set(Sym::fwd(a), Sym::fwd(1000 + b), (r - 4) as i64);
            }
        }
    }
    let u: Vec<Sym> = (0..len).map(|_| Sym::fwd((next() % 32) as u32)).collect();
    let v: Vec<Sym> = (0..len)
        .map(|_| Sym::fwd(1000 + (next() % 32) as u32))
        .collect();
    (t, u, v)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("available cores: {cores}");

    // ---- wavefront DP --------------------------------------------------
    let (t, u, v) = big_words(1500);
    let sequential = p_score(&t, &u, &v);
    println!(
        "\n== wavefront P_score on {}×{} regions ==",
        u.len(),
        v.len()
    );
    println!("threads  time(ms)  speedup");
    let kernel = || p_score_wavefront(&t, &u, &v);
    for point in speedup_sweep(cores, &kernel) {
        println!(
            "{:>7}  {:>8.1}  {:>7.2}",
            point.threads,
            point.elapsed.as_secs_f64() * 1e3,
            point.speedup
        );
    }
    let (par_result, _) = with_threads(cores, kernel);
    assert_eq!(par_result, sequential, "parallel DP must be exact");

    // ---- improvement-attempt evaluation ---------------------------------
    println!("\n== CSR_Improve attempt evaluation ==");
    let sim = generate(&SimConfig {
        regions: 20,
        h_frags: 4,
        m_frags: 4,
        seed: 11,
        ..SimConfig::default()
    });
    println!("threads  time(ms)  score");
    let mut scores = Vec::new();
    let mut t_count = 1;
    while t_count <= cores {
        let inst = sim.instance.clone();
        let (res, elapsed) = with_threads(t_count, move || csr_improve(&inst, false).score);
        println!(
            "{:>7}  {:>8.1}  {res}",
            t_count,
            elapsed.as_secs_f64() * 1e3
        );
        scores.push(res);
        t_count *= 2;
    }
    assert!(
        scores.windows(2).all(|w| w[0] == w[1]),
        "improvement is deterministic across thread counts"
    );
}
