//! End-to-end genome scaffolding on simulated data.
//!
//! ```sh
//! cargo run --release --example genome_recovery
//! ```
//!
//! Simulates a pair of partially sequenced genomes (optionally at the
//! nucleotide level, deriving σ with the built-in Smith–Waterman
//! aligner), solves the CSR instance with the paper's algorithms, and
//! measures how much of the true contig order/orientation each solver
//! recovers as noise increases — the use case that motivates the paper
//! (its Fig. 1 and the manual study it cites).

use fragalign::prelude::*;
use fragalign::sim::DnaMode;

fn main() {
    println!("noise  algorithm   score   recall  order  orient islands");
    for noise in [0.0, 0.1, 0.2, 0.3] {
        for seed in [1u64, 2] {
            let cfg = SimConfig {
                regions: 18,
                h_frags: 3,
                m_frags: 3,
                loss_rate: noise,
                shuffles: (noise * 10.0) as usize,
                spurious: (noise * 10.0) as usize,
                seed,
                ..SimConfig::default()
            };
            let sim = generate(&cfg);
            for (name, matches) in [
                ("greedy", solve_greedy(&sim.instance)),
                ("four", solve_four_approx(&sim.instance)),
                ("csr", csr_improve(&sim.instance, false).matches),
            ] {
                let rep = evaluate_recovery(&sim, &matches);
                println!(
                    "{noise:>5.2}  {name:<10} {score:>6}  {recall:>6.2}  {order:>5.2}  {orient:>5.2} {islands:>7}",
                    score = matches.total_score(),
                    recall = rep.pair_recall,
                    order = rep.order_accuracy,
                    orient = rep.orient_accuracy,
                    islands = rep.islands,
                );
            }
        }
    }

    // Nucleotide mode: σ is *derived* by aligning simulated DNA.
    println!("\n== end-to-end DNA mode (σ from Smith–Waterman) ==");
    let sim = generate(&SimConfig {
        regions: 12,
        h_frags: 3,
        m_frags: 3,
        loss_rate: 0.05,
        dna: Some(DnaMode::default()),
        seed: 7,
        ..SimConfig::default()
    });
    let result = csr_improve(&sim.instance, false);
    let rep = evaluate_recovery(&sim, &result.matches);
    println!(
        "score {} | pair recall {:.2} | order {:.2} | orient {:.2}",
        result.score, rep.pair_recall, rep.order_accuracy, rep.orient_accuracy
    );
}
