//! The Fig. 1 scenario: inferring contig order and orientation.
//!
//! ```sh
//! cargo run --example orient_contigs
//! ```
//!
//! A human contig `h` contains regions `a … b`; region `a` aligns with
//! region `c` of mouse contig `m1`, and region `b` aligns with `d^R`
//! where `d` sits in mouse contig `m2`. The paper's Fig. 1 infers that
//! `m1` precedes `m2^R` relative to `h`'s orientation. This example
//! reproduces that inference computationally and then shows the Fig. 3
//! failure mode: alignments that no layout can satisfy, which the
//! consistency checker rejects and the optimiser resolves by dropping
//! the cheaper alignment.

use fragalign::model::check_consistency;
use fragalign::prelude::*;

fn main() {
    // ---- Fig. 1: order/orient inference ------------------------------
    let mut b = InstanceBuilder::new();
    b.h_frag("h", &["x1", "a", "x2", "b", "x3"]);
    b.m_frag("m1", &["y1", "c"]);
    b.m_frag("m2", &["d", "y2"]);
    b.score("a", "c", 10);
    b.score("b", "dR", 8);
    let instance = b.build();

    let result = csr_improve(&instance, false);
    let layout = LayoutBuilder::new(&instance, &DpAligner)
        .layout(&result.matches)
        .expect("consistent");
    println!("== Fig. 1 inference ==");
    println!("{}", layout.render(&instance));
    let m1 = layout.placement(FragId::m(0)).unwrap();
    let m2 = layout.placement(FragId::m(1)).unwrap();
    let h = layout.placement(FragId::h(0)).unwrap();
    println!(
        "\nh laid {}; m1 laid {} at {}..{}; m2 laid {} at {}..{}",
        dir(h.reversed),
        dir(m1.reversed),
        m1.span_start,
        m1.span_end,
        dir(m2.reversed),
        m2.span_start,
        m2.span_end,
    );
    // Relative to h's orientation: m1 forward before m2 reversed.
    assert_eq!(m1.reversed, h.reversed, "m1 keeps h's orientation");
    assert_ne!(m2.reversed, h.reversed, "m2 is reverse-complemented");
    assert!(m1.span_start < m2.span_start, "m1 precedes m2^R");
    println!("=> inferred: m1 precedes m2^R, as in Fig. 1");

    // ---- Fig. 3: inconsistent alignment sets --------------------------
    println!("\n== Fig. 3: inconsistency detection ==");
    // First example: a supports the current orientation of m, b calls
    // for a reversal. As matches these are two conflicting plugs of m.
    let mut b = InstanceBuilder::new();
    b.h_frag("h", &["a", "z", "b"]);
    b.m_frag("m", &["c", "d"]);
    b.score("a", "c", 5);
    b.score("b", "dR", 5);
    let conflicted = b.build();
    let bad = MatchSet::from_matches(vec![
        Match::new(
            Site::new(FragId::h(0), 0, 1),
            Site::new(FragId::m(0), 0, 1),
            Orient::Same,
            5,
        ),
        Match::new(
            Site::new(FragId::h(0), 2, 3),
            Site::new(FragId::m(0), 1, 2),
            Orient::Reversed,
            5,
        ),
    ]);
    match check_consistency(&conflicted, &bad) {
        Err(e) => println!("hand-built conflicting matches rejected: {e}"),
        Ok(_) => unreachable!("Fig. 3 example must be inconsistent"),
    }
    // The optimiser keeps the best consistent subset instead.
    let resolved = csr_improve(&conflicted, false);
    println!(
        "optimiser resolves the conflict with score {} (one of the two alignments)",
        resolved.score
    );
    assert!(resolved.score >= 5);
}

fn dir(rev: bool) -> &'static str {
    if rev {
        "reversed"
    } else {
        "forward"
    }
}
