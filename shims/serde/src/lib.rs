//! Offline shim of the `serde` API surface used by this workspace.
//!
//! The build container has no reachable crate registry (see
//! `shims/README.md`), so this crate implements a small
//! tree-structured data model ([`Value`]) with [`Serialize`] /
//! [`Deserialize`] traits that convert to and from it, plus derive
//! macros re-exported from the sibling `serde_derive` proc-macro
//! crate. The derive supports what the model crate needs: named
//! structs, unit and newtype enum variants, `#[serde(skip)]` on
//! fields, and `#[serde(from = "T", into = "T")]` on containers.
//! `serde_json` (also shimmed) prints and parses [`Value`] as JSON
//! with the same externally-tagged conventions real serde uses, so
//! instance files stay interchangeable with a future switch to the
//! real crates.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Integers (covers every integer type the workspace serializes).
    Int(i64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects as ordered key–value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup by key (linear; objects here are tiny).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Errors produced while deserializing.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str) -> Self {
        Error::custom(format!("missing field `{field}`"))
    }

    /// An enum tag did not name a known variant.
    pub fn unknown_variant(variant: &str) -> Self {
        Error::custom(format!("unknown variant `{variant}`"))
    }

    /// The value had the wrong shape.
    pub fn expected(what: &str) -> Self {
        Error::custom(format!("expected {what}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serialize `self` as a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool")),
        }
    }
}

macro_rules! impl_int_deserialize {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::expected(concat!("integer in range of ", stringify!($t)))),
                    _ => Err(Error::expected("integer")),
                }
            }
        }
    )*};
}

impl_int_deserialize!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_signed_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_signed_serialize!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                // The shim Value has no u64 arm; wrapping to a negative
                // integer would silently corrupt the wire format, so
                // oversized values fail loudly instead.
                Value::Int(i64::try_from(*self).expect(
                    concat!(stringify!($t), " value exceeds i64::MAX: unrepresentable in shim serde"),
                ))
            }
        }
    )*};
}

impl_unsigned_serialize!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(Error::expected("number")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(Deserialize::deserialize).collect(),
            _ => Err(Error::expected("array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("tuple array"))?;
                if items.len() != $n {
                    return Err(Error::expected(concat!("array of length ", stringify!($n))));
                }
                Ok(($($t::deserialize(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);
impl_tuple!(5 => A.0, B.1, C.2, D.3, E.4);
impl_tuple!(6 => A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-7i64).serialize()), Ok(-7));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, true), (2, false)];
        assert_eq!(Vec::<(u32, bool)>::deserialize(&v.serialize()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&o.serialize()), Ok(None));
    }

    #[test]
    fn out_of_range_int_rejected() {
        assert!(u8::deserialize(&Value::Int(300)).is_err());
    }

    #[test]
    fn value_passes_through_unchanged() {
        let v = Value::Object(vec![("k".to_string(), Value::Int(1))]);
        assert_eq!(v.serialize(), v);
        assert_eq!(Value::deserialize(&v), Ok(v));
    }
}
