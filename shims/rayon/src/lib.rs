//! Offline shim of the `rayon` API surface used by this workspace.
//!
//! The build container has no reachable crate registry (see
//! `shims/README.md`), so `par_iter` / `into_par_iter` /
//! `par_iter_mut` here hand back the corresponding *sequential*
//! iterators, and the rayon-only combinators (`with_min_len`,
//! `reduce_with`, `reduce`) are provided as extension methods on every
//! `Iterator`. All call sites in the workspace are deterministic
//! reductions, so the sequential semantics are observationally
//! identical; only the speedup disappears. Swapping in real rayon
//! later is a manifest change, not a code change.

/// A stand-in thread pool: jobs run inline on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `job` "on the pool" (directly, in this shim) and return its
    /// result.
    pub fn install<R>(&self, job: impl FnOnce() -> R) -> R {
        job()
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Error produced by [`ThreadPoolBuilder::build`] (never, in this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `threads` workers.
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Build the pool (infallible in this shim).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.threads.max(1),
        })
    }
}

/// The number of threads in the implicit global pool (always 1 here).
pub fn current_num_threads() -> usize {
    1
}

/// Run two closures, nominally in parallel (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    //! Traits that make `par_iter`-style calls resolve to sequential
    //! iterators. `use rayon::prelude::*` at a call site behaves like
    //! the real crate.

    /// By-value conversion: `into_par_iter` on anything iterable.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// The (sequential) iterator standing in for a parallel one.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T {}

    /// By-shared-reference conversion: `par_iter`.
    pub trait IntoParallelRefIterator<'data> {
        /// Iterator over `&Item`.
        type Iter: Iterator;
        /// Sequential stand-in for `par_iter`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// By-mutable-reference conversion: `par_iter_mut`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Iterator over `&mut Item`.
        type Iter: Iterator;
        /// Sequential stand-in for `par_iter_mut`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Rayon-only combinators, grafted onto every iterator so chains
    /// like `.par_iter().enumerate().filter_map(..).reduce_with(..)`
    /// type-check unchanged.
    pub trait ParallelIterator: Iterator + Sized {
        /// Chunking hint; a no-op sequentially.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// Rayon's `reduce_with`: fold all items with `op`, `None` when
        /// empty.
        fn reduce_with<F>(self, op: F) -> Option<Self::Item>
        where
            F: Fn(Self::Item, Self::Item) -> Self::Item,
        {
            Iterator::reduce(self, op)
        }

        /// Rayon's `map_init`: `init` runs once per worker (once total,
        /// sequentially) and its value is threaded mutably through
        /// `map_op` — the idiom for per-worker scratch buffers.
        fn map_init<INIT, T, F, R>(self, init: INIT, map_op: F) -> MapInit<Self, T, F>
        where
            INIT: Fn() -> T,
            F: Fn(&mut T, Self::Item) -> R,
        {
            MapInit {
                iter: self,
                state: init(),
                map_op,
            }
        }
    }

    /// Sequential stand-in for rayon's `MapInit` adaptor: one state
    /// value serves every item (the single "worker" of this shim).
    pub struct MapInit<I, T, F> {
        iter: I,
        state: T,
        map_op: F,
    }

    impl<I, T, F, R> Iterator for MapInit<I, T, F>
    where
        I: Iterator,
        F: Fn(&mut T, I::Item) -> R,
    {
        type Item = R;

        fn next(&mut self) -> Option<R> {
            let item = self.iter.next()?;
            Some((self.map_op)(&mut self.state, item))
        }
    }

    impl<I: Iterator> ParallelIterator for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chains_behave_sequentially() {
        let v = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        assert_eq!((0..1000i64).into_par_iter().sum::<i64>(), 499_500);
        let best = v
            .par_iter()
            .enumerate()
            .filter_map(|(i, &x)| (x > 1).then_some((x, i)))
            .reduce_with(|a, b| if b.0 > a.0 { b } else { a });
        assert_eq!(best, Some((5, 4)));
    }

    #[test]
    fn map_init_threads_state_through() {
        let out: Vec<usize> = (0..5usize)
            .into_par_iter()
            .map_init(Vec::new, |buf: &mut Vec<usize>, x| {
                buf.push(x);
                buf.len() * 10 + x
            })
            .collect();
        // The single sequential "worker" sees its state grow per item.
        assert_eq!(out, vec![10, 21, 32, 43, 54]);
    }

    #[test]
    fn par_iter_mut_writes_through() {
        let mut v = vec![0usize; 8];
        v.par_iter_mut()
            .with_min_len(4)
            .enumerate()
            .for_each(|(i, cell)| *cell = i * i);
        assert_eq!(v[7], 49);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 21 * 2), 42);
        assert_eq!(pool.current_num_threads(), 4);
    }
}
