//! Offline shim of the `rayon` API surface used by this workspace —
//! now backed by a **real fixed-size thread pool**.
//!
//! The build container has no reachable crate registry (see
//! `shims/README.md`), so this crate stands in for rayon. Unlike the
//! earlier inline-sequential shim, parallel iterators here genuinely
//! execute on `std::thread` workers fed through the crossbeam channel
//! shim:
//!
//! * a [`ThreadPool`] spawns `threads - 1` persistent workers at build
//!   time (the thread invoking a parallel operation always participates
//!   as the remaining worker, so a 1-thread pool runs everything on the
//!   caller with no cross-thread traffic);
//! * every parallel operation snapshots its input into **deterministic
//!   index-ordered chunks**; idle workers steal the next chunk from a
//!   shared counter, and results are stitched back together in chunk
//!   order. Per-item work is pure (or scratch-only, for `map_init`
//!   state), so output is bit-identical for any thread count and any
//!   steal interleaving;
//! * reductions (`reduce`, `reduce_with`, `sum`) collect the ordered
//!   item stream first and fold it sequentially on the caller — the
//!   exact fold order of a sequential iterator, so even non-associative
//!   operators cannot introduce thread-count dependence;
//! * nested parallel operations (a parallel solve inside a parallel
//!   batch) run inline on the worker that encountered them, which keeps
//!   the pool deadlock-free without rayon's work-stealing re-entrancy
//!   machinery.
//!
//! The public surface mirrors the real crate (`ThreadPoolBuilder`,
//! `install`, `into_par_iter`/`par_iter`/`par_iter_mut`, `map`,
//! `map_init`, `filter_map`, `enumerate`, `with_min_len`, `for_each`,
//! `collect`, `reduce`, `reduce_with`, `sum`), so every call site
//! compiles unchanged against crates.io rayon — swapping the real crate
//! back in stays a manifest-only change. As in real rayon, `enumerate`
//! is only meaningful on index-stable ("indexed") chains: applying it
//! after a length-changing adaptor like `filter_map` is a type error
//! upstream and unsupported here.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crossbeam::channel;

// ---------------------------------------------------------------------------
// Pool plumbing
// ---------------------------------------------------------------------------

/// Lifetime-erased pointer to a parallel operation's body. Soundness
/// contract: [`run_on`] never returns while any worker still holds the
/// pointer (it invalidates the job, then waits for active helpers), so
/// the erased borrow never outlives the frame that owns the closure.
#[derive(Clone, Copy)]
struct OpPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` and `run_on` joins every helper before
// the pointed-to closure can go out of scope (see `OpPtr` docs).
unsafe impl Send for OpPtr {}
// SAFETY: as above; shared access is to a `Sync` closure.
unsafe impl Sync for OpPtr {}

struct JobState {
    /// The operation, present until the owning `run_on` retires it.
    op: Option<OpPtr>,
    /// Helpers currently executing the operation.
    active: usize,
    /// First panic payload raised by a helper, if any.
    payload: Option<Box<dyn Any + Send>>,
}

/// One broadcast parallel operation: workers that pop it from the pool
/// channel call the operation (which steals chunks until none remain),
/// and the submitting thread waits for `active` to drain.
struct Job {
    state: Mutex<JobState>,
    done: Condvar,
}

impl Job {
    fn new(op: &(dyn Fn() + Sync)) -> Arc<Job> {
        // SAFETY: erase the borrow's lifetime; `run_on` upholds the
        // `OpPtr` contract by retiring the job before returning.
        let ptr = OpPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync)>(op)
        });
        Arc::new(Job {
            state: Mutex::new(JobState {
                op: Some(ptr),
                active: 0,
                payload: None,
            }),
            done: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Run the operation as a helper, if the job is still live. A
    /// worker may encounter the same job twice (duplicate wake
    /// tokens); re-entry is harmless because the operation is a
    /// steal-loop over a shared chunk counter.
    fn help(&self) {
        let ptr = {
            let mut st = self.lock();
            match st.op {
                Some(p) => {
                    st.active += 1;
                    p
                }
                None => return,
            }
        };
        // SAFETY: `op` was still live above, and `active` was raised
        // under the lock, so `run_on` cannot return (and the closure
        // cannot be dropped) until we decrement it below.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*ptr.0)() }));
        let mut st = self.lock();
        st.active -= 1;
        if let Err(payload) = result {
            st.payload.get_or_insert(payload);
        }
        self.done.notify_all();
    }

    /// Invalidate the operation pointer and wait for in-flight helpers
    /// to drain. Returns a helper panic payload, if one was caught.
    fn retire(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = self.lock();
        st.op = None;
        while st.active > 0 {
            st = self.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.payload.take()
    }
}

/// Shared half of a pool: the worker wake channel plus the configured
/// width. Kept behind `Arc` so `install` can pin it as the current pool
/// without borrowing the `ThreadPool` itself.
struct PoolShared {
    /// Total concurrency of the pool, caller included.
    threads: usize,
    /// Wake channel; `None` once the owning pool began shutdown.
    tx: Mutex<Option<channel::Sender<Arc<Job>>>>,
}

impl PoolShared {
    /// Offer `job` to up to `n` workers; quietly drops tokens when the
    /// queue is full (busy workers will not be helped by more tokens)
    /// or the pool is shutting down (the caller runs the job alone).
    fn wake(&self, job: &Arc<Job>, n: usize) {
        let guard = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(tx) = guard.as_ref() {
            for _ in 0..n {
                if tx.try_send(Arc::clone(job)).is_err() {
                    break;
                }
            }
        }
    }
}

thread_local! {
    /// True while this thread is executing inside a parallel operation
    /// (as pool worker or as submitting caller); nested operations run
    /// inline instead of re-entering the pool.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// Stack of `install`ed pools; parallel operations submit to the
    /// innermost one, falling back to the global pool.
    static CURRENT_POOL: RefCell<Vec<Arc<PoolShared>>> = const { RefCell::new(Vec::new()) };
}

/// Run `op` to completion: wake up to `threads - 1` pool workers to
/// help, participate from the calling thread, then join the helpers.
/// Panics from any participant propagate to the caller.
fn run_on(shared: &PoolShared, op: &(dyn Fn() + Sync)) {
    let job = Job::new(op);
    shared.wake(&job, shared.threads.saturating_sub(1));
    let caller = {
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                IN_PARALLEL.with(|f| f.set(false));
            }
        }
        IN_PARALLEL.with(|f| f.set(true));
        let _guard = Guard;
        catch_unwind(AssertUnwindSafe(op))
    };
    let helper_payload = job.retire();
    // The job is fully retired: no worker can touch `op` anymore, so
    // unwinding (or returning) is safe from here on.
    if let Err(payload) = caller {
        resume_unwind(payload);
    }
    if let Some(payload) = helper_payload {
        resume_unwind(payload);
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("global pool construction is infallible")
    })
}

/// The shared state of the pool a parallel operation should use: the
/// innermost `install`ed pool, else the global one.
fn current_shared() -> Arc<PoolShared> {
    CURRENT_POOL.with(|stack| {
        stack
            .borrow()
            .last()
            .map(Arc::clone)
            .unwrap_or_else(|| Arc::clone(&global_pool().shared))
    })
}

// ---------------------------------------------------------------------------
// Public pool API
// ---------------------------------------------------------------------------

/// A fixed-size thread pool: `threads - 1` persistent `std::thread`
/// workers blocking on a crossbeam channel, plus the submitting thread
/// itself. Dropping the pool closes the channel and joins the workers.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.shared.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Run `job` with this pool as the current one: parallel iterators
    /// inside `job` distribute their chunks over this pool's workers.
    /// The job itself executes on the calling thread.
    pub fn install<R>(&self, job: impl FnOnce() -> R) -> R {
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                CURRENT_POOL.with(|stack| {
                    stack.borrow_mut().pop();
                });
            }
        }
        CURRENT_POOL.with(|stack| stack.borrow_mut().push(Arc::clone(&self.shared)));
        let _guard = Guard;
        job()
    }

    /// The configured worker count (submitting caller included).
    pub fn current_num_threads(&self) -> usize {
        self.shared.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the wake channel (even if `install` clones of the
        // shared state are still alive somewhere), then join.
        *self.shared.tx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Error produced by [`ThreadPoolBuilder::build`] (never, in this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (one thread per available core).
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `threads` workers; `0` (the default) means one per
    /// available core, as in real rayon.
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Build the pool, spawning its persistent workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        };
        let (tx, rx) = channel::bounded::<Arc<Job>>(threads * 2 + 4);
        let workers = (1..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || {
                        // Worker threads only ever run inside parallel
                        // operations; nested ones must go inline.
                        IN_PARALLEL.with(|f| f.set(true));
                        while let Ok(job) = rx.recv() {
                            job.help();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Ok(ThreadPool {
            shared: Arc::new(PoolShared {
                threads,
                tx: Mutex::new(Some(tx)),
            }),
            workers,
        })
    }
}

/// The width of the pool parallel operations currently submit to.
pub fn current_num_threads() -> usize {
    current_shared().threads
}

/// Run two closures, nominally in parallel. Executed sequentially here:
/// no workspace call site uses `join`, and the fork overhead would not
/// pay for itself at this granularity.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

// ---------------------------------------------------------------------------
// Parallel iterators
// ---------------------------------------------------------------------------

pub mod prelude {
    //! Traits making `par_iter`-style chains execute on the shim's
    //! thread pool. `use rayon::prelude::*` at a call site behaves like
    //! the real crate.

    use super::{current_shared, run_on, IN_PARALLEL};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    /// Chunks handed to one participating worker: a sequential
    /// evaluator from a slice of base items (with its global start
    /// offset) to the pipeline's output items. Created per worker, so
    /// `map_init` state lives exactly once per participant.
    pub type ChunkFn<'a, B, T> = Box<dyn FnMut(usize, Vec<B>) -> Vec<T> + 'a>;

    /// Per-worker [`ChunkFn`] factory; shared read-only across the
    /// pool, invoked once by each participating worker.
    pub type ChunkFactory<'a, B, T> = Box<dyn Fn() -> ChunkFn<'a, B, T> + Send + Sync + 'a>;

    /// A decomposed parallel pipeline: the materialised base items plus
    /// the per-worker evaluator factory.
    pub struct Parts<'a, B, T> {
        /// The pipeline's input, in order.
        pub base: Vec<B>,
        /// Smallest chunk the pipeline wants (`with_min_len`).
        pub min_len: usize,
        /// Per-worker evaluator factory.
        pub factory: ChunkFactory<'a, B, T>,
    }

    /// How many chunks each pool worker would ideally steal; >1 gives
    /// the steal-loop room to balance uneven per-item cost.
    const CHUNKS_PER_WORKER: usize = 4;

    /// Execute a pipeline over the current pool and return its output
    /// in input order. Runs inline (no pool traffic) when the input is
    /// trivial, the pool has one thread, or we are already inside a
    /// parallel operation.
    fn drive<P: ParallelIterator>(iter: P) -> Vec<P::Item> {
        let Parts {
            base,
            min_len,
            factory,
        } = iter.decompose();
        let len = base.len();
        let shared = current_shared();
        let inline = len <= 1 || shared.threads <= 1 || IN_PARALLEL.with(|f| f.get());
        if inline {
            return (factory)()(0, base);
        }
        let chunk = len
            .div_ceil(shared.threads * CHUNKS_PER_WORKER)
            .max(min_len.max(1));
        if chunk >= len {
            return (factory)()(0, base);
        }
        // Deterministic index-ordered chunks: slot i covers base range
        // [i*chunk, ...); which worker evaluates a chunk never matters.
        let n_chunks = len.div_ceil(chunk);
        let mut items = base.into_iter();
        let mut tasks = Vec::with_capacity(n_chunks);
        let mut start = 0;
        while start < len {
            let take = chunk.min(len - start);
            let piece: Vec<P::Base> = items.by_ref().take(take).collect();
            tasks.push(Mutex::new(Some((start, piece))));
            start += take;
        }
        let slots: Vec<Mutex<Option<Vec<P::Item>>>> =
            (0..n_chunks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let op = || {
            let mut eval = (factory)();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                let (off, piece) = tasks[i]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each chunk is stolen exactly once");
                let out = eval(off, piece);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            }
        };
        run_on(&shared, &op);
        let mut out = Vec::with_capacity(len);
        for slot in slots {
            out.extend(
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every chunk completed"),
            );
        }
        out
    }

    /// The parallel-iterator interface: adaptors build a lazy pipeline,
    /// consumers execute it over the current pool. Semantics match real
    /// rayon, with one strengthening: reductions fold the ordered item
    /// stream sequentially, so results are bit-identical at any thread
    /// count even for non-associative operators.
    pub trait ParallelIterator: Sized + Send {
        /// The materialised input element type.
        type Base: Send;
        /// The pipeline's output element type.
        type Item: Send;

        /// Split into base items plus a per-worker chunk evaluator
        /// (shim plumbing; call sites never need this).
        fn decompose<'a>(self) -> Parts<'a, Self::Base, Self::Item>
        where
            Self: 'a;

        /// Transform each item.
        fn map<F, R>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> R + Send + Sync,
            R: Send,
        {
            Map { inner: self, f }
        }

        /// Rayon's `map_init`: `init` runs once per participating
        /// worker and its value threads mutably through every item that
        /// worker evaluates — the idiom for per-worker scratch buffers.
        /// State contents must never influence results (only speed), or
        /// output would depend on the steal schedule.
        fn map_init<INIT, T, F, R>(self, init: INIT, f: F) -> MapInit<Self, INIT, F, T>
        where
            INIT: Fn() -> T + Send + Sync,
            F: Fn(&mut T, Self::Item) -> R + Send + Sync,
            R: Send,
        {
            MapInit {
                inner: self,
                init,
                f,
                _state: std::marker::PhantomData,
            }
        }

        /// Transform and filter in one pass.
        fn filter_map<F, R>(self, f: F) -> FilterMap<Self, F>
        where
            F: Fn(Self::Item) -> Option<R> + Send + Sync,
            R: Send,
        {
            FilterMap { inner: self, f }
        }

        /// Pair each item with its global index. As in real rayon
        /// (where this lives on `IndexedParallelIterator`), only valid
        /// on index-stable chains — apply it before any `filter_map`.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { inner: self }
        }

        /// Lower bound on chunk size, as real rayon's `with_min_len`.
        fn with_min_len(self, min: usize) -> WithMinLen<Self> {
            WithMinLen { inner: self, min }
        }

        /// Consume every item for its side effects.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Send + Sync,
        {
            drive(self.map(f));
        }

        /// Execute the pipeline and collect its ordered output.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            drive(self).into_iter().collect()
        }

        /// Fold all items with `op` in input order; `None` when empty.
        fn reduce_with<OP>(self, op: OP) -> Option<Self::Item>
        where
            OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
        {
            drive(self).into_iter().reduce(op)
        }

        /// Fold all items onto `identity()` in input order.
        fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
        where
            ID: Fn() -> Self::Item + Send + Sync,
            OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
        {
            drive(self).into_iter().fold(identity(), op)
        }

        /// Sum all items in input order.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item>,
        {
            drive(self).into_iter().sum()
        }

        /// Number of items the pipeline produces.
        fn count(self) -> usize {
            drive(self).len()
        }
    }

    /// The base of every pipeline: materialised input items.
    pub struct VecParIter<B> {
        items: Vec<B>,
    }

    impl<B: Send> ParallelIterator for VecParIter<B> {
        type Base = B;
        type Item = B;

        fn decompose<'a>(self) -> Parts<'a, B, B>
        where
            Self: 'a,
        {
            Parts {
                base: self.items,
                min_len: 1,
                factory: Box::new(|| Box::new(|_off, piece| piece)),
            }
        }
    }

    /// See [`ParallelIterator::map`].
    pub struct Map<P, F> {
        inner: P,
        f: F,
    }

    impl<P, F, R> ParallelIterator for Map<P, F>
    where
        P: ParallelIterator,
        F: Fn(P::Item) -> R + Send + Sync,
        R: Send,
    {
        type Base = P::Base;
        type Item = R;

        fn decompose<'a>(self) -> Parts<'a, P::Base, R>
        where
            Self: 'a,
        {
            let parts = self.inner.decompose();
            let inner_factory = parts.factory;
            let f = Arc::new(self.f);
            Parts {
                base: parts.base,
                min_len: parts.min_len,
                factory: Box::new(move || {
                    let mut inner = inner_factory();
                    let f = Arc::clone(&f);
                    Box::new(move |off, piece| {
                        inner(off, piece).into_iter().map(|x| f(x)).collect()
                    })
                }),
            }
        }
    }

    /// See [`ParallelIterator::map_init`]. The phantom parameter pins
    /// the per-worker state type into `Self`, so `Self: 'a` carries
    /// the `T: 'a` bound the boxed chunk evaluator needs.
    pub struct MapInit<P, INIT, F, T> {
        inner: P,
        init: INIT,
        f: F,
        _state: std::marker::PhantomData<fn() -> T>,
    }

    impl<P, INIT, T, F, R> ParallelIterator for MapInit<P, INIT, F, T>
    where
        P: ParallelIterator,
        INIT: Fn() -> T + Send + Sync,
        F: Fn(&mut T, P::Item) -> R + Send + Sync,
        R: Send,
    {
        type Base = P::Base;
        type Item = R;

        fn decompose<'a>(self) -> Parts<'a, P::Base, R>
        where
            Self: 'a,
        {
            let parts = self.inner.decompose();
            let inner_factory = parts.factory;
            let init = Arc::new(self.init);
            let f = Arc::new(self.f);
            Parts {
                base: parts.base,
                min_len: parts.min_len,
                factory: Box::new(move || {
                    let mut inner = inner_factory();
                    // Per-worker state: created on the worker's first
                    // chunk, reused for every chunk it steals.
                    let mut state = (init)();
                    let f = Arc::clone(&f);
                    Box::new(move |off, piece| {
                        inner(off, piece)
                            .into_iter()
                            .map(|x| f(&mut state, x))
                            .collect()
                    })
                }),
            }
        }
    }

    /// See [`ParallelIterator::filter_map`].
    pub struct FilterMap<P, F> {
        inner: P,
        f: F,
    }

    impl<P, F, R> ParallelIterator for FilterMap<P, F>
    where
        P: ParallelIterator,
        F: Fn(P::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        type Base = P::Base;
        type Item = R;

        fn decompose<'a>(self) -> Parts<'a, P::Base, R>
        where
            Self: 'a,
        {
            let parts = self.inner.decompose();
            let inner_factory = parts.factory;
            let f = Arc::new(self.f);
            Parts {
                base: parts.base,
                min_len: parts.min_len,
                factory: Box::new(move || {
                    let mut inner = inner_factory();
                    let f = Arc::clone(&f);
                    Box::new(move |off, piece| {
                        inner(off, piece).into_iter().filter_map(|x| f(x)).collect()
                    })
                }),
            }
        }
    }

    /// See [`ParallelIterator::enumerate`].
    pub struct Enumerate<P> {
        inner: P,
    }

    impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
        type Base = P::Base;
        type Item = (usize, P::Item);

        fn decompose<'a>(self) -> Parts<'a, P::Base, (usize, P::Item)>
        where
            Self: 'a,
        {
            let parts = self.inner.decompose();
            let inner_factory = parts.factory;
            Parts {
                base: parts.base,
                min_len: parts.min_len,
                factory: Box::new(move || {
                    let mut inner = inner_factory();
                    Box::new(move |off, piece| {
                        let fed = piece.len();
                        let produced = inner(off, piece);
                        // Real rayon rejects this at the type level
                        // (enumerate needs IndexedParallelIterator);
                        // the shim can only catch it at runtime.
                        debug_assert_eq!(
                            produced.len(),
                            fed,
                            "enumerate requires an index-stable (1:1) chain — \
                             apply it before filter_map"
                        );
                        produced
                            .into_iter()
                            .enumerate()
                            .map(move |(i, x)| (off + i, x))
                            .collect()
                    })
                }),
            }
        }
    }

    /// See [`ParallelIterator::with_min_len`].
    pub struct WithMinLen<P> {
        inner: P,
        min: usize,
    }

    impl<P: ParallelIterator> ParallelIterator for WithMinLen<P> {
        type Base = P::Base;
        type Item = P::Item;

        fn decompose<'a>(self) -> Parts<'a, P::Base, P::Item>
        where
            Self: 'a,
        {
            let mut parts = self.inner.decompose();
            parts.min_len = parts.min_len.max(self.min);
            parts
        }
    }

    /// By-value conversion: `into_par_iter` on anything iterable.
    pub trait IntoParallelIterator: IntoIterator + Sized
    where
        Self::Item: Send,
    {
        /// Materialise and wrap as the base of a parallel pipeline.
        fn into_par_iter(self) -> VecParIter<Self::Item> {
            VecParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T where T::Item: Send {}

    /// By-shared-reference conversion: `par_iter`.
    pub trait IntoParallelRefIterator<'data> {
        /// The parallel iterator over `&Item`.
        type Iter: ParallelIterator;
        /// Parallel iteration over shared references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: Send,
    {
        type Iter = VecParIter<<&'data C as IntoIterator>::Item>;

        fn par_iter(&'data self) -> Self::Iter {
            VecParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// By-mutable-reference conversion: `par_iter_mut`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The parallel iterator over `&mut Item`.
        type Iter: ParallelIterator;
        /// Parallel iteration over mutable references.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
        <&'data mut C as IntoIterator>::Item: Send,
    {
        type Iter = VecParIter<<&'data mut C as IntoIterator>::Item>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            VecParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn pool(n: usize) -> super::ThreadPool {
        super::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    }

    #[test]
    fn par_chains_are_ordered_at_any_width() {
        let v = vec![3, 1, 4, 1, 5];
        for n in [1, 2, 8] {
            pool(n).install(|| {
                let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
                assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
                assert_eq!((0..1000i64).into_par_iter().sum::<i64>(), 499_500);
                let best = v
                    .par_iter()
                    .enumerate()
                    .filter_map(|(i, &x)| (x > 1).then_some((x, i)))
                    .reduce_with(|a, b| if b.0 > a.0 { b } else { a });
                assert_eq!(best, Some((5, 4)));
            });
        }
    }

    #[test]
    fn map_init_state_is_scratch_only() {
        // Per-worker state must never leak into results; only the
        // mapped values matter, at every pool width.
        for n in [1, 3, 8] {
            let out: Vec<usize> = pool(n).install(|| {
                (0..100usize)
                    .into_par_iter()
                    .map_init(Vec::new, |buf: &mut Vec<usize>, x| {
                        buf.push(x); // scratch: grows per worker, unobserved
                        x * 3
                    })
                    .collect()
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_iter_mut_writes_through() {
        let mut v = vec![0usize; 256];
        pool(4).install(|| {
            v.par_iter_mut()
                .with_min_len(4)
                .enumerate()
                .for_each(|(i, cell)| *cell = i * i);
        });
        assert_eq!(v[7], 49);
        assert_eq!(v[255], 255 * 255);
    }

    #[test]
    fn pool_runs_real_threads() {
        // With enough blocked tasks the pool must use >1 distinct
        // thread; with a 1-thread pool everything stays on the caller.
        let seen = Mutex::new(std::collections::HashSet::new());
        pool(4).install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        assert!(seen.lock().unwrap().len() > 1, "no worker ever helped");
        let seen1 = Mutex::new(std::collections::HashSet::new());
        let caller = std::thread::current().id();
        pool(1).install(|| {
            (0..16usize).into_par_iter().for_each(|_| {
                seen1.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert_eq!(
            *seen1.lock().unwrap(),
            std::collections::HashSet::from([caller]),
            "1-thread pool must stay on the caller"
        );
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        let outer_calls = AtomicUsize::new(0);
        let sums: Vec<i64> = pool(4).install(|| {
            (0..8i64)
                .into_par_iter()
                .map(|i| {
                    outer_calls.fetch_add(1, Ordering::Relaxed);
                    // Nested op: must complete inline without deadlock.
                    (0..100i64).into_par_iter().map(|x| x + i).sum::<i64>()
                })
                .collect()
        });
        assert_eq!(outer_calls.load(Ordering::Relaxed), 8);
        assert_eq!(sums[0], 4950);
        assert_eq!(sums[7], 4950 + 700);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 33 {
                        panic!("boom at {i}");
                    }
                });
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool (and the global state) survives for the next op.
        let ok: Vec<usize> = pool(2).install(|| (0..8usize).into_par_iter().collect());
        assert_eq!(ok.len(), 8);
    }

    #[test]
    fn results_identical_across_widths() {
        // The bit-identical contract: same pipeline, pools of 1/2/8
        // threads, identical output (non-associative reduce included).
        let run = |n: usize| {
            pool(n).install(|| {
                let mapped: Vec<i64> = (0..500i64).into_par_iter().map(|x| x * x % 97).collect();
                let reduced = (0..500i64)
                    .into_par_iter()
                    .map(|x| x % 13)
                    // Deliberately non-associative.
                    .reduce_with(|a, b| a - b);
                (mapped, reduced)
            })
        };
        let base = run(1);
        assert_eq!(base, run(2));
        assert_eq!(base, run(8));
    }

    #[test]
    fn pool_installs_on_caller_and_reports_width() {
        let pool = pool(4);
        assert_eq!(pool.install(|| 21 * 2), 42);
        assert_eq!(pool.current_num_threads(), 4);
        assert!(super::current_num_threads() >= 1);
    }
}
