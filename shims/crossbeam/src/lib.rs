//! Offline shim of the `crossbeam` API surface used by this workspace
//! (see `shims/README.md`): bounded MPMC-ish channels over
//! `std::sync::mpsc::sync_channel` and scoped threads over
//! `std::thread::scope`. Unlike the sequential rayon shim, this one is
//! genuinely concurrent — `fragalign-par`'s pipeline really overlaps
//! its producer and consumer.

use std::any::Any;

pub mod channel {
    //! Bounded channels with crossbeam's `bounded` constructor.

    use std::sync::mpsc::{Receiver as StdReceiver, SyncSender};
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a bounded channel.
    pub struct Sender<T>(SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(StdReceiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued; `Err` when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        /// Block for the next value; `Err` when empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Iterate until every sender is dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// A channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

/// Handle for spawning threads inside a [`scope`] call. Mirrors
/// crossbeam's scope type, whose spawn closures receive the scope
/// again for nested spawning.
pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread; it is joined when the scope ends.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.0;
        self.0.spawn(move || f(&Scope(inner)))
    }
}

/// Create a scope in which borrowing, auto-joined threads can be
/// spawned. Returns `Ok` with the closure's value; a child-thread
/// panic propagates as a panic at the end of the scope (crossbeam
/// would return `Err` instead — every call site here unwraps, so the
/// observable behaviour matches).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope(s))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_consumer_roundtrip() {
        let (tx, rx) = channel::bounded(4);
        let sum = scope(|s| {
            s.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            rx.iter().sum::<i64>()
        })
        .unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn nested_spawn_compiles() {
        let done = scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(done, 7);
    }
}
