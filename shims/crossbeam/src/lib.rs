//! Offline shim of the `crossbeam` API surface used by this workspace
//! (see `shims/README.md`): bounded MPMC-ish channels over
//! `std::sync::mpsc::sync_channel` and scoped threads over
//! `std::thread::scope`. Unlike the sequential rayon shim, this one is
//! genuinely concurrent — `fragalign-par`'s pipeline really overlaps
//! its producer and consumer.

use std::any::Any;

pub mod channel {
    //! Bounded channels with crossbeam's `bounded` constructor.
    //!
    //! Crossbeam channels are MPMC: both halves clone. std's
    //! `sync_channel` is MPSC, so the receiving half here serialises
    //! cloned consumers through a mutex — exactly one consumer blocks
    //! in `recv` at a time and the rest queue on the lock, which
    //! preserves crossbeam's semantics (every message delivered to
    //! exactly one receiver) at some fairness cost. That design is
    //! also why `try_recv`/`recv_timeout` are deliberately *absent*:
    //! with a consumer parked inside `recv` holding the lock, a
    //! "non-blocking" probe would block on the mutex — a hang real
    //! crossbeam can never produce. They can be added alongside a
    //! lock-free receiver if something ever needs them.

    use std::sync::mpsc::{Receiver as StdReceiver, SyncSender};
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};
    use std::sync::{Arc, Mutex};

    /// Sending half of a bounded channel.
    pub struct Sender<T>(SyncSender<T>);

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(Arc<Mutex<StdReceiver<T>>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued; `Err` when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Enqueue without blocking: `Err(Full)` when the channel is
        /// at capacity — the backpressure probe a bounded worker queue
        /// rejects on — and `Err(Disconnected)` when no receiver is
        /// left.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, StdReceiver<T>> {
            // The std receiver never panics mid-`recv`, so a poisoned
            // lock only follows a panic elsewhere; recover the guard.
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Block for the next value; `Err` when empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv()
        }

        /// Iterate until every sender is dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received values (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator over received values.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            IntoIter { rx: self }
        }
    }

    /// A channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

/// Handle for spawning threads inside a [`scope`] call. Mirrors
/// crossbeam's scope type, whose spawn closures receive the scope
/// again for nested spawning.
pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread; it is joined when the scope ends.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.0;
        self.0.spawn(move || f(&Scope(inner)))
    }
}

/// Create a scope in which borrowing, auto-joined threads can be
/// spawned. Returns `Ok` with the closure's value; a child-thread
/// panic propagates as a panic at the end of the scope (crossbeam
/// would return `Err` instead — every call site here unwraps, so the
/// observable behaviour matches).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope(s))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_consumer_roundtrip() {
        let (tx, rx) = channel::bounded(4);
        let sum = scope(|s| {
            s.spawn(move |_| {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            rx.iter().sum::<i64>()
        })
        .unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn try_send_reports_full_and_cloned_receivers_share_work() {
        let (tx, rx) = channel::bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        let rx2 = rx.clone();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        // Each message is delivered to exactly one consumer.
        assert_eq!([a, b], [1, 2]);
        drop(tx);
        assert!(rx.recv().is_err());
        assert!(rx2.recv().is_err());
    }

    #[test]
    fn nested_spawn_compiles() {
        let done = scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 7).join().unwrap());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(done, 7);
    }
}
