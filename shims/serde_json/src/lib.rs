//! Offline shim of the `serde_json` API surface used by this
//! workspace (see `shims/README.md`): `to_string`, `to_string_pretty`
//! and `from_str` over the shim `serde::Value` data model. The
//! emitted JSON follows real serde's conventions for the shapes the
//! workspace serializes (objects for named structs, strings for unit
//! variants, single-entry objects for newtype variants), so instance
//! files remain forward-compatible with the real crates.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Errors from serializing or parsing JSON.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Rebuild a `T` from an already-parsed [`Value`] tree (real
/// serde_json's `from_value`; `from_str::<Value>` + `from_value` lets
/// callers inspect a document before committing to a typed shape).
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::deserialize(&value)?)
}

/// Serialize `value` into the [`Value`] data model (real serde_json's
/// `to_value`).
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Parse a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON value"));
    }
    Ok(T::deserialize(&value)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // Keep floats distinguishable from ints on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no Inf/NaN; match serde_json
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(out, indent, depth, items.iter(), "[", "]", write_value),
        Value::Object(fields) => write_seq(
            out,
            indent,
            depth,
            fields.iter(),
            "{",
            "}",
            |(k, v), out, ind, d| {
                write_string(k, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(v, out, ind, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    items: impl ExactSizeIterator<Item = T>,
    open: &str,
    close: &str,
    write_item: impl Fn(T, &mut String, Option<usize>, usize),
) {
    out.push_str(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(item, out, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push_str(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 character verbatim.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("h\"1\n".to_string())),
            (
                "xs".to_string(),
                Value::Array(vec![Value::Int(-3), Value::Float(1.5)]),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let compact = to_string(&ValueWrap(v.clone())).unwrap();
        let back: ValueWrap = from_str(&compact).unwrap();
        assert_eq!(back.0, v);
        let pretty = to_string_pretty(&ValueWrap(v.clone())).unwrap();
        let back: ValueWrap = from_str(&pretty).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn value_is_first_class() {
        // `Value` itself is Serialize + Deserialize (as in the real
        // crates), so documents can be inspected before typing.
        let v: Value = from_str(r#"{"solver": "csr", "n": 3}"#).unwrap();
        assert_eq!(v.get("solver"), Some(&Value::Str("csr".to_string())));
        let n: i64 = from_value(v.get("n").unwrap().clone()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(
            to_value(&vec![1i64, 2]).unwrap().as_array().unwrap().len(),
            2
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<Vec<i64>>("[1, 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let s: ValueWrap = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(s.0, Value::Str("aé😀b".to_string()));
    }

    /// Serialize/Deserialize passthrough for raw `Value`s in tests.
    #[derive(Clone, Debug, PartialEq)]
    struct ValueWrap(Value);

    impl Serialize for ValueWrap {
        fn serialize(&self) -> Value {
            self.0.clone()
        }
    }

    impl Deserialize for ValueWrap {
        fn deserialize(v: &Value) -> Result<Self, serde::Error> {
            Ok(ValueWrap(v.clone()))
        }
    }
}
