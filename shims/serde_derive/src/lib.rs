//! Offline shim of serde's `#[derive(Serialize, Deserialize)]`.
//!
//! Hand-rolled over `proc_macro` alone — the container has no crate
//! registry, so `syn`/`quote` are unavailable (see `shims/README.md`).
//! Supported item shapes are exactly what this workspace derives on:
//!
//! * structs with named fields, honouring `#[serde(skip)]` (skipped on
//!   serialize, `Default::default()` on deserialize);
//! * enums with unit variants (serialized as the variant-name string)
//!   and newtype variants (externally tagged single-entry object),
//!   matching real serde's JSON conventions;
//! * the container attribute `#[serde(from = "T", into = "T")]`.
//!
//! Anything else (generics, tuple structs, struct variants) panics at
//! derive time with a pointed message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.impl_serialize()
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(input);
    item.impl_deserialize()
        .parse()
        .expect("generated Deserialize impl parses")
}

/// A named struct field.
struct Field {
    name: String,
    skip: bool,
}

/// An enum variant: unit, or newtype with one payload type.
struct Variant {
    name: String,
    newtype: bool,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
    /// `#[serde(from = "..")]` type path, if present.
    from: Option<String>,
    /// `#[serde(into = "..")]` type path, if present.
    into: Option<String>,
}

/// Attributes collected from a `#[...]` prefix: the serde ones, parsed.
#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    from: Option<String>,
    into: Option<String>,
}

/// Consume a run of leading `#[...]` attributes from `tokens`
/// (starting at `*i`), folding any `#[serde(...)]` contents into the
/// returned record.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(g)) = tokens.get(*i + 1) else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        parse_serde_attr(&g.stream().into_iter().collect::<Vec<_>>(), &mut attrs);
        *i += 2;
    }
    attrs
}

/// If `body` is `serde ( ... )`, record its directives.
fn parse_serde_attr(body: &[TokenTree], attrs: &mut SerdeAttrs) {
    match (body.first(), body.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                match &inner[j] {
                    TokenTree::Ident(word) => {
                        let word = word.to_string();
                        // `name = "value"` directives
                        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                            (inner.get(j + 1), inner.get(j + 2))
                        {
                            if eq.as_char() == '=' {
                                let raw = lit.to_string();
                                let path = raw.trim_matches('"').to_string();
                                match word.as_str() {
                                    "from" => attrs.from = Some(path),
                                    "into" => attrs.into = Some(path),
                                    other => panic!(
                                        "serde shim derive: unsupported attribute `{other} = ...`"
                                    ),
                                }
                                j += 3;
                                continue;
                            }
                        }
                        match word.as_str() {
                            "skip" => attrs.skip = true,
                            other => {
                                panic!("serde shim derive: unsupported attribute `{other}`")
                            }
                        }
                        j += 1;
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
                    other => panic!("serde shim derive: unexpected attribute token `{other}`"),
                }
            }
        }
        _ => {} // non-serde attribute (docs, derives, ...)
    }
}

/// Skip an optional `pub` / `pub(...)` visibility prefix.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

impl Item {
    fn parse(input: TokenStream) -> Item {
        let tokens: Vec<TokenTree> = input.into_iter().collect();
        let mut i = 0;
        let container = take_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
        };
        i += 1;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected item name, got {other:?}"),
        };
        i += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '<' {
                panic!("serde shim derive: generic type `{name}` is not supported");
            }
        }
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!(
                "serde shim derive: `{name}` must have a brace-delimited body \
                 (tuple structs unsupported), got {other:?}"
            ),
        };
        let shape = match kind.as_str() {
            "struct" => Shape::Struct(parse_named_fields(body)),
            "enum" => Shape::Enum(parse_variants(body)),
            other => panic!("serde shim derive: unsupported item kind `{other}`"),
        };
        Item {
            name,
            shape,
            from: container.from,
            into: container.into,
        }
    }

    fn impl_serialize(&self) -> String {
        let name = &self.name;
        if let Some(into) = &self.into {
            return format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         let wire: {into} = ::std::convert::Into::into(\
                             ::std::clone::Clone::clone(self));\n\
                         ::serde::Serialize::serialize(&wire)\n\
                     }}\n\
                 }}"
            );
        }
        let body = match &self.shape {
            Shape::Struct(fields) => {
                let pushes: String = fields
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| {
                        format!(
                            "fields.push((\"{0}\".to_string(), \
                             ::serde::Serialize::serialize(&self.{0})));\n",
                            f.name
                        )
                    })
                    .collect();
                format!(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                     = ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(fields)"
                )
            }
            Shape::Enum(variants) => {
                let arms: String = variants
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        if v.newtype {
                            format!(
                                "{name}::{vn}(inner) => ::serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), \
                                 ::serde::Serialize::serialize(inner))]),\n"
                            )
                        } else {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n")
                        }
                    })
                    .collect();
                format!("match self {{\n{arms}}}")
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
             }}"
        )
    }

    fn impl_deserialize(&self) -> String {
        let name = &self.name;
        if let Some(from) = &self.from {
            return format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let wire: {from} = ::serde::Deserialize::deserialize(v)?;\n\
                         ::std::result::Result::Ok(::std::convert::From::from(wire))\n\
                     }}\n\
                 }}"
            );
        }
        let body = match &self.shape {
            Shape::Struct(fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: ::std::default::Default::default(),\n", f.name)
                        } else {
                            format!(
                                "{0}: match v.get(\"{0}\") {{\n\
                                     ::std::option::Option::Some(x) => \
                                     ::serde::Deserialize::deserialize(x)?,\n\
                                     ::std::option::Option::None => return \
                                     ::std::result::Result::Err(\
                                     ::serde::Error::missing_field(\"{0}\")),\n\
                                 }},\n",
                                f.name
                            )
                        }
                    })
                    .collect();
                format!(
                    "if v.as_object().is_none() {{\n\
                         return ::std::result::Result::Err(\
                         ::serde::Error::expected(\"object for struct {name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name} {{\n{inits}}})"
                )
            }
            Shape::Enum(variants) => {
                let unit_arms: String = variants
                    .iter()
                    .filter(|v| !v.newtype)
                    .map(|v| {
                        format!(
                            "\"{0}\" => ::std::result::Result::Ok({name}::{0}),\n",
                            v.name
                        )
                    })
                    .collect();
                let newtype_arms: String = variants
                    .iter()
                    .filter(|v| v.newtype)
                    .map(|v| {
                        format!(
                            "\"{0}\" => ::std::result::Result::Ok({name}::{0}(\
                             ::serde::Deserialize::deserialize(&entries[0].1)?)),\n",
                            v.name
                        )
                    })
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                             {unit_arms}\
                             other => ::std::result::Result::Err(\
                             ::serde::Error::unknown_variant(other)),\n\
                         }},\n\
                         ::serde::Value::Object(entries) if entries.len() == 1 => \
                         match entries[0].0.as_str() {{\n\
                             {newtype_arms}\
                             other => ::std::result::Result::Err(\
                             ::serde::Error::unknown_variant(other)),\n\
                         }},\n\
                         _ => ::std::result::Result::Err(\
                         ::serde::Error::expected(\"enum {name}\")),\n\
                     }}"
                )
            }
        };
        format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
             }}"
        )
    }
}

/// Parse `{ field: Type, ... }` contents into field records.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after `{name}`, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        // Parenthesised and bracketed sub-parts arrive as single
        // groups, so only `<`/`>` nesting needs tracking.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field {
            name,
            skip: attrs.skip,
        });
    }
    fields
}

/// Parse `{ Variant, Variant(Type), ... }` contents into variants.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let mut newtype = false;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = 1 + g
                    .stream()
                    .into_iter()
                    .filter(|t| {
                        matches!(t, TokenTree::Punct(p)
                        if p.as_char() == ',' && p.spacing() == proc_macro::Spacing::Alone)
                    })
                    .count();
                // A trailing comma would overcount, but none of the
                // workspace's newtype variants has one.
                if arity != 1 {
                    panic!(
                        "serde shim derive: variant `{name}` has {arity} fields; \
                         only unit and newtype variants are supported"
                    );
                }
                newtype = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("serde shim derive: struct variant `{name}` is not supported");
            }
            _ => {}
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, newtype });
    }
    variants
}
