//! Offline shim of the `parking_lot` API surface used by this
//! workspace (see `shims/README.md`): `Mutex` and `RwLock` with the
//! parking_lot calling convention (no poisoning, guards returned
//! directly), layered over `std::sync`. A poisoned std lock only
//! arises after a panic mid-critical-section, at which point the test
//! run has already failed, so unwrapping is sound here.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_guards_directly() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
