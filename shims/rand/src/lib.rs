//! Offline shim of the `rand` API surface used by this workspace.
//!
//! The build container has no reachable crate registry, so the
//! workspace vendors minimal, deterministic stand-ins for its external
//! dependencies (see `shims/README.md`). This crate provides
//! [`rngs::StdRng`] (an xoshiro256** generator), [`SeedableRng`],
//! [`RngExt`] (`random_range` / `random_bool`) and
//! [`seq::SliceRandom`] (`shuffle`) — exactly what `fragalign-sim` and
//! `fragalign-graph` call. Streams are reproducible across runs and
//! platforms for a given seed, which the simulator's seed-keyed tests
//! rely on.

/// Sources of randomness: a 64-bit output step.
pub trait RngCore {
    /// The next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value of the range from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_draw(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widening_draw(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection, avoiding modulo bias.
fn widening_draw<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    let span64 = span as u64; // span == 2^64 wraps to 0: accept any draw
    if span64 == 0 {
        return rng.next_u64() as u128;
    }
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard f64-in-[0,1) recipe.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// The generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and plenty for test workloads.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j: usize = (0..=i).sample(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let u = rng.random_range(0usize..4);
            assert!(u < 4);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
