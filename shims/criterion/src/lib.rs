//! Offline shim of the `criterion` API surface used by this
//! workspace (see `shims/README.md`). The bench files compile
//! unchanged; `cargo bench` runs every registered closure a handful
//! of times and reports a single wall-clock figure per benchmark —
//! a smoke-run rather than a statistical harness. Swapping in real
//! criterion later only changes the manifest.

use std::time::Instant;

pub use std::hint::black_box;

/// How many timed iterations the shim runs per benchmark.
const SHIM_ITERS: u32 = 3;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form, rendered as the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded, displayed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    elapsed_nanos: u128,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over the shim's fixed iteration count.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..SHIM_ITERS {
            black_box(routine());
        }
        self.elapsed_nanos = start.elapsed().as_nanos();
        self.iters = SHIM_ITERS;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Statistical sample size (recorded but unused by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement time (recorded but unused by the shim).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, self.throughput, |b| f(b));
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(&full, self.throughput, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, None, |b| f(b));
        self
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher {
            elapsed_nanos: 0,
            iters: 0,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed_nanos / bencher.iters.max(1) as u128;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0 => {
                format!("  ({:.1} Melem/s)", n as f64 * 1e3 / per_iter as f64)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0 => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 * 1e9 / (per_iter as f64 * 1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!("bench {id:<40} {per_iter:>12} ns/iter{rate}");
    }
}

/// Group benchmark functions under one registration function,
/// mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
