//! Differential stress net over the adversarial channels: on small
//! torn / soup / degenerate instances every registered solver must
//! stay consistent and never beat the certified optimum where the
//! exact solver admits the instance; on the channel *defaults* each
//! solver holds a pinned score-ratio floor; and the `auto` solver is
//! bit-identical to solving with the router table's choice directly —
//! the contract that makes `--algo auto` and the service's default
//! solver observable and reproducible.

use fragalign::model::{check_consistency, Instance};
use fragalign::prelude::*;
use fragalign::sim::{
    generate_degenerate, generate_soup, generate_torn, soup_batch, torn_batch, DegenerateShape,
    SoupConfig, TornConfig,
};
use proptest::prelude::*;

/// Torn instance small enough that the exact solver usually admits it
/// (few pieces, well under the region cap).
fn small_torn(seed: u64) -> Instance {
    generate_torn(&TornConfig {
        regions: 6,
        h_frags: 2,
        tear_rate: 0.4,
        drop_rate: 0.2,
        dup_rate: 0.2,
        seed,
        ..TornConfig::default()
    })
    .instance
}

/// Soup instance with at most a handful of reads.
fn small_soup(seed: u64) -> Instance {
    generate_soup(&SoupConfig {
        regions: 6,
        h_frags: 2,
        read_len: 3,
        coverage: 1.0,
        sub_rate: 0.2,
        seed,
        ..SoupConfig::default()
    })
    .instance
}

/// All three degenerate shapes at a frag count the exact solver can
/// still certify.
fn small_degenerates(seed: u64) -> Vec<(String, Instance)> {
    [
        DegenerateShape::MegaFragment,
        DegenerateShape::AllSingletons,
        DegenerateShape::SigmaDesert,
    ]
    .into_iter()
    .map(|shape| {
        (
            format!("{shape:?}{seed}"),
            generate_degenerate(shape, 4, seed).instance,
        )
    })
    .collect()
}

proptest! {
    // Every case sweeps the full registry (exact included) over five
    // instances; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Differential bound: on small adversarial instances, every
    /// registered solver that supports the shape returns a consistent
    /// solution scoring at most the certified optimum.
    #[test]
    fn no_solver_beats_the_certified_optimum_on_adversarial_shapes(seed in 0u64..5_000) {
        let mut instances = vec![
            (format!("torn{seed}"), small_torn(seed)),
            (format!("soup{seed}"), small_soup(seed)),
        ];
        instances.extend(small_degenerates(seed));
        let reg = SolverRegistry::global();
        let opts = EngineOptions::default();
        for (iname, inst) in &instances {
            let optimum = ExactLimits::default()
                .check(inst)
                .is_ok()
                .then(|| solve_exact(inst, ExactLimits::default()).score);
            for spec in reg.specs() {
                if spec.build().supports(inst, &opts).is_err() {
                    continue;
                }
                let run = reg.solve(spec.name, inst, opts).unwrap();
                check_consistency(inst, &run.matches)
                    .unwrap_or_else(|e| panic!("{}/{iname}: {e}", spec.name));
                prop_assert_eq!(
                    run.score,
                    run.matches.total_score(),
                    "{}/{}: reported score diverges from the match set",
                    spec.name, iname
                );
                if let Some(optimum) = optimum {
                    prop_assert!(
                        run.score <= optimum,
                        "{}/{}: {} beats the certified optimum {}",
                        spec.name, iname, run.score, optimum
                    );
                }
            }
        }
    }
}

/// Aggregate best-known score per instance over every supported
/// registered solver (the portfolio's ceiling), plus each solver's own
/// aggregate — the data behind the pinned floors.
fn sweep(instances: &[Instance]) -> (i64, Vec<(&'static str, i64)>) {
    let reg = SolverRegistry::global();
    let opts = EngineOptions::default();
    let mut totals: Vec<(&'static str, i64)> = reg.specs().iter().map(|s| (s.name, 0i64)).collect();
    let mut best_total = 0i64;
    for inst in instances {
        let mut best = 0i64;
        for (i, spec) in reg.specs().iter().enumerate() {
            if spec.build().supports(inst, &opts).is_err() {
                continue;
            }
            let score = reg.solve(spec.name, inst, opts).unwrap().score;
            totals[i].1 += score;
            best = best.max(score);
        }
        best_total += best;
    }
    (best_total, totals)
}

#[test]
fn solvers_hold_pinned_score_floors_on_torn_defaults() {
    // Floors pinned from the measured aggregate ratios on the default
    // torn channel (4 seeds), with margin for seed drift. A solver
    // falling through its floor has regressed on duplicated /
    // reverse-oriented fragments, not just lost a race.
    let instances: Vec<Instance> = torn_batch(&TornConfig::default(), 4)
        .into_iter()
        .map(|s| s.instance)
        .collect();
    let (best, totals) = sweep(&instances);
    assert!(best > 0, "torn defaults must admit positive scores");
    assert_floors(
        best,
        &totals,
        &[
            ("csr", 0.95),
            ("full", 0.95),
            ("border", 0.75),
            ("four", 0.80),
            ("matching", 0.40),
            ("greedy", 0.60),
            ("chain", 0.30),
            ("portfolio", 1.0),
            ("auto", 0.95),
        ],
        "torn",
    );
}

#[test]
fn solvers_hold_pinned_score_floors_on_soup_defaults() {
    let instances: Vec<Instance> = soup_batch(&SoupConfig::default(), 4)
        .into_iter()
        .map(|s| s.instance)
        .collect();
    let (best, totals) = sweep(&instances);
    assert!(best > 0, "soup defaults must admit positive scores");
    assert_floors(
        best,
        &totals,
        &[
            ("csr", 0.90),
            ("full", 0.90),
            ("border", 0.75),
            ("four", 0.85),
            ("matching", 0.40),
            ("greedy", 0.50),
            ("chain", 0.30),
            ("portfolio", 1.0),
            ("auto", 0.85),
        ],
        "soup",
    );
}

fn assert_floors(best: i64, totals: &[(&'static str, i64)], floors: &[(&str, f64)], tag: &str) {
    for (name, floor) in floors {
        let total = totals
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from the registry"))
            .1;
        let ratio = total as f64 / best as f64;
        assert!(
            ratio >= *floor,
            "{name} fell through its pinned {tag} floor: ratio {ratio:.3} < {floor}"
        );
    }
}

#[test]
fn auto_is_bit_identical_to_the_routed_table_choice() {
    // The acceptance contract for `--algo auto` and the service's
    // default solver: `auto` must return exactly what solving with the
    // shipped router table's choice returns, and must say which
    // backend ran via `routed_by`. The instance set deliberately spans
    // the table: small clean / torn / soup shapes route to `csr`,
    // shredded torn to `four`, σ-deserts to `full`.
    let mut instances = vec![
        (
            "paper".to_owned(),
            fragalign::model::instance::paper_example(),
        ),
        ("torn-default".to_owned(), {
            generate_torn(&TornConfig::default()).instance
        }),
        ("soup-default".to_owned(), {
            generate_soup(&SoupConfig::default()).instance
        }),
        ("torn-shredded".to_owned(), {
            generate_torn(&TornConfig {
                regions: 48,
                h_frags: 6,
                tear_rate: 0.6,
                dup_rate: 0.25,
                seed: 7,
                ..TornConfig::default()
            })
            .instance
        }),
        (
            "sigma-desert".to_owned(),
            generate_degenerate(DegenerateShape::SigmaDesert, 24, 40).instance,
        ),
    ];
    instances.extend(small_degenerates(9));
    let reg = SolverRegistry::global();
    let router = Router::default();
    let opts = EngineOptions::default();
    let mut routes_seen = std::collections::BTreeSet::new();
    for (iname, inst) in &instances {
        let choice = router.route(inst, &opts);
        routes_seen.insert(choice);
        let auto = reg.solve("auto", inst, opts).unwrap();
        let direct = reg.solve(choice, inst, opts).unwrap();
        assert_eq!(
            auto.matches, direct.matches,
            "auto diverged from routed `{choice}` on {iname}"
        );
        assert_eq!(auto.score, direct.score, "{iname}: score drift");
        assert_eq!(
            auto.report.routed_by.as_deref(),
            Some(choice),
            "{iname}: routed_by must name the table choice"
        );
    }
    assert!(
        routes_seen.len() >= 2,
        "instance set no longer spans the routing table (all routed to {routes_seen:?})"
    );
}

#[test]
fn portfolio_dominates_every_member_on_adversarial_shapes() {
    // The racing portfolio's dominance guarantee must survive the
    // adversarial channels, not just clean sims.
    let reg = SolverRegistry::global();
    let opts = EngineOptions::default();
    for (iname, inst) in [
        ("torn", small_torn(11)),
        ("soup", small_soup(12)),
        (
            "desert",
            generate_degenerate(DegenerateShape::SigmaDesert, 8, 13).instance,
        ),
    ] {
        let portfolio = reg.solve("portfolio", &inst, opts).unwrap();
        check_consistency(&inst, &portfolio.matches).unwrap();
        for spec in reg.specs() {
            if !spec.in_portfolio || spec.build().supports(&inst, &opts).is_err() {
                continue;
            }
            let run = reg.solve(spec.name, &inst, opts).unwrap();
            assert!(
                portfolio.score >= run.score,
                "portfolio ({}) lost to {} ({}) on {iname}",
                portfolio.score,
                spec.name,
                run.score
            );
        }
    }
}
