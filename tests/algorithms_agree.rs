//! Cross-algorithm dominance and guarantee checks on random instances
//! (EXPERIMENTS.md T1–T3 in test form).

use fragalign::model::check_consistency;
use fragalign::prelude::*;
use fragalign::sim::SimConfig;

fn small_instances() -> Vec<(String, Instance)> {
    let mut out = Vec::new();
    out.push((
        "paper".to_owned(),
        fragalign::model::instance::paper_example(),
    ));
    for seed in 0..6u64 {
        let cfg = SimConfig {
            regions: 10,
            h_frags: 3,
            m_frags: 3,
            loss_rate: 0.1,
            shuffles: 1,
            spurious: 2,
            base_score: 10,
            score_jitter: 5,
            seed,
            ..SimConfig::default()
        };
        out.push((
            format!("sim{seed}"),
            fragalign::sim::generate(&cfg).instance,
        ));
    }
    out
}

#[test]
fn every_solver_is_consistent_on_every_instance() {
    for (name, inst) in small_instances() {
        for (algo, sol) in [
            ("greedy", solve_greedy(&inst)),
            ("four", solve_four_approx(&inst)),
            ("matching", border_matching_2approx(&inst)),
            ("full", full_improve(&inst, false).matches),
            ("border", border_improve(&inst, false).matches),
            ("csr", csr_improve(&inst, false).matches),
        ] {
            check_consistency(&inst, &sol).unwrap_or_else(|e| panic!("{algo} on {name}: {e}"));
        }
    }
}

#[test]
fn guarantees_hold_against_exact() {
    for (name, inst) in small_instances() {
        let exact = solve_exact(
            &inst,
            ExactLimits {
                max_frags: 4,
                max_regions: 40,
            },
        )
        .score;
        if exact == 0 {
            continue;
        }
        // Corollary 1: ratio 4.
        let four = solve_four_approx(&inst).total_score();
        assert!(4 * four >= exact, "{name}: four={four} exact={exact}");
        // Theorem 6: ratio 3 + ε (we assert the clean factor 3 since
        // scaling is off and gains are exact).
        let csr = csr_improve(&inst, false).score;
        assert!(3 * csr >= exact, "{name}: csr={csr} exact={exact}");
        // No solver exceeds the optimum.
        for (algo, score) in [
            ("greedy", solve_greedy(&inst).total_score()),
            ("four", four),
            ("csr", csr),
            ("matching", border_matching_2approx(&inst).total_score()),
        ] {
            assert!(score <= exact, "{name}: {algo}={score} > exact={exact}");
        }
    }
}

#[test]
fn improvement_dominates_its_seed() {
    for (name, inst) in small_instances() {
        let four = solve_four_approx(&inst);
        let four_score = four.total_score();
        let seeded = fragalign::core::improve::improve(&inst, ImproveConfig::default(), four);
        assert!(
            seeded.score >= four_score,
            "{name}: seeding with 4-approx must not lose score"
        );
    }
}

#[test]
fn scaling_never_breaks_feasibility_and_stays_close() {
    for (name, inst) in small_instances().into_iter().take(4) {
        let unscaled = csr_improve(&inst, false);
        let scaled = csr_improve(&inst, true);
        check_consistency(&inst, &scaled.matches).unwrap();
        // Scaling may lose up to ~1/k of the score (§4.1); allow a
        // generous 25% envelope on these tiny instances.
        assert!(
            4 * scaled.score >= 3 * unscaled.score,
            "{name}: scaled={} unscaled={}",
            scaled.score,
            unscaled.score
        );
    }
}
