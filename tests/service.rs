//! The serving layer end to end, over real sockets:
//!
//! * concurrent clients get answers bit-identical to direct
//!   [`solve_single_report`] calls — per-worker DP workspaces are
//!   scratch, the result cache stores finished bodies, and neither
//!   may change a solution;
//! * hit and miss paths return byte-identical bodies, and instance
//!   formatting (pretty vs compact) cannot split cache entries;
//! * a full worker queue answers `503` immediately — backpressure
//!   must reject, never hang;
//! * the `/v1/solve` wire format is pinned by a golden snapshot
//!   (wall-clock normalised), so accidental format drift is caught
//!   before clients are.

use fragalign::align::DpWorkspace;
use fragalign::core::{solve_single_report, BatchOptions};
use fragalign::model::instance::paper_example;
use fragalign::model::Instance;
use fragalign::serve::{client, ServeConfig, Server};
use fragalign::sim::gen_batch;
use fragalign::sim::SimConfig;
use serde::Value;
use std::time::{Duration, Instant};

fn sim_instances(count: usize, seed: u64) -> Vec<Instance> {
    gen_batch(
        &SimConfig {
            regions: 12,
            h_frags: 3,
            m_frags: 3,
            loss_rate: 0.15,
            shuffles: 2,
            spurious: 3,
            seed,
            ..SimConfig::default()
        },
        count,
    )
    .into_iter()
    .map(|s| s.instance)
    .collect()
}

fn solve_body(inst: &Instance, solver: &str) -> String {
    format!(
        "{{\"instance\":{},\"solver\":\"{solver}\"}}",
        serde_json::to_string(inst).expect("instance serialises")
    )
}

/// Poll `probe` until it returns true; fail loudly instead of hanging.
fn wait_until(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn eight_concurrent_clients_match_direct_solves() {
    // One client per solver family (one-csr sits out: these are
    // multi-M instances and it would 400 by design).
    let solvers = [
        "csr",
        "full",
        "border",
        "four",
        "greedy",
        "matching",
        "portfolio",
        "exact",
    ];
    let instances = sim_instances(solvers.len(), 77);
    let server = Server::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let responses: Vec<Value> = std::thread::scope(|scope| {
        let handles: Vec<_> = solvers
            .iter()
            .zip(&instances)
            .map(|(solver, inst)| {
                scope.spawn(move || {
                    let resp = client::post(addr, "/v1/solve", &solve_body(inst, solver))
                        .expect("solve answers");
                    assert_eq!(resp.status, 200, "{solver}: {}", resp.body);
                    serde_json::from_str::<Value>(&resp.body).expect("response parses")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for ((solver, inst), doc) in solvers.iter().zip(&instances).zip(&responses) {
        let mut ws = DpWorkspace::new();
        let (expected, expected_report) =
            solve_single_report(inst, &BatchOptions::new(*solver), &mut ws)
                .expect("direct solve succeeds");
        assert_eq!(
            doc.get("score"),
            Some(&Value::Int(expected.score)),
            "{solver}: served score diverged"
        );
        assert_eq!(
            doc.get("matches"),
            Some(&serde_json::to_value(&expected.matches).unwrap()),
            "{solver}: served matches diverged"
        );
        // The report is deterministic too, apart from wall clock and
        // workspace-growth counts (those depend on which warm worker
        // workspace handled the request).
        let report = doc.get("report").expect("report present");
        for (field, value) in [
            ("solver", Value::Str((*solver).to_string())),
            ("score", Value::Int(expected_report.score)),
            ("rounds", Value::Int(expected_report.rounds as i64)),
            ("attempts", Value::Int(expected_report.attempts as i64)),
            ("dp_fills", Value::Int(expected_report.dp_fills as i64)),
            (
                "table_misses",
                Value::Int(expected_report.table_misses as i64),
            ),
            (
                "pair_misses",
                Value::Int(expected_report.pair_misses as i64),
            ),
        ] {
            assert_eq!(
                report.get(field),
                Some(&value),
                "{solver}: report field {field} diverged"
            );
        }
    }
    server.shutdown();
}

#[test]
fn cache_hit_is_byte_identical_and_formatting_invariant() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let inst = &sim_instances(1, 9)[0];

    let miss = client::post(addr, "/v1/solve", &solve_body(inst, "four")).unwrap();
    assert_eq!(miss.status, 200, "{}", miss.body);
    assert_eq!(miss.header("x-fragalign-cache"), Some("miss"));
    let hit = client::post(addr, "/v1/solve", &solve_body(inst, "four")).unwrap();
    assert_eq!(hit.header("x-fragalign-cache"), Some("hit"));
    assert_eq!(miss.body, hit.body, "hit body diverged from miss body");

    // Same instance, different client formatting: the cache keys on
    // the canonical re-serialisation, so this is still a hit.
    let pretty = format!(
        "{{\n  \"solver\": \"four\",\n  \"instance\": {}\n}}",
        serde_json::to_string_pretty(inst).unwrap()
    );
    let reformatted = client::post(addr, "/v1/solve", &pretty).unwrap();
    assert_eq!(reformatted.header("x-fragalign-cache"), Some("hit"));
    assert_eq!(reformatted.body, miss.body);

    // A different solver is a different key.
    let other = client::post(addr, "/v1/solve", &solve_body(inst, "greedy")).unwrap();
    assert_eq!(other.header("x-fragalign-cache"), Some("miss"));

    let stats = server.state().cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2));
    server.shutdown();
}

#[test]
fn omitting_the_solver_field_routes_through_auto() {
    // `ServeConfig::default()` now defaults to the shape-routing
    // `auto` solver: a request with no "solver" field must be
    // bit-identical to a direct `auto` solve, report `auto` as the
    // solver, and expose the routed backend via `routed_by`.
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let inst = &sim_instances(1, 41)[0];

    let body = format!(
        "{{\"instance\":{}}}",
        serde_json::to_string(inst).expect("instance serialises")
    );
    let resp = client::post(addr, "/v1/solve", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc: Value = serde_json::from_str(&resp.body).expect("response parses");

    let mut ws = DpWorkspace::new();
    let (expected, expected_report) =
        solve_single_report(inst, &BatchOptions::new("auto"), &mut ws)
            .expect("direct auto solve succeeds");
    assert_eq!(doc.get("score"), Some(&Value::Int(expected.score)));
    assert_eq!(
        doc.get("matches"),
        Some(&serde_json::to_value(&expected.matches).unwrap()),
        "served default-solver matches diverged from direct auto solve"
    );
    let report = doc.get("report").expect("report present");
    assert_eq!(
        report.get("solver"),
        Some(&Value::Str("auto".to_string())),
        "default solver must be auto"
    );
    let routed = expected_report
        .routed_by
        .clone()
        .expect("auto must record its routed backend");
    assert_eq!(
        report.get("routed_by"),
        Some(&Value::Str(routed)),
        "served routed_by diverged from the router table choice"
    );
    server.shutdown();
}

#[test]
fn full_queue_answers_503_and_never_hangs() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let state = server.state();

    // Occupy the only worker: a request whose body never arrives. The
    // worker blocks reading it (until the io timeout, far beyond this
    // test's lifetime).
    let mut parked = client::connect_and_send(
        addr,
        b"POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\n",
    )
    .expect("park a half-written request");
    wait_until("the worker to pick up the parked request", || {
        state.telemetry.busy_workers() == 1
    });

    // Fill the queue's single slot with a real request; it will wait.
    let queued = std::thread::spawn(move || client::get(addr, "/healthz").expect("queued request"));
    wait_until("the queue slot to fill", || {
        state.telemetry.queue_depth() == 1
    });

    // Worker busy + queue full: the next connection must be turned
    // away immediately with 503, not parked.
    let t0 = Instant::now();
    let rejected = client::request(addr, "GET", "/healthz", None, Duration::from_secs(5))
        .expect("rejected request still gets a response");
    assert_eq!(rejected.status, 503, "{}", rejected.body);
    assert_eq!(rejected.header("retry-after"), Some("1"));
    assert!(rejected.body.contains("queue"), "{}", rejected.body);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "503 took {:?} — backpressure must not block",
        t0.elapsed()
    );
    assert_eq!(server.state().metrics().rejected_503, 1);

    // Unpark the worker; the queued request then drains normally.
    use std::io::Write;
    parked.write_all(b"0123456789").expect("finish parked body");
    let parked_reply = {
        use std::io::Read;
        let mut raw = Vec::new();
        parked.read_to_end(&mut raw).expect("parked response");
        String::from_utf8(raw).expect("utf-8 response")
    };
    assert!(
        parked_reply.starts_with("HTTP/1.1 400"),
        "ten junk bytes are not JSON: {parked_reply}"
    );
    let queued_reply = queued.join().expect("queued client thread");
    assert_eq!(queued_reply.status, 200);
    server.shutdown();
}

#[test]
fn solve_wire_format_is_pinned() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let resp = client::post(
        server.addr(),
        "/v1/solve",
        &solve_body(&paper_example(), "greedy"),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let normalized = normalize_wall_secs(&resp.body);

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/serve_solve_demo.json");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, &normalized).expect("bless golden");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} (run with BLESS=1): {e}", path.display()));
    assert_eq!(
        normalized, golden,
        "/v1/solve wire format drifted from snapshot"
    );
    server.shutdown();
}

/// Replace the one nondeterministic response field (`wall_secs`) with
/// a stable placeholder so the body can be snapshot.
fn normalize_wall_secs(body: &str) -> String {
    let marker = "\"wall_secs\":";
    let start = body.find(marker).expect("report has wall_secs") + marker.len();
    let end = start
        + body[start..]
            .find([',', '}'])
            .expect("wall_secs value ends");
    format!("{}0.0{}", &body[..start], &body[end..])
}
