//! The serving layer end to end, over real sockets:
//!
//! * concurrent clients get answers bit-identical to direct
//!   [`solve_single_report`] calls — per-worker DP workspaces are
//!   scratch, the result cache stores finished bodies, and neither
//!   may change a solution;
//! * hit and miss paths return byte-identical bodies, and instance
//!   formatting (pretty vs compact) cannot split cache entries;
//! * half-written requests cost no worker thread — the event loop
//!   holds them — and the admission watermarks behave: past
//!   `reject_at` every request 503s immediately, past `degrade_at`
//!   big instances are rerouted to a cheap tier with
//!   `X-Fragalign-Degraded` and a body identical to asking for that
//!   tier directly;
//! * keep-alive connections serve many requests on one socket (and
//!   the reuse counters say so), pipelined requests answer in send
//!   order, and idle sockets are evicted after `idle_timeout_ms`;
//! * the `/v1/solve` wire format is pinned by a golden snapshot
//!   (wall-clock normalised), so accidental format drift is caught
//!   before clients are.

use fragalign::align::DpWorkspace;
use fragalign::core::{solve_single_report, BatchOptions};
use fragalign::model::instance::paper_example;
use fragalign::model::Instance;
use fragalign::serve::{client, AdmissionConfig, ServeConfig, Server};
use fragalign::sim::gen_batch;
use fragalign::sim::SimConfig;
use serde::Value;
use std::time::{Duration, Instant};

fn sim_instances(count: usize, seed: u64) -> Vec<Instance> {
    gen_batch(
        &SimConfig {
            regions: 12,
            h_frags: 3,
            m_frags: 3,
            loss_rate: 0.15,
            shuffles: 2,
            spurious: 3,
            seed,
            ..SimConfig::default()
        },
        count,
    )
    .into_iter()
    .map(|s| s.instance)
    .collect()
}

fn solve_body(inst: &Instance, solver: &str) -> String {
    format!(
        "{{\"instance\":{},\"solver\":\"{solver}\"}}",
        serde_json::to_string(inst).expect("instance serialises")
    )
}

/// Poll `probe` until it returns true; fail loudly instead of hanging.
fn wait_until(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn eight_concurrent_clients_match_direct_solves() {
    // One client per solver family (one-csr sits out: these are
    // multi-M instances and it would 400 by design).
    let solvers = [
        "csr",
        "full",
        "border",
        "four",
        "greedy",
        "matching",
        "portfolio",
        "exact",
    ];
    let instances = sim_instances(solvers.len(), 77);
    let server = Server::start(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let responses: Vec<Value> = std::thread::scope(|scope| {
        let handles: Vec<_> = solvers
            .iter()
            .zip(&instances)
            .map(|(solver, inst)| {
                scope.spawn(move || {
                    let resp = client::post(addr, "/v1/solve", &solve_body(inst, solver))
                        .expect("solve answers");
                    assert_eq!(resp.status, 200, "{solver}: {}", resp.body);
                    serde_json::from_str::<Value>(&resp.body).expect("response parses")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for ((solver, inst), doc) in solvers.iter().zip(&instances).zip(&responses) {
        let mut ws = DpWorkspace::new();
        let (expected, expected_report) =
            solve_single_report(inst, &BatchOptions::new(*solver), &mut ws)
                .expect("direct solve succeeds");
        assert_eq!(
            doc.get("score"),
            Some(&Value::Int(expected.score)),
            "{solver}: served score diverged"
        );
        assert_eq!(
            doc.get("matches"),
            Some(&serde_json::to_value(&expected.matches).unwrap()),
            "{solver}: served matches diverged"
        );
        // The report is deterministic too, apart from wall clock and
        // workspace-growth counts (those depend on which warm worker
        // workspace handled the request).
        let report = doc.get("report").expect("report present");
        for (field, value) in [
            ("solver", Value::Str((*solver).to_string())),
            ("score", Value::Int(expected_report.score)),
            ("rounds", Value::Int(expected_report.rounds as i64)),
            ("attempts", Value::Int(expected_report.attempts as i64)),
            ("dp_fills", Value::Int(expected_report.dp_fills as i64)),
            (
                "table_misses",
                Value::Int(expected_report.table_misses as i64),
            ),
            (
                "pair_misses",
                Value::Int(expected_report.pair_misses as i64),
            ),
        ] {
            assert_eq!(
                report.get(field),
                Some(&value),
                "{solver}: report field {field} diverged"
            );
        }
    }
    server.shutdown();
}

#[test]
fn cache_hit_is_byte_identical_and_formatting_invariant() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let inst = &sim_instances(1, 9)[0];

    let miss = client::post(addr, "/v1/solve", &solve_body(inst, "four")).unwrap();
    assert_eq!(miss.status, 200, "{}", miss.body);
    assert_eq!(miss.header("x-fragalign-cache"), Some("miss"));
    let hit = client::post(addr, "/v1/solve", &solve_body(inst, "four")).unwrap();
    assert_eq!(hit.header("x-fragalign-cache"), Some("hit"));
    assert_eq!(miss.body, hit.body, "hit body diverged from miss body");

    // Same instance, different client formatting: the cache keys on
    // the canonical re-serialisation, so this is still a hit.
    let pretty = format!(
        "{{\n  \"solver\": \"four\",\n  \"instance\": {}\n}}",
        serde_json::to_string_pretty(inst).unwrap()
    );
    let reformatted = client::post(addr, "/v1/solve", &pretty).unwrap();
    assert_eq!(reformatted.header("x-fragalign-cache"), Some("hit"));
    assert_eq!(reformatted.body, miss.body);

    // A different solver is a different key.
    let other = client::post(addr, "/v1/solve", &solve_body(inst, "greedy")).unwrap();
    assert_eq!(other.header("x-fragalign-cache"), Some("miss"));

    let stats = server.state().cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2));
    server.shutdown();
}

#[test]
fn omitting_the_solver_field_routes_through_auto() {
    // `ServeConfig::default()` now defaults to the shape-routing
    // `auto` solver: a request with no "solver" field must be
    // bit-identical to a direct `auto` solve, report `auto` as the
    // solver, and expose the routed backend via `routed_by`.
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let inst = &sim_instances(1, 41)[0];

    let body = format!(
        "{{\"instance\":{}}}",
        serde_json::to_string(inst).expect("instance serialises")
    );
    let resp = client::post(addr, "/v1/solve", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc: Value = serde_json::from_str(&resp.body).expect("response parses");

    let mut ws = DpWorkspace::new();
    let (expected, expected_report) =
        solve_single_report(inst, &BatchOptions::new("auto"), &mut ws)
            .expect("direct auto solve succeeds");
    assert_eq!(doc.get("score"), Some(&Value::Int(expected.score)));
    assert_eq!(
        doc.get("matches"),
        Some(&serde_json::to_value(&expected.matches).unwrap()),
        "served default-solver matches diverged from direct auto solve"
    );
    let report = doc.get("report").expect("report present");
    assert_eq!(
        report.get("solver"),
        Some(&Value::Str("auto".to_string())),
        "default solver must be auto"
    );
    let routed = expected_report
        .routed_by
        .clone()
        .expect("auto must record its routed backend");
    assert_eq!(
        report.get("routed_by"),
        Some(&Value::Str(routed)),
        "served routed_by diverged from the router table choice"
    );
    server.shutdown();
}

#[test]
fn half_written_requests_cost_no_worker() {
    // Under the old thread-per-request design, a request whose body
    // never arrives pinned a worker for the whole io timeout — four
    // of them against one worker would wedge the service. With the
    // readiness-polled read path they only hold event-loop buffers.
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let state = server.state();

    let mut parked: Vec<_> = (0..4)
        .map(|_| {
            client::connect_and_send(
                addr,
                b"POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\n",
            )
            .expect("park a half-written request")
        })
        .collect();
    wait_until("the parked connections to register", || {
        state.metrics().connections_open >= 4
    });
    assert_eq!(state.telemetry.busy_workers(), 0);
    assert_eq!(state.telemetry.queue_depth(), 0);

    // The lone worker is free, so a real request answers immediately.
    let t0 = Instant::now();
    let health = client::request(addr, "GET", "/healthz", None, Duration::from_secs(5))
        .expect("healthz answers despite parked requests");
    assert_eq!(health.status, 200, "{}", health.body);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "healthz took {:?} behind parked requests",
        t0.elapsed()
    );

    // Completing a parked body drains it normally (junk bytes → 400).
    use std::io::{Read, Write};
    let stream = parked.last_mut().unwrap();
    stream.write_all(b"0123456789").expect("finish parked body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("parked response");
    let parked_reply = String::from_utf8(raw).expect("utf-8 response");
    assert!(
        parked_reply.starts_with("HTTP/1.1 400"),
        "ten junk bytes are not JSON: {parked_reply}"
    );
    server.shutdown();
}

#[test]
fn hard_admission_watermark_503s_and_never_hangs() {
    // `reject_at: 0.0` puts every request past the hard watermark:
    // the event loop must answer 503 itself, without a worker.
    let server = Server::start(ServeConfig {
        admission: AdmissionConfig {
            reject_at: 0.0,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let t0 = Instant::now();
    let rejected = client::request(addr, "GET", "/healthz", None, Duration::from_secs(5))
        .expect("rejected request still gets a response");
    assert_eq!(rejected.status, 503, "{}", rejected.body);
    assert_eq!(rejected.header("retry-after"), Some("1"));
    assert!(rejected.body.contains("watermark"), "{}", rejected.body);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "503 took {:?} — the hard watermark must not block",
        t0.elapsed()
    );
    assert_eq!(server.state().metrics().rejected_503, 1);
    server.shutdown();
}

#[test]
fn degrade_watermark_reroutes_big_instances_with_header() {
    // `degrade_at: 0.0` makes every request "loaded"; a big instance
    // asking for a DP solver is rerouted to the router's cheap tier.
    let inst = &gen_batch(
        &SimConfig {
            regions: 80,
            h_frags: 6,
            m_frags: 6,
            loss_rate: 0.1,
            shuffles: 3,
            spurious: 4,
            seed: 1221,
            ..SimConfig::default()
        },
        1,
    )[0]
    .instance;
    assert!(
        inst.score_upper_bound() >= 500,
        "test instance too small to trigger degradation"
    );
    let server = Server::start(ServeConfig {
        admission: AdmissionConfig {
            degrade_at: 0.0,
            reject_at: 10.0,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    let resp = client::post(addr, "/v1/solve", &solve_body(inst, "csr")).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let tier = resp
        .header("x-fragalign-degraded")
        .expect("degraded response must carry X-Fragalign-Degraded");
    assert!(
        ["greedy", "chain"].contains(&tier),
        "unexpected cheap tier {tier:?}"
    );
    // The degraded body is a faithful cheap-tier solve.
    let mut ws = DpWorkspace::new();
    let (expected, _) = solve_single_report(inst, &BatchOptions::new(tier), &mut ws)
        .expect("direct cheap-tier solve succeeds");
    let doc: Value = serde_json::from_str(&resp.body).expect("response parses");
    assert_eq!(doc.get("score"), Some(&Value::Int(expected.score)));
    assert_eq!(
        doc.get("matches"),
        Some(&serde_json::to_value(&expected.matches).unwrap()),
        "degraded matches diverged from a direct {tier} solve"
    );
    assert_eq!(
        doc.get("solver"),
        Some(&Value::Str(tier.to_string())),
        "degraded response must report the solver actually used"
    );
    assert_eq!(server.state().metrics().admission_degraded, 1);

    // The result was cached under the tier actually used: asking for
    // that tier directly is a hit with an identical body (and no
    // degraded marker — the client got what it asked for).
    let tier = tier.to_string();
    let direct = client::post(addr, "/v1/solve", &solve_body(inst, &tier)).unwrap();
    assert_eq!(direct.header("x-fragalign-cache"), Some("hit"));
    assert_eq!(direct.header("x-fragalign-degraded"), None);
    assert_eq!(direct.body, resp.body);

    // Small instances pass through untouched at any load.
    let small = &sim_instances(1, 7)[0];
    let passed = client::post(addr, "/v1/solve", &solve_body(small, "csr")).unwrap();
    assert_eq!(passed.status, 200, "{}", passed.body);
    assert_eq!(passed.header("x-fragalign-degraded"), None);
    let doc: Value = serde_json::from_str(&passed.body).unwrap();
    assert_eq!(doc.get("solver"), Some(&Value::Str("csr".into())));
    server.shutdown();
}

#[test]
fn keepalive_connections_are_reused_and_counted() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let mut conn = client::Connection::open(addr).expect("connect");

    let health = conn.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200, "{}", health.body);
    assert_eq!(health.header("connection"), Some("keep-alive"));
    let solvers = conn.request("GET", "/v1/solvers", None).expect("solvers");
    assert_eq!(solvers.status, 200);
    assert!(solvers.body.contains("\"name\": \"csr\""));

    let snap = server.state().metrics();
    assert_eq!(
        snap.connections_accepted, 1,
        "both requests must share one connection"
    );
    assert!(snap.keepalive_reuse >= 1, "reuse counter never moved");
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let inst = &sim_instances(1, 55)[0];
    let mut conn = client::Connection::open(addr).expect("connect");

    conn.send("GET", "/healthz", None).expect("send 1");
    conn.send("POST", "/v1/solve", Some(&solve_body(inst, "greedy")))
        .expect("send 2");
    conn.send("GET", "/v1/solvers", None).expect("send 3");
    assert_eq!(conn.in_flight(), 3);

    let first = conn.recv().expect("healthz answers first");
    assert_eq!(first.status, 200);
    assert!(first.body.contains("\"status\":\"ok\""), "{}", first.body);
    let second = conn.recv().expect("solve answers second");
    assert_eq!(second.status, 200);
    assert!(second.body.contains("\"score\""), "{}", second.body);
    let third = conn.recv().expect("solvers answers third");
    assert_eq!(third.status, 200);
    assert!(third.body.contains("\"name\": \"csr\""), "{}", third.body);
    assert_eq!(conn.in_flight(), 0);
    server.shutdown();
}

#[test]
fn idle_connections_are_dropped_after_the_timeout() {
    let server = Server::start(ServeConfig {
        idle_timeout_ms: 150,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();
    let state = server.state();

    use std::io::Read;
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    wait_until("the idle connection to register", || {
        state.metrics().connections_open >= 1
    });
    let t0 = Instant::now();
    let mut byte = [0u8; 1];
    let n = stream.read(&mut byte).expect("read until server closes");
    assert_eq!(n, 0, "server must close the idle connection, not write");
    assert!(
        t0.elapsed() >= Duration::from_millis(50),
        "closed suspiciously fast ({:?}) — not an idle eviction",
        t0.elapsed()
    );
    wait_until("the gauge to drop", || {
        state.metrics().connections_open == 0
    });
    server.shutdown();
}

#[test]
fn solve_wire_format_is_pinned() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let resp = client::post(
        server.addr(),
        "/v1/solve",
        &solve_body(&paper_example(), "greedy"),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let normalized = normalize_wall_secs(&resp.body);

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/serve_solve_demo.json");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, &normalized).expect("bless golden");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} (run with BLESS=1): {e}", path.display()));
    assert_eq!(
        normalized, golden,
        "/v1/solve wire format drifted from snapshot"
    );
    server.shutdown();
}

/// Replace the one nondeterministic response field (`wall_secs`) with
/// a stable placeholder so the body can be snapshot.
fn normalize_wall_secs(body: &str) -> String {
    let marker = "\"wall_secs\":";
    let start = body.find(marker).expect("report has wall_secs") + marker.len();
    let end = start
        + body[start..]
            .find([',', '}'])
            .expect("wall_secs value ends");
    format!("{}0.0{}", &body[..start], &body[end..])
}
