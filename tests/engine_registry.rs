//! The engine layer's contract: every registered solver is
//! bit-identical to the legacy direct entry point it wraps, workspace
//! reuse is live for every solver (not just the improvement family),
//! the racing portfolio dominates its members deterministically, and
//! batch runs of the newly registered solvers (`one-csr`, `exact`,
//! `portfolio`, `chain`) stay identical across thread counts.

use fragalign::align::DpWorkspace;
use fragalign::model::{check_consistency, Instance, InstanceBuilder};
use fragalign::par::with_threads;
use fragalign::prelude::*;
use fragalign::sim::gen_batch;

/// Paper example plus a few seeded sim instances (multi-fragment).
fn multi_m_instances() -> Vec<(String, Instance)> {
    let mut out = vec![(
        "paper".to_owned(),
        fragalign::model::instance::paper_example(),
    )];
    for seed in [3u64, 17, 40] {
        let sim = fragalign::sim::generate(&SimConfig {
            regions: 8,
            h_frags: 3,
            m_frags: 3,
            loss_rate: 0.1,
            shuffles: 1,
            spurious: 2,
            seed,
            ..SimConfig::default()
        });
        out.push((format!("sim{seed}"), sim.instance));
    }
    out
}

/// Instances with exactly one M fragment, where `one-csr` applies.
fn single_m_instances() -> Vec<(String, Instance)> {
    let mut b = InstanceBuilder::new();
    b.h_frag("h1", &["a", "b"]);
    b.h_frag("h2", &["c"]);
    b.h_frag("h3", &["d"]);
    b.m_frag("m", &["p", "q", "r", "s"]);
    b.score("a", "p", 3);
    b.score("b", "q", 4);
    b.score("c", "r", 5);
    b.score("d", "qR", 6);
    let mut out = vec![("handmade".to_owned(), b.build())];
    for (i, sim) in gen_batch(
        &SimConfig {
            regions: 8,
            h_frags: 3,
            m_frags: 1,
            seed: 2002,
            ..SimConfig::default()
        },
        3,
    )
    .into_iter()
    .enumerate()
    {
        assert_eq!(sim.instance.m.len(), 1, "sim batch must stay single-M");
        out.push((format!("sim1m{i}"), sim.instance));
    }
    out
}

fn engine_solve(name: &str, inst: &Instance) -> MatchSet {
    SolverRegistry::global()
        .solve(name, inst, EngineOptions::default())
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .matches
}

#[test]
fn registered_solvers_match_their_legacy_entry_points() {
    for (iname, inst) in multi_m_instances() {
        let legacy: Vec<(&str, MatchSet)> = vec![
            ("csr", csr_improve(&inst, false).matches),
            ("full", full_improve(&inst, false).matches),
            ("border", border_improve(&inst, false).matches),
            ("four", solve_four_approx(&inst)),
            ("matching", border_matching_2approx(&inst)),
            ("greedy", solve_greedy(&inst)),
        ];
        for (name, expected) in legacy {
            let got = engine_solve(name, &inst);
            assert_eq!(got, expected, "{name} diverged from legacy on {iname}");
            check_consistency(&inst, &got).unwrap_or_else(|e| panic!("{name}/{iname}: {e}"));
        }
        // Scaling flows through the engine options too.
        let scaled_opts = EngineOptions {
            scaling: true,
            ..EngineOptions::default()
        };
        let scaled = SolverRegistry::global()
            .solve("csr", &inst, scaled_opts)
            .unwrap();
        assert_eq!(
            scaled.matches,
            csr_improve(&inst, true).matches,
            "scaled csr diverged on {iname}"
        );
    }
}

#[test]
fn one_csr_registered_and_matches_legacy() {
    for (iname, inst) in single_m_instances() {
        let got = engine_solve("one-csr", &inst);
        assert_eq!(
            got,
            solve_one_csr(&inst),
            "one-csr diverged from legacy on {iname}"
        );
        check_consistency(&inst, &got).unwrap();
    }
}

#[test]
fn exact_registered_and_realises_the_optimum() {
    for (iname, inst) in multi_m_instances() {
        let sol = solve_exact(&inst, ExactLimits::default());
        let got = engine_solve("exact", &inst);
        check_consistency(&inst, &got).unwrap_or_else(|e| panic!("exact/{iname}: {e}"));
        assert_eq!(
            got.total_score(),
            sol.score,
            "exact match set must score the optimum on {iname}"
        );
        assert_eq!(got, fragalign::core::exact_matches(&inst, &sol), "{iname}");
    }
}

#[test]
fn chain_registered_consistent_and_bounded_by_exact() {
    // The chaining tier is a heuristic: always consistent, matches its
    // legacy entry point, and never beats the optimum where the exact
    // solver can certify one.
    for (iname, inst) in multi_m_instances() {
        let got = engine_solve("chain", &inst);
        check_consistency(&inst, &got).unwrap_or_else(|e| panic!("chain/{iname}: {e}"));
        assert_eq!(
            got,
            fragalign::align::solve_chain(&inst),
            "chain diverged from legacy on {iname}"
        );
        let optimum = solve_exact(&inst, ExactLimits::default()).score;
        assert!(
            got.total_score() <= optimum,
            "chain ({}) beat the certified optimum ({optimum}) on {iname}",
            got.total_score()
        );
    }
}

#[test]
fn chain_holds_a_score_ratio_floor_on_sim_defaults() {
    // Pinned quality floor: across default-config sim seeds, chaining
    // keeps at least 60% of the iterative-improvement score in
    // aggregate (measured 0.776 at pin time; the margin absorbs seed
    // drift). A regression below the floor means anchoring or window
    // selection broke.
    let mut chain_total = 0;
    let mut csr_total = 0;
    for seed in [1u64, 2, 3, 4, 5] {
        let inst = fragalign::sim::generate(&SimConfig {
            seed,
            ..SimConfig::default()
        })
        .instance;
        chain_total += engine_solve("chain", &inst).total_score();
        csr_total += engine_solve("csr", &inst).total_score();
    }
    assert!(csr_total > 0, "csr must score on sim defaults");
    assert!(
        chain_total * 10 >= csr_total * 6,
        "chain fell below the pinned 60% floor: chain {chain_total} vs csr {csr_total}"
    );
}

#[test]
fn portfolio_dominates_every_registered_solver_on_the_demo() {
    let inst = fragalign::model::instance::paper_example();
    let reg = SolverRegistry::global();
    let opts = EngineOptions::default();
    let portfolio = reg.solve("portfolio", &inst, opts).unwrap();
    check_consistency(&inst, &portfolio.matches).unwrap();
    for spec in reg.specs() {
        if spec.name == "portfolio" || spec.build().supports(&inst, &opts).is_err() {
            continue;
        }
        let run = reg.solve(spec.name, &inst, opts).unwrap();
        assert!(
            portfolio.score >= run.score,
            "portfolio ({}) lost to {} ({})",
            portfolio.score,
            spec.name,
            run.score
        );
    }
    // The paper optimum, with the tie broken by registry order: `csr`
    // reaches 11 and precedes every other 11-scorer.
    assert_eq!(portfolio.score, 11);
    assert_eq!(portfolio.report.winner.as_deref(), Some("csr"));
    assert_eq!(portfolio.matches, engine_solve("csr", &inst));
}

#[test]
fn portfolio_members_race_in_registry_order() {
    // Argument order and duplicates must not matter.
    let p = Portfolio::with_members(&["greedy", "four", "greedy"]).unwrap();
    assert_eq!(p.members(), ["four", "greedy"]);
    assert!(matches!(
        Portfolio::with_members(&["no-such-solver"]),
        Err(EngineError::UnknownSolver { .. })
    ));
    // A custom race returns the better member's exact result.
    let inst = fragalign::model::instance::paper_example();
    let mut ctx = SolveCtx::new(&inst, EngineOptions::default());
    let out = p.solve(&inst, &mut ctx);
    let four = solve_four_approx(&inst);
    let greedy = solve_greedy(&inst);
    let best = if greedy.total_score() > four.total_score() {
        greedy
    } else {
        four
    };
    assert_eq!(out.matches, best);
}

#[test]
fn workspace_reuse_is_live_for_every_one_shot_solver() {
    // Satellite of the engine refactor: `four`, `greedy` and
    // `matching` now accept an external oracle, so a worker's warm
    // workspace serves them across instances. Solve the same instance
    // twice through one workspace: the second run must not grow a
    // single buffer (and flipping reuse off must not change results).
    let inst = fragalign::sim::generate(&SimConfig {
        regions: 12,
        h_frags: 3,
        m_frags: 3,
        seed: 99,
        ..SimConfig::default()
    })
    .instance;
    let single = single_m_instances().swap_remove(0).1;
    let reg = SolverRegistry::global();
    for name in ["four", "greedy", "matching", "one-csr"] {
        let inst = if name == "one-csr" { &single } else { &inst };
        let mut ws = DpWorkspace::new();
        let opts = EngineOptions::default();
        let cold = reg
            .solve_with_workspace(name, inst, opts, &mut ws)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(cold.report.dp_fills > 0, "{name}: no tracked fills");
        assert!(cold.report.dp_reallocs > 0, "{name}: cold run must grow");
        let warm = reg.solve_with_workspace(name, inst, opts, &mut ws).unwrap();
        assert_eq!(warm.matches, cold.matches, "{name}: reuse changed results");
        assert_eq!(
            warm.report.dp_reallocs, 0,
            "{name}: warm run may not allocate"
        );
        let baseline_opts = EngineOptions {
            reuse_workspaces: false,
            ..EngineOptions::default()
        };
        let baseline = reg.solve(name, inst, baseline_opts).unwrap();
        assert_eq!(baseline.matches, cold.matches, "{name}: baseline differs");
    }
}

#[test]
fn newly_registered_solvers_batch_deterministically() {
    // one-csr over a single-M batch; exact and portfolio over a small
    // multi-M batch: on the real thread pool now, so this genuinely
    // exercises cross-thread steal schedules — 1 == 2 == 8 threads ==
    // sequential loop, bit for bit.
    let single_m: Vec<Instance> = single_m_instances().into_iter().map(|(_, i)| i).collect();
    let multi_m: Vec<Instance> = multi_m_instances().into_iter().map(|(_, i)| i).collect();
    for (name, instances) in [
        ("one-csr", &single_m),
        ("exact", &multi_m),
        ("portfolio", &multi_m),
        ("chain", &multi_m),
    ] {
        let opts = BatchOptions::new(name);
        let run_at = |threads: usize| {
            let insts = instances.clone();
            let opts = opts.clone();
            with_threads(threads, move || solve_batch(&insts, &opts).unwrap()).0
        };
        let one_thread = run_at(1);
        for threads in [2, 8] {
            assert_eq!(
                one_thread,
                run_at(threads),
                "{name}: {threads}-thread pool changed results"
            );
        }
        let mut ws = DpWorkspace::new();
        let sequential: Vec<BatchSolution> = instances
            .iter()
            .map(|inst| solve_single(inst, &opts, &mut ws).unwrap())
            .collect();
        assert_eq!(one_thread, sequential, "{name}: batch != sequential");
        for (inst, sol) in instances.iter().zip(&one_thread) {
            check_consistency(inst, &sol.matches).unwrap();
        }
    }
}

#[test]
fn readme_solver_table_is_generated_from_the_registry() {
    let readme = include_str!("../README.md");
    let table = SolverRegistry::global().markdown_table();
    assert!(
        readme.contains(&table),
        "README solver table drifted from the registry; regenerate it with \
         `fragalign solvers` (expected block:\n{table})"
    );
}
