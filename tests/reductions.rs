//! Integration tests for the hardness machinery: Lemma 1 (UCSR),
//! Theorem 2 (CSoP), Theorem 3 (concatenation), and the ISP substrate
//! guarantee feeding Corollary 1.

use fragalign::core::csop::{csop_solution_to_mis, mis_to_csop_solution, reduce_mis_to_csop};
use fragalign::core::ucsr::{map_solution_back, map_solution_forward, pairs_score, reduce_to_ucsr};
use fragalign::graph::{dirac_relabel, is_independent_set, max_independent_set, random_regular};
use fragalign::isp::{solve_exact as isp_exact, solve_tpa, Interval, IspInstance};
use fragalign::model::Sym;
use fragalign::prelude::*;

#[test]
fn lemma1_roundtrip_on_simulated_instances() {
    for seed in 0..3u64 {
        let sim = fragalign::sim::generate(&SimConfig {
            regions: 5,
            h_frags: 2,
            m_frags: 2,
            loss_rate: 0.0,
            shuffles: 0,
            spurious: 1,
            seed,
            ..SimConfig::default()
        });
        let inst = &sim.instance;
        for eps in [1.0, 0.5] {
            let red = reduce_to_ucsr(inst, eps);
            // Use the solver's aligned pairs as the CSR solution.
            let res = csr_improve(inst, false);
            let layout = LayoutBuilder::new(inst, &DpAligner)
                .layout(&res.matches)
                .unwrap();
            let mut pairs: Vec<(Sym, Sym)> = Vec::new();
            for col in &layout.columns {
                if let (Some(hc), Some(mc)) = (col.h, col.m) {
                    let h_rev = layout.placement(hc.0).unwrap().reversed;
                    let m_rev = layout.placement(mc.0).unwrap().reversed;
                    let a = fragalign::model::ConjecturePair::cell_sym(inst, hc, h_rev);
                    let b = fragalign::model::ConjecturePair::cell_sym(inst, mc, m_rev);
                    if inst.sigma.score(a, b) > 0 {
                        pairs.push((a, b));
                    }
                }
            }
            let csr_score = pairs_score(inst, &pairs);
            let f = map_solution_forward(&red, &pairs);
            let u_score = red
                .ucsr
                .validate(&f)
                .unwrap_or_else(|e| panic!("seed {seed} eps {eps}: {e}"));
            assert_eq!(u_score, csr_score * red.s as i64, "Property 2, seed {seed}");

            let back = map_solution_back(&red, inst, &f);
            let back_score = pairs_score(inst, &back);
            assert!(
                back_score as f64 >= (1.0 - eps) * csr_score as f64,
                "Property 3, seed {seed}: back {back_score} vs {csr_score}"
            );
        }
    }
}

#[test]
fn theorem2_exact_correspondence() {
    for (nodes, seed) in [(8usize, 1u64), (10, 2)] {
        let g0 = random_regular(nodes, 3, seed);
        let (g, _) = dirac_relabel(&g0, seed);
        let inst = reduce_mis_to_csop(&g);
        let w = max_independent_set(&g);
        let n = g.len() / 2;
        let u = mis_to_csop_solution(&g, &w);
        assert!(inst.is_feasible(&u));
        assert_eq!(u.len(), 5 * n + w.len());
        let u_star = inst.solve_exact();
        assert_eq!(u_star.len(), 5 * n + w.len(), "nodes {nodes} seed {seed}");
        let w_back = csop_solution_to_mis(&g, &inst.normalize(&u_star));
        assert!(is_independent_set(&g, &w_back));
        assert_eq!(w_back.len(), w.len());
    }
}

#[test]
fn theorem3_inequality_on_small_instances() {
    // Opt(H, M′) + Opt(M, H′) ≥ Opt(H, M), checked with exact solvers.
    for seed in 0..3u64 {
        let sim = fragalign::sim::generate(&SimConfig {
            regions: 8,
            h_frags: 2,
            m_frags: 2,
            loss_rate: 0.0,
            shuffles: 1,
            spurious: 1,
            seed,
            ..SimConfig::default()
        });
        let inst = &sim.instance;
        let opt = solve_exact(inst, ExactLimits::default()).score;

        let concat_m = Instance {
            h: inst.h.clone(),
            m: vec![inst.concat_species(Species::M)],
            sigma: inst.sigma.clone(),
            alphabet: inst.alphabet.clone(),
        };
        let swapped = inst.swapped();
        let concat_h = Instance {
            h: swapped.h.clone(),
            m: vec![swapped.concat_species(Species::M)],
            sigma: swapped.sigma.clone(),
            alphabet: swapped.alphabet.clone(),
        };
        let opt_hm = solve_exact(
            &concat_m,
            ExactLimits {
                max_frags: 3,
                max_regions: 40,
            },
        )
        .score;
        let opt_mh = solve_exact(
            &concat_h,
            ExactLimits {
                max_frags: 3,
                max_regions: 40,
            },
        )
        .score;
        assert!(
            opt_hm + opt_mh >= opt,
            "seed {seed}: {opt_hm} + {opt_mh} < {opt}"
        );
    }
}

#[test]
fn tpa_ratio_two_on_random_isp() {
    let mut state = 0xFEEDFACEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for case in 0..60 {
        let jobs = 1 + (next() % 5) as usize;
        let mut inst = IspInstance::new(jobs);
        let cands = 3 + (next() % 14) as usize;
        for tag in 0..cands {
            let job = (next() % jobs as u64) as usize;
            let lo = (next() % 20) as i64;
            let len = 1 + (next() % 6) as i64;
            let profit = 1 + (next() % 50) as i64;
            inst.push(job, Interval::new(lo, lo + len), profit, tag);
        }
        let tpa = solve_tpa(&inst);
        let exact = isp_exact(&inst);
        inst.validate(&tpa).unwrap();
        assert!(
            2 * tpa.profit() >= exact.profit(),
            "case {case}: tpa {} exact {}",
            tpa.profit(),
            exact.profit()
        );
    }
}

#[test]
fn one_csr_via_isp_respects_ratio() {
    for seed in 0..4u64 {
        let sim = fragalign::sim::generate(&SimConfig {
            regions: 10,
            h_frags: 3,
            m_frags: 1,
            loss_rate: 0.1,
            shuffles: 1,
            spurious: 2,
            seed,
            ..SimConfig::default()
        });
        let inst = &sim.instance;
        let tpa = solve_one_csr(inst).total_score();
        let exact = fragalign::core::one_csr::solve_one_csr_exact(inst).total_score();
        assert!(exact >= tpa, "seed {seed}");
        assert!(2 * tpa >= exact, "seed {seed}: {tpa} vs {exact}");
    }
}
