//! Full pipeline integration: simulate → solve → verify → lay out →
//! re-derive → recover, across noise levels and both σ modes.

use fragalign::model::check_consistency;
use fragalign::prelude::*;
use fragalign::sim::DnaMode;

#[test]
fn simulate_solve_layout_roundtrip() {
    for seed in 0..4u64 {
        let cfg = SimConfig {
            regions: 14,
            h_frags: 3,
            m_frags: 3,
            loss_rate: 0.15,
            shuffles: 2,
            spurious: 3,
            seed,
            ..SimConfig::default()
        };
        let sim = generate(&cfg);
        let res = csr_improve(&sim.instance, false);
        check_consistency(&sim.instance, &res.matches).unwrap();

        // Layout realises exactly the matches' total score.
        let layout = LayoutBuilder::new(&sim.instance, &DpAligner)
            .layout(&res.matches)
            .unwrap();
        layout.validate(&sim.instance).unwrap();
        assert_eq!(layout.score(&sim.instance), res.score, "seed {seed}");

        // Derived matches from the layout are consistent and preserve
        // the score (Remark 1).
        let derived = layout.derive_matches(&sim.instance);
        assert_eq!(derived.total_score(), res.score, "seed {seed}");
        check_consistency(&sim.instance, &derived).unwrap();

        // Recovery metrics are well-formed.
        let rep = evaluate_recovery(&sim, &res.matches);
        assert!((0.0..=1.0).contains(&rep.pair_recall));
        assert!((0.0..=1.0).contains(&rep.order_accuracy));
        assert!((0.0..=1.0).contains(&rep.orient_accuracy));
    }
}

#[test]
fn dna_mode_end_to_end() {
    let sim = generate(&SimConfig {
        regions: 10,
        h_frags: 2,
        m_frags: 2,
        loss_rate: 0.0,
        shuffles: 0,
        spurious: 1,
        dna: Some(DnaMode::default()),
        seed: 5,
        ..SimConfig::default()
    });
    let res = csr_improve(&sim.instance, false);
    check_consistency(&sim.instance, &res.matches).unwrap();
    assert!(res.score > 0, "DNA-derived σ must produce signal");
    let rep = evaluate_recovery(&sim, &res.matches);
    assert!(rep.pair_recall > 0.5, "recall {}", rep.pair_recall);
}

#[test]
fn noise_free_instances_recover_order_and_orientation() {
    for seed in 0..3u64 {
        let sim = generate(&SimConfig {
            regions: 16,
            h_frags: 2,
            m_frags: 4,
            loss_rate: 0.0,
            shuffles: 0,
            spurious: 0,
            score_jitter: 0,
            seed,
            ..SimConfig::default()
        });
        let res = csr_improve(&sim.instance, false);
        let rep = evaluate_recovery(&sim, &res.matches);
        assert!(
            rep.pair_recall >= 0.75,
            "seed {seed}: recall {}",
            rep.pair_recall
        );
        assert!(
            rep.orient_accuracy >= 0.8,
            "seed {seed}: orient {}",
            rep.orient_accuracy
        );
    }
}

#[test]
fn solvers_scale_to_medium_instances() {
    // A smoke test that the quadratic enumeration stays tractable at
    // the benchmark sizes.
    let sim = generate(&SimConfig {
        regions: 40,
        h_frags: 6,
        m_frags: 6,
        seed: 17,
        ..SimConfig::default()
    });
    let four = solve_four_approx(&sim.instance);
    check_consistency(&sim.instance, &four).unwrap();
    let res = csr_improve(&sim.instance, false);
    check_consistency(&sim.instance, &res.matches).unwrap();
    assert!(res.score >= four.total_score());
}
