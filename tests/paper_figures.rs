//! Executable reproductions of the paper's figures (EXPERIMENTS.md
//! F1–F8). Each test pins the behaviour a figure illustrates.

use fragalign::model::check_consistency;
use fragalign::prelude::*;

/// Fig. 1: contig h of human aligns region a with c in mouse contig
/// m1 and region b with d^R in m2 ⇒ m1 precedes m2^R.
#[test]
fn fig1_orient_order_inference() {
    let mut b = InstanceBuilder::new();
    b.h_frag("h", &["x1", "a", "x2", "b", "x3"]);
    b.m_frag("m1", &["y1", "c"]);
    b.m_frag("m2", &["d", "y2"]);
    b.score("a", "c", 10);
    b.score("b", "dR", 8);
    let inst = b.build();
    let res = csr_improve(&inst, false);
    assert_eq!(res.score, 18, "both alignments are realisable together");
    let layout = LayoutBuilder::new(&inst, &DpAligner)
        .layout(&res.matches)
        .unwrap();
    let h = layout.placement(FragId::h(0)).unwrap();
    let m1 = layout.placement(FragId::m(0)).unwrap();
    let m2 = layout.placement(FragId::m(1)).unwrap();
    // The layout may mirror the whole island (a global flip is free);
    // the inference is *relative* to h's laid orientation, exactly as
    // the paper states it.
    assert_eq!(m1.reversed, h.reversed, "m1 keeps h's orientation");
    assert_ne!(m2.reversed, h.reversed, "m2 is reverse-complemented");
    let m1_before_m2 = m1.span_start < m2.span_start;
    assert_eq!(
        m1_before_m2, !h.reversed,
        "relative to h's orientation, m1 precedes m2^R"
    );
}

/// Figs. 2 and 4: the running example and its optimum score 11
/// (delete b and t, reverse h2, order m1 before m2).
#[test]
fn fig2_fig4_running_example_optimum_11() {
    let inst = fragalign::model::instance::paper_example();
    let exact = solve_exact(&inst, ExactLimits::default());
    assert_eq!(exact.score, 11);
    let improve = csr_improve(&inst, false);
    assert_eq!(improve.score, 11, "CSR_Improve reaches the optimum here");
    check_consistency(&inst, &improve.matches).unwrap();
}

/// Fig. 5: the optimum corresponds to the consistent match set
/// ω1 = (h1(1,2), m1(1,2)), ω2 = (h1(3,3), m2(1,1)),
/// ω3 = (h2^R(1,1), m2(2,2)).
#[test]
fn fig5_match_decomposition() {
    let inst = fragalign::model::instance::paper_example();
    let s = MatchSet::from_matches(vec![
        Match::new(
            Site::new(FragId::h(0), 0, 2),
            Site::new(FragId::m(0), 0, 2),
            Orient::Same,
            4,
        ),
        Match::new(
            Site::new(FragId::h(0), 2, 3),
            Site::new(FragId::m(1), 0, 1),
            Orient::Same,
            5,
        ),
        Match::new(
            Site::new(FragId::h(1), 0, 1),
            Site::new(FragId::m(1), 1, 2),
            Orient::Reversed,
            2,
        ),
    ]);
    let report = check_consistency(&inst, &s).unwrap();
    assert_eq!(report.islands.len(), 1);
    assert_eq!(s.total_score(), 11);
    // Round trip through an explicit conjecture pair (Remark 1).
    let pair = LayoutBuilder::new(&inst, &DpAligner).layout(&s).unwrap();
    assert_eq!(pair.score(&inst), 11);
    let derived = pair.derive_matches(&inst);
    assert_eq!(derived.total_score(), 11);
    check_consistency(&inst, &derived).unwrap();
}

/// Fig. 3 (left): one alignment supports the current orientation of m,
/// the other calls for its reversal — not simultaneously realisable.
#[test]
fn fig3_orientation_conflict_rejected() {
    let mut b = InstanceBuilder::new();
    b.h_frag("h", &["a", "z", "b"]);
    b.m_frag("m", &["c", "d"]);
    b.score("a", "c", 5);
    b.score("b", "dR", 5);
    let inst = b.build();
    let bad = MatchSet::from_matches(vec![
        Match::new(
            Site::new(FragId::h(0), 0, 1),
            Site::new(FragId::m(0), 0, 1),
            Orient::Same,
            5,
        ),
        Match::new(
            Site::new(FragId::h(0), 2, 3),
            Site::new(FragId::m(0), 1, 2),
            Orient::Reversed,
            5,
        ),
    ]);
    assert!(check_consistency(&inst, &bad).is_err());
    // The optimum keeps one of the two.
    let exact = solve_exact(&inst, ExactLimits::default());
    assert_eq!(exact.score, 5);
}

/// Fig. 3 (right): aligning regions must appear in the same order in
/// both sequences — the crossing pairing is worth only its best half.
#[test]
fn fig3_order_conflict_limits_score() {
    let mut b = InstanceBuilder::new();
    b.h_frag("h", &["a", "b"]);
    b.m_frag("m", &["c", "d"]);
    b.score("a", "d", 5);
    b.score("b", "c", 4);
    let inst = b.build();
    // Reversal does NOT rescue the crossing: flipping m turns d into
    // d^R, and σ(a, d^R) is a different (zero) entry — the paper's
    // σ(a,b) = σ(a^R,b^R) symmetry preserves *relative* orientation.
    // So only the better of the two pairs survives, in any layout.
    let exact = solve_exact(&inst, ExactLimits::default());
    assert_eq!(exact.score, 5, "order conflict forfeits the weaker pair");
    let h_word = &inst.h[0].regions;
    let m_word = &inst.m[0].regions;
    let forward_only = fragalign::align::p_score(&inst.sigma, h_word, m_word);
    assert_eq!(forward_only, 5);
}

/// Fig. 6: site classification drives match kinds: full matches beat
/// border matches in the classification precedence.
#[test]
fn fig6_site_classification_precedence() {
    use fragalign::model::{MatchKind, SiteClass};
    let mut b = InstanceBuilder::new();
    b.h_frag("h", &["a", "b", "c", "d"]);
    b.m_frag("m", &["w", "x"]);
    let inst = b.build();
    let h_len = inst.frag_len(FragId::h(0));
    assert_eq!(
        Site::new(FragId::h(0), 0, 4).classify(h_len),
        SiteClass::Full
    );
    assert_eq!(
        Site::new(FragId::h(0), 0, 2).classify(h_len),
        SiteClass::Border(fragalign::model::End::Left)
    );
    assert_eq!(
        Site::new(FragId::h(0), 1, 3).classify(h_len),
        SiteClass::Inner
    );
    // Full site on one side ⇒ full match even though the other side is
    // a border site (ω2/ω3 vs ω1/ω4 in Fig. 6).
    let m = Match::new(
        Site::new(FragId::h(0), 0, 2),
        Site::new(FragId::m(0), 0, 2),
        Orient::Same,
        0,
    );
    assert!(matches!(m.kind(4, 2), Some(MatchKind::Full { .. })));
}

/// Figs. 7 and 8: MS maximises over both orientations; border sites
/// collapse to the same two candidates (DESIGN.md D5).
#[test]
fn fig7_fig8_match_score_orientations() {
    let inst = fragalign::model::instance::paper_example();
    // d vs v: only σ(d, v^R) = 2 is non-zero.
    let (s, o) = fragalign::align::ms_sites(
        &inst,
        Site::new(FragId::h(1), 0, 1),
        Site::new(FragId::m(1), 1, 2),
    );
    assert_eq!((s, o), (2, Orient::Reversed));
    // b..c suffix vs s..t prefix: reversed orientation wins via σ(b, t^R).
    let (s2, o2) = fragalign::align::ms_sites(
        &inst,
        Site::new(FragId::h(0), 1, 3),
        Site::new(FragId::m(0), 0, 2),
    );
    assert_eq!((s2, o2), (3, Orient::Reversed));
}

/// Figs. 9–12 territory: I1 improvement attempts relocate plugs and
/// refill freed zones with TPA; the driver only ever raises the score
/// and keeps consistency.
#[test]
fn fig9_to_12_full_improve_monotone() {
    let mut b = InstanceBuilder::new();
    b.h_frag("h1", &["a", "b"]);
    b.h_frag("h2", &["c"]);
    b.m_frag("m1", &["p", "q", "r"]);
    b.score("a", "p", 4);
    b.score("b", "q", 4);
    b.score("c", "q", 6);
    let inst = b.build();
    let res = full_improve(&inst, false);
    check_consistency(&inst, &res.matches).unwrap();
    // Optimum: h1 → ⟨p⟩ (a–p = 4) and h2 → ⟨q⟩ (c–q = 6) total 10,
    // beating the tempting h1 → [p,q] (8) that blocks q. Reaching it
    // from the greedy-attractive 8 requires exactly the I1 relocation
    // with a TPA refill that Figs. 9–12 illustrate.
    assert_eq!(res.score, 10);
    let exact = solve_exact(&inst, ExactLimits::default());
    assert_eq!(exact.score, 10, "full matches suffice on this instance");
}

/// Figs. 13–17 territory: border improvements (I2/I3) build staircase
/// overlaps that full matches cannot express.
#[test]
fn fig13_to_17_border_improve_builds_staircases() {
    let mut b = InstanceBuilder::new();
    // h1's head aligns a whole m fragment while its tail overlaps
    // m1's head — a full plug of h1 cannot realise both, only the
    // staircase can.
    b.h_frag("h1", &["a", "b"]);
    b.h_frag("h2", &["e", "f"]);
    b.m_frag("m1", &["b'", "c'", "e'"]);
    b.m_frag("m2", &["a''"]);
    b.score("a", "a''", 5);
    b.score("b", "b'", 7);
    b.score("e", "e'", 7);
    let inst = b.build();
    let res = csr_improve(&inst, false);
    check_consistency(&inst, &res.matches).unwrap();
    assert_eq!(res.score, 19, "plug + staircase chain: 5 + 7 + 7");
    let report = check_consistency(&inst, &res.matches).unwrap();
    assert_eq!(report.islands.len(), 1);
    // At least one staircase (border) match is required for 19.
    let borders = res
        .matches
        .iter()
        .filter(|(_, m)| {
            matches!(
                m.kind(inst.frag_len(m.h.frag), inst.frag_len(m.m.frag)),
                Some(fragalign::model::MatchKind::Border { .. })
            )
        })
        .count();
    assert!(borders >= 1, "score 19 needs a staircase overlap");
    assert!(report.islands[0].spine.len() >= 2);
}
