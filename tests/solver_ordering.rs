//! Deterministic-seed regression: the solver family must stay
//! mutually ordered on the paper's running example. The improvement
//! driver starts from nothing and only ever commits profitable
//! attempts, so on any fixed instance its score may not fall below
//! the four-approximation it is proved against, and the exact optimum
//! bounds everything from above.

use fragalign::prelude::*;

/// Total score of a solution produced by one solver.
fn score_of(set: &MatchSet) -> Score {
    set.total_score()
}

#[test]
fn solver_scores_are_mutually_ordered_on_paper_example() {
    let inst = fragalign::model::instance::paper_example();

    let greedy = solve_greedy(&inst);
    let four = solve_four_approx(&inst);
    let improved = csr_improve(&inst, false);
    let exact = fragalign::core::solve_exact(&inst, ExactLimits::default());

    // Every solution must be consistent before scores mean anything.
    for (name, set) in [
        ("greedy", &greedy),
        ("four_approx", &four),
        ("csr_improve", &improved.matches),
    ] {
        assert!(
            check_consistency(&inst, set).is_ok(),
            "{name} produced an inconsistent solution"
        );
    }

    // The 3+eps improvement must not lose to the factor-4 start, and
    // nothing beats the exhaustive optimum.
    assert!(
        improved.score >= score_of(&four),
        "csr_improve ({}) fell below solve_four_approx ({})",
        improved.score,
        score_of(&four)
    );
    assert!(
        exact.score >= improved.score,
        "exact ({}) below csr_improve ({})",
        exact.score,
        improved.score
    );
    assert!(
        exact.score >= score_of(&greedy),
        "exact ({}) below greedy ({})",
        exact.score,
        score_of(&greedy)
    );

    // Regression pins for the paper instance itself: the documented
    // optimum is 11 and the improvement family reaches it.
    assert_eq!(exact.score, 11);
    assert_eq!(improved.score, 11);
}

#[test]
fn ordering_holds_on_generated_instances() {
    // A couple of fixed seeds, small enough to stay fast but
    // structured enough to separate the solvers.
    for seed in [3u64, 17, 40] {
        let sim = generate(&SimConfig {
            regions: 8,
            h_frags: 3,
            m_frags: 3,
            seed,
            ..SimConfig::default()
        });
        let inst = &sim.instance;
        let four = solve_four_approx(inst);
        let improved = csr_improve(inst, false);
        assert!(
            check_consistency(inst, &improved.matches).is_ok(),
            "seed {seed}"
        );
        assert!(
            improved.score >= score_of(&four),
            "seed {seed}: csr_improve ({}) below four_approx ({})",
            improved.score,
            score_of(&four)
        );
    }
}
