//! Compile-and-run smoke coverage for the examples.
//!
//! `cargo test` already *builds* every registered example; this test
//! additionally *runs* each example binary (release or debug,
//! whichever was just built alongside the test) so a panicking
//! example fails CI rather than only a missing compile. The cheap
//! quickstart is always exercised; the heavier ones are capped by the
//! same harness timeout as everything else.

use std::path::PathBuf;
use std::process::Command;

/// Locate a just-built example binary next to the test executable.
fn example_bin(name: &str) -> Option<PathBuf> {
    // target/<profile>/deps/<test> -> target/<profile>/examples/<name>
    let mut dir = std::env::current_exe().ok()?;
    dir.pop(); // strip test filename
    if dir.ends_with("deps") {
        dir.pop();
    }
    let candidate = dir.join("examples").join(name);
    candidate.exists().then_some(candidate)
}

fn run_example(name: &str) {
    let Some(bin) = example_bin(name) else {
        // The example was not built in this invocation's profile
        // (e.g. `cargo test --test examples_smoke` alone); compiling
        // it is already enforced by the target registration.
        eprintln!("skipping {name}: binary not present in this profile");
        return;
    };
    let output = Command::new(&bin)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn example {name} at {}: {e}", bin.display()));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn orient_contigs_runs() {
    run_example("orient_contigs");
}

#[test]
fn hardness_gadgets_runs() {
    run_example("hardness_gadgets");
}

#[test]
fn genome_recovery_runs() {
    run_example("genome_recovery");
}

#[test]
fn parallel_speedup_runs() {
    run_example("parallel_speedup");
}
