//! Release-gated wall-clock guard: on real multi-core hardware the
//! 4-thread batch run must beat the 1-thread run by ≥ 1.5×, or the
//! thread pool has regressed to shim theatre. Skipped under debug
//! builds (unoptimised timings are noise) and on hosts with fewer
//! than 4 cores (no speedup is physically available); CI's `speedup`
//! job runs it in release on a multi-core runner.

use fragalign::model::Instance;
use fragalign::par::with_threads;
use fragalign::prelude::*;
use std::time::Duration;

fn smoke_batch() -> Vec<Instance> {
    gen_batch(
        &SimConfig {
            regions: 14,
            h_frags: 3,
            m_frags: 3,
            loss_rate: 0.1,
            shuffles: 1,
            spurious: 2,
            seed: 4242,
            ..SimConfig::default()
        },
        16,
    )
    .into_iter()
    .map(|s| s.instance)
    .collect()
}

#[test]
fn four_threads_beat_one_by_1_5x_on_the_release_smoke_workload() {
    if cfg!(debug_assertions) {
        eprintln!("skipped: speedup floors only hold for release builds");
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipped: host has {cores} core(s); a 4-thread speedup needs 4");
        return;
    }
    let instances = smoke_batch();
    let opts = BatchOptions::new("csr");
    // Warm-up, then best-of-two per width to shave scheduler noise.
    let _ = solve_batch(&instances, &opts).unwrap();
    let measure = |threads: usize| -> (Vec<BatchSolution>, Duration) {
        let mut best: Option<(Vec<BatchSolution>, Duration)> = None;
        for _ in 0..2 {
            let instances = &instances;
            let opts = opts.clone();
            let (solutions, elapsed) =
                with_threads(threads, move || solve_batch(instances, &opts).unwrap());
            if best.as_ref().is_none_or(|(_, b)| elapsed < *b) {
                best = Some((solutions, elapsed));
            }
        }
        best.expect("measured at least once")
    };
    let (seq, t1) = measure(1);
    let (par, t4) = measure(4);
    assert_eq!(seq, par, "thread count changed batch results");
    let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 1.5,
        "4-thread batch must be >= 1.5x the 1-thread run (got {speedup:.2}x: \
         {t1:?} -> {t4:?} on {cores} cores)"
    );
}
