//! The parallel substrate's contract, end to end: cancellation stops
//! solvers at round boundaries (deterministically under work caps),
//! the portfolio genuinely races — budget- and bound-cancelled members
//! are observable in `SolveReport.racers` while the winner stays the
//! sequential baseline's — and results are bit-identical across real
//! 1/2/8-thread pools.

use fragalign::align::DpWorkspace;
use fragalign::model::Instance;
use fragalign::par::with_threads;
use fragalign::prelude::*;

/// An instance whose provable score upper bound is achievable: two
/// perfectly matching two-region fragments, uniform score 5, so
/// `score_upper_bound() == 10` and a full-fragment match reaches it.
fn saturating_instance() -> Instance {
    let mut b = InstanceBuilder::new();
    b.h_frag("h", &["a", "b"]);
    b.m_frag("m", &["p", "q"]);
    b.score("a", "p", 5);
    b.score("b", "q", 5);
    b.build()
}

fn solve_capped(name: &str, inst: &Instance, work_cap: u64) -> SolveRun {
    let mut ws = DpWorkspace::new();
    SolverRegistry::global()
        .solve_cancellable(
            name,
            inst,
            EngineOptions::default(),
            &mut ws,
            CancelToken::with_limits(None, Some(work_cap)),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn work_capped_solves_stop_at_a_deterministic_round() {
    let inst = fragalign::model::instance::paper_example();
    // Cap 1: the first improvement round already charges more, so the
    // loop stops at the second round boundary with the round-1 state.
    let capped = solve_capped("csr", &inst, 1);
    assert!(capped.report.cancelled, "cap must interrupt the run");
    assert!(capped.report.rounds <= 1);
    check_consistency(&inst, &capped.matches).expect("partial result stays consistent");
    // Deterministic: the same cap lands on the same round, bit for bit.
    let again = solve_capped("csr", &inst, 1);
    assert_eq!(capped.matches, again.matches);
    assert_eq!(capped.report.rounds, again.report.rounds);
    // A generous cap never trips.
    let free = solve_capped("csr", &inst, u64::MAX);
    assert!(!free.report.cancelled);
    assert_eq!(free.score, 11);
}

#[test]
fn expired_deadline_preempts_any_solver() {
    let inst = fragalign::model::instance::paper_example();
    let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
    for name in ["csr", "four", "greedy", "matching", "exact"] {
        let mut ws = DpWorkspace::new();
        let run = SolverRegistry::global()
            .solve_cancellable(
                name,
                &inst,
                EngineOptions::default(),
                &mut ws,
                CancelToken::with_limits(Some(past), None),
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(run.report.cancelled, "{name} must observe the deadline");
        assert!(run.matches.is_empty(), "{name} must not have started");
    }
}

#[test]
fn portfolio_budget_cancellation_is_observable_and_winner_stable() {
    let inst = fragalign::model::instance::paper_example();
    // Unbudgeted baseline: the winner every budgeted run must keep.
    let baseline = SolverRegistry::global()
        .solve("portfolio", &inst, EngineOptions::default())
        .unwrap();
    assert_eq!(baseline.report.winner.as_deref(), Some("csr"));
    assert_eq!(baseline.score, 11);
    assert!(
        baseline.report.racers.len() > 1,
        "racer telemetry must cover the race"
    );

    // Tight work caps on `full` and `border` (they charge ~18 and ~10
    // attempts in round 1 on this instance); `csr` races unbudgeted.
    let config = PortfolioConfig {
        default_budget: RacerBudget::UNLIMITED,
        overrides: vec![
            (
                "full".to_owned(),
                RacerBudget {
                    wall: None,
                    work_cap: Some(10),
                },
            ),
            (
                "border".to_owned(),
                RacerBudget {
                    wall: None,
                    work_cap: Some(4),
                },
            ),
        ],
    };
    let portfolio =
        Portfolio::with_members_config(&["csr", "full", "border", "four", "greedy"], config)
            .unwrap();
    let mut ctx = SolveCtx::new(&inst, EngineOptions::default());
    let out = portfolio.solve(&inst, &mut ctx);

    let cancelled: Vec<&str> = out
        .racers
        .iter()
        .filter(|r| r.cancelled.is_some())
        .map(|r| r.name.as_str())
        .collect();
    assert!(
        cancelled.contains(&"full") && cancelled.contains(&"border"),
        "budgeted members must be cancelled early (got {cancelled:?})"
    );
    for racer in &out.racers {
        if racer.cancelled.is_some() {
            assert_eq!(
                racer.cancelled.as_deref(),
                Some("work-cap"),
                "{}: wrong cancel cause",
                racer.name
            );
        }
    }
    // The winner is unchanged from the sequential baseline: cancelled
    // members compete with their (lower-scoring) partials and lose.
    assert_eq!(out.winner, Some("csr"));
    assert_eq!(out.matches, baseline.matches);
    assert!(out.racers.iter().any(|r| r.cancelled.is_none()));
}

#[test]
fn portfolio_rejects_overrides_that_match_no_member() {
    // A budget SLA that silently never applies is worse than an
    // error: misspelled (or non-member) override names must fail at
    // construction.
    let config = PortfolioConfig {
        default_budget: RacerBudget::UNLIMITED,
        overrides: vec![(
            "boarder".to_owned(),
            RacerBudget {
                wall: None,
                work_cap: Some(1),
            },
        )],
    };
    let err = match Portfolio::with_members_config(&["csr", "border"], config.clone()) {
        Err(e) => e,
        Ok(_) => panic!("misspelled override must be rejected"),
    };
    assert!(matches!(err, EngineError::UnknownSolver { .. }));
    assert!(err.to_string().contains("did you mean 'border'?"), "{err}");
    // `exact` is registered but sits outside the default racer set, so
    // a full-config override for it must fail too.
    let exact_config = PortfolioConfig {
        default_budget: RacerBudget::UNLIMITED,
        overrides: vec![("exact".to_owned(), RacerBudget::UNLIMITED)],
    };
    assert!(Portfolio::with_config(exact_config).is_err());
    // Well-formed overrides still construct.
    assert!(Portfolio::with_members_config(&["csr", "border"], PortfolioConfig::default()).is_ok());
}

#[test]
fn portfolio_budget_race_is_bit_identical_across_pools() {
    // Work caps are charged at round boundaries, so the cancelled set,
    // every partial score, and the winner are thread-count-invariant.
    let inst = fragalign::model::instance::paper_example();
    let race = move || {
        let config = PortfolioConfig {
            default_budget: RacerBudget::UNLIMITED,
            overrides: vec![
                (
                    "full".to_owned(),
                    RacerBudget {
                        wall: None,
                        work_cap: Some(10),
                    },
                ),
                (
                    "border".to_owned(),
                    RacerBudget {
                        wall: None,
                        work_cap: Some(4),
                    },
                ),
            ],
        };
        let portfolio =
            Portfolio::with_members_config(&["csr", "full", "border", "greedy"], config).unwrap();
        let mut ctx = SolveCtx::new(&inst, EngineOptions::default());
        let out = portfolio.solve(&inst, &mut ctx);
        let racer_view: Vec<(String, i64, Option<String>)> = out
            .racers
            .iter()
            .map(|r| (r.name.clone(), r.score, r.cancelled.clone()))
            .collect();
        (out.matches, out.winner, racer_view)
    };
    let (one, _) = with_threads(1, &race);
    let (two, _) = with_threads(2, &race);
    let (eight, _) = with_threads(8, &race);
    assert_eq!(one, two, "2-thread race diverged");
    assert_eq!(one, eight, "8-thread race diverged");
}

#[test]
fn portfolio_bound_cancellation_retires_unwinnable_racers() {
    // `csr` (registry position 0) reaches the provable upper bound, so
    // every later racer can at best tie — and ties lose to the earlier
    // position. The board must retire them; on a 1-thread pool the
    // race is sequential in registry order, so every later member is
    // deterministically outraced.
    let inst = saturating_instance();
    assert_eq!(inst.score_upper_bound(), 10);
    let run = with_threads(1, || {
        SolverRegistry::global()
            .solve("portfolio", &inst, EngineOptions::default())
            .unwrap()
    })
    .0;
    assert_eq!(run.score, 10, "the bound is achievable here");
    assert_eq!(run.report.winner.as_deref(), Some("csr"));
    assert!(!run.report.cancelled);
    let outraced: Vec<&str> = run
        .report
        .racers
        .iter()
        .filter(|r| r.cancelled.as_deref() == Some("outraced"))
        .map(|r| r.name.as_str())
        .collect();
    assert!(
        !outraced.is_empty(),
        "bound cancellation must retire at least one racer: {:?}",
        run.report.racers
    );
    // The winner itself ran to completion.
    let winner = run
        .report
        .racers
        .iter()
        .find(|r| r.name == "csr")
        .expect("csr raced");
    assert!(winner.cancelled.is_none());

    // At any pool width the winner and score stay put (which racers
    // happened to finish before the bound landed may vary — that is
    // telemetry, not results).
    let wide = with_threads(8, || {
        SolverRegistry::global()
            .solve("portfolio", &inst, EngineOptions::default())
            .unwrap()
    })
    .0;
    assert_eq!(wide.score, 10);
    assert_eq!(wide.report.winner.as_deref(), Some("csr"));
    assert_eq!(wide.matches, run.matches);
}

#[test]
fn engine_threads_option_is_result_invariant() {
    // `EngineOptions::threads` must be a wall-clock knob only, for
    // single solves and batches alike.
    let instances: Vec<Instance> = gen_batch(
        &SimConfig {
            regions: 10,
            h_frags: 3,
            m_frags: 3,
            seed: 515,
            ..SimConfig::default()
        },
        6,
    )
    .into_iter()
    .map(|s| s.instance)
    .collect();
    let solve_with = |threads: usize| {
        let opts = EngineOptions {
            threads,
            ..EngineOptions::default()
        };
        SolverRegistry::global()
            .solve("csr", &instances[0], opts)
            .unwrap()
            .matches
    };
    let base = solve_with(0);
    for t in [1, 2, 8] {
        assert_eq!(base, solve_with(t), "threads={t} changed a single solve");
    }
    let batch_with = |threads: usize| {
        let mut opts = BatchOptions::new("csr");
        opts.engine.threads = threads;
        solve_batch(&instances, &opts).unwrap()
    };
    let batch_base = batch_with(0);
    for t in [1, 2, 8] {
        assert_eq!(batch_base, batch_with(t), "threads={t} changed the batch");
    }
}
