//! Batch pipeline determinism: `solve_batch` must return identical
//! solutions for a 1-thread pool, an N-thread pool, and per-instance
//! sequential solves — per-worker workspaces and shared-nothing
//! oracles are scratch, never signal.

use fragalign::align::DpWorkspace;
use fragalign::model::Instance;
use fragalign::par::with_threads;
use fragalign::prelude::*;
use fragalign::sim::gen_batch;

fn batch_of_16() -> Vec<Instance> {
    gen_batch(
        &SimConfig {
            regions: 14,
            h_frags: 3,
            m_frags: 3,
            loss_rate: 0.15,
            shuffles: 2,
            spurious: 3,
            seed: 1234,
            ..SimConfig::default()
        },
        16,
    )
    .into_iter()
    .map(|s| s.instance)
    .collect()
}

#[test]
fn batch_is_deterministic_across_thread_counts() {
    let instances = batch_of_16();
    for algo in [BatchAlgo::Csr, BatchAlgo::Four] {
        let opts = BatchOptions::new(algo);
        let insts_1 = instances.clone();
        let (single_thread, _) = with_threads(1, move || solve_batch(&insts_1, &opts));
        let insts_n = instances.clone();
        let (many_threads, _) = with_threads(8, move || solve_batch(&insts_n, &opts));
        assert_eq!(
            single_thread, many_threads,
            "{algo}: thread count changed batch results"
        );

        // ... and both match plain per-instance sequential solves with
        // one long-lived workspace.
        let mut ws = DpWorkspace::new();
        let sequential: Vec<BatchSolution> = instances
            .iter()
            .map(|inst| solve_single(inst, &opts, &mut ws))
            .collect();
        assert_eq!(single_thread, sequential, "{algo}: batch != sequential");

        // Solutions are consistent and scores match their match sets.
        for (inst, sol) in instances.iter().zip(&single_thread) {
            check_consistency(inst, &sol.matches).unwrap();
            assert_eq!(sol.score, sol.matches.total_score());
        }
    }
}

#[test]
fn batch_allocation_baseline_is_equivalent() {
    // The reuse knob is purely mechanical: flipping it must never
    // change a solution, only the allocation count.
    let instances = batch_of_16();
    let reuse = solve_batch(&instances, &BatchOptions::new(BatchAlgo::Csr));
    let mut opts = BatchOptions::new(BatchAlgo::Csr);
    opts.reuse_workspaces = false;
    let baseline = solve_batch(&instances, &opts);
    assert_eq!(reuse, baseline);
}

#[test]
fn batch_preserves_input_order() {
    // Seeds differ per instance, so equal outputs in order imply the
    // pipeline did not shuffle results.
    let instances = batch_of_16();
    let batch = solve_batch(&instances, &BatchOptions::new(BatchAlgo::Greedy));
    assert_eq!(batch.len(), instances.len());
    let mut ws = DpWorkspace::new();
    for (inst, sol) in instances.iter().zip(&batch) {
        let lone = solve_single(inst, &BatchOptions::new(BatchAlgo::Greedy), &mut ws);
        assert_eq!(sol, &lone);
    }
}
