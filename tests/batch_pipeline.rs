//! Batch pipeline determinism: `solve_batch` must return identical
//! solutions for a 1-thread pool, an N-thread pool, and per-instance
//! sequential solves — per-worker workspaces and shared-nothing
//! oracles are scratch, never signal. Solvers resolve through the
//! registry, so the same loop covers every registered name.

use fragalign::align::DpWorkspace;
use fragalign::model::Instance;
use fragalign::par::with_threads;
use fragalign::prelude::*;
use fragalign::sim::gen_batch;

fn batch_of_16() -> Vec<Instance> {
    gen_batch(
        &SimConfig {
            regions: 14,
            h_frags: 3,
            m_frags: 3,
            loss_rate: 0.15,
            shuffles: 2,
            spurious: 3,
            seed: 1234,
            ..SimConfig::default()
        },
        16,
    )
    .into_iter()
    .map(|s| s.instance)
    .collect()
}

#[test]
fn batch_is_deterministic_across_thread_counts() {
    let instances = batch_of_16();
    for name in ["csr", "four"] {
        let opts = BatchOptions::new(name);
        let insts_1 = instances.clone();
        let opts_1 = opts.clone();
        let (single_thread, _) = with_threads(1, move || solve_batch(&insts_1, &opts_1).unwrap());
        let insts_n = instances.clone();
        let opts_n = opts.clone();
        let (many_threads, _) = with_threads(8, move || solve_batch(&insts_n, &opts_n).unwrap());
        assert_eq!(
            single_thread, many_threads,
            "{name}: thread count changed batch results"
        );

        // ... and both match plain per-instance sequential solves with
        // one long-lived workspace.
        let mut ws = DpWorkspace::new();
        let sequential: Vec<BatchSolution> = instances
            .iter()
            .map(|inst| solve_single(inst, &opts, &mut ws).unwrap())
            .collect();
        assert_eq!(single_thread, sequential, "{name}: batch != sequential");

        // Solutions are consistent and scores match their match sets.
        for (inst, sol) in instances.iter().zip(&single_thread) {
            check_consistency(inst, &sol.matches).unwrap();
            assert_eq!(sol.score, sol.matches.total_score());
        }
    }
}

#[test]
fn batch_allocation_baseline_is_equivalent() {
    // The reuse knob is purely mechanical: flipping it must never
    // change a solution, only the allocation count — for every
    // registered solver, now that all of them accept an external
    // oracle.
    let instances = batch_of_16();
    for name in ["csr", "four", "greedy", "matching"] {
        let reuse = solve_batch(&instances, &BatchOptions::new(name)).unwrap();
        let mut opts = BatchOptions::new(name);
        opts.engine.reuse_workspaces = false;
        let baseline = solve_batch(&instances, &opts).unwrap();
        assert_eq!(reuse, baseline, "{name}");
    }
}

#[test]
fn batch_preserves_input_order() {
    // Seeds differ per instance, so equal outputs in order imply the
    // pipeline did not shuffle results.
    let instances = batch_of_16();
    let batch = solve_batch(&instances, &BatchOptions::new("greedy")).unwrap();
    assert_eq!(batch.len(), instances.len());
    let mut ws = DpWorkspace::new();
    for (inst, sol) in instances.iter().zip(&batch) {
        let lone = solve_single(inst, &BatchOptions::new("greedy"), &mut ws).unwrap();
        assert_eq!(sol, &lone);
    }
}

#[test]
fn batch_reports_carry_uniform_telemetry() {
    let instances: Vec<Instance> = batch_of_16().into_iter().take(4).collect();
    let reports = solve_batch_reports(&instances, &BatchOptions::new("csr")).unwrap();
    assert_eq!(reports.len(), instances.len());
    for (sol, report) in &reports {
        assert_eq!(report.solver, "csr");
        assert_eq!(report.score, sol.score);
        assert_eq!(report.matches, sol.matches.len());
        assert!(report.dp_fills > 0, "oracle work must be visible");
    }
}
