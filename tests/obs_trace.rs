//! The observability layer's contracts, enforced end to end:
//!
//! * **Inertness** — attaching a trace sink (at any thread count)
//!   never changes a solver's match set or report counters; tracing
//!   is read-only on results by construction and by test.
//! * **Racer timelines** — a portfolio solve's trace shows every
//!   racer's spawn → racer-span lifecycle on its own track, with
//!   bound values on retirement, so "why did this racer lose" is
//!   answerable from the trace alone.
//! * **Schema stability** — the Chrome trace-event rendering and the
//!   Prometheus text exposition are golden-pinned (`BLESS=1`
//!   re-blesses) so exporters downstream can rely on field order.
//! * **Counter parity** — every counter of the `/metrics` JSON
//!   document has a Prometheus rendering; adding a telemetry field
//!   without exporting it both ways fails here.

use fragalign::obs::{EventKind, TraceEvent, TraceHandle, TraceLog, TraceSink};
use fragalign::prelude::*;
use fragalign::serve::{CacheStats, Telemetry};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A small simulator instance every solver handles quickly, varied by
/// seed.
fn sim(seed: u64) -> Instance {
    generate(&SimConfig {
        regions: 10,
        h_frags: 3,
        m_frags: 3,
        loss_rate: 0.1,
        shuffles: 2,
        spurious: 1,
        seed,
        ..SimConfig::default()
    })
    .instance
}

fn solve_with(solver: &str, inst: &Instance, threads: usize, trace: TraceHandle) -> SolveRun {
    let mut ws = DpWorkspace::new();
    SolverRegistry::global()
        .solve_traced(
            solver,
            inst,
            EngineOptions {
                threads,
                ..EngineOptions::default()
            },
            &mut ws,
            CancelToken::never(),
            trace,
        )
        .expect("workload solves")
}

/// The report fields that are deterministic at every thread width —
/// everything except wall time, the per-racer list (timing-dependent
/// for the portfolio), and the oracle cache statistics.
fn counters(run: &SolveRun) -> (String, Score, usize, usize, usize, bool) {
    let r = &run.report;
    (
        r.solver.clone(),
        r.score,
        r.matches,
        r.rounds,
        r.attempts,
        r.cancelled,
    )
}

/// The oracle cache statistics. Deterministic only at sequential
/// widths: under a parallel pool, which worker-local cache misses a
/// pair first depends on scheduling (duplicate misses across workers),
/// with or without tracing.
fn cache_counters(run: &SolveRun) -> (u64, u64, u64, u64) {
    let r = &run.report;
    (r.dp_fills, r.dp_reallocs, r.table_misses, r.pair_misses)
}

proptest! {
    // Every case runs each solver five ways; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Enabling a sink never changes the match set or any
    /// deterministic report counter, at any thread count. The traced
    /// run is compared against an untraced run *at the same width*.
    /// Oracle cache statistics (fills, misses, pool growth) are only
    /// compared at sequential widths: under a parallel pool they are
    /// scheduling-dependent run to run, with or without tracing.
    #[test]
    fn tracing_is_inert_on_results(seed in 0u64..5_000) {
        let inst = sim(seed);
        for solver in ["greedy", "four", "matching", "chain", "csr", "auto"] {
            let reference = solve_with(solver, &inst, 0, TraceHandle::disabled());
            for threads in [0usize, 1, 8] {
                let untraced = solve_with(solver, &inst, threads, TraceHandle::disabled());
                let sink = TraceSink::new();
                let traced = solve_with(solver, &inst, threads, TraceHandle::new(Arc::clone(&sink)));
                prop_assert_eq!(
                    &traced.matches, &untraced.matches,
                    "{} threads={}", solver, threads
                );
                prop_assert_eq!(
                    counters(&traced), counters(&untraced),
                    "{} threads={}", solver, threads
                );
                if threads == 1 {
                    prop_assert_eq!(
                        cache_counters(&traced), cache_counters(&untraced),
                        "{} threads={} cache stats", solver, threads
                    );
                }
                prop_assert_eq!(
                    &traced.matches, &reference.matches,
                    "{} threads={} vs width-0 reference", solver, threads
                );
                prop_assert!(
                    sink.drain().emitted > 0,
                    "{}: an enabled sink must record spans", solver
                );
            }
        }
    }
}

/// The portfolio is inert under tracing on everything it promises to
/// be deterministic about (matches, score, winner), and its trace
/// shows each racer's full spawn → racer-span timeline on a dedicated
/// track, with the retirement bound recorded.
#[test]
fn portfolio_trace_shows_every_racer_timeline() {
    let inst = sim(42);
    let baseline = solve_with("portfolio", &inst, 0, TraceHandle::disabled());
    let sink = TraceSink::new();
    let run = solve_with("portfolio", &inst, 0, TraceHandle::new(Arc::clone(&sink)));
    assert_eq!(run.matches, baseline.matches);
    assert_eq!(run.score, baseline.score);
    assert_eq!(run.report.winner, baseline.report.winner);

    let log = sink.drain();
    assert_eq!(log.dropped, 0, "small solve must not overflow the ring");
    assert!(!run.report.racers.is_empty());
    for (i, racer) in run.report.racers.iter().enumerate() {
        let track = (i + 1) as u16;
        let spawned = log.events.iter().any(|e| {
            e.name == "spawn"
                && e.track == track
                && e.label == racer.name
                && matches!(e.kind, EventKind::Instant)
        });
        assert!(spawned, "racer {} ({}) has no spawn instant", i, racer.name);
        let span = log
            .events
            .iter()
            .find(|e| e.name == "racer" && e.track == track && matches!(e.kind, EventKind::Span));
        let span = span.unwrap_or_else(|| panic!("racer {} ({}) has no span", i, racer.name));
        assert_eq!(span.label, racer.name);
        // The span's a0 arg carries the racer's final score.
        if racer.cancelled.is_none() {
            assert!(span.a0 <= run.score, "no racer outscores the winner");
        }
    }
    // Every cancelled racer's cause is on its track.
    for (i, racer) in run.report.racers.iter().enumerate() {
        if let Some(cause) = &racer.cancelled {
            let noted = log.events.iter().any(|e| {
                e.name == "cancel" && e.track == (i + 1) as u16 && e.label == cause.as_str()
            });
            assert!(noted, "racer {} cancelled by {cause} but not traced", i);
        }
    }
    // The Chrome rendering puts each racer on its own tid.
    let json = log.to_chrome_json();
    assert!(json.contains("\"tid\":1"), "{json}");
    assert!(json.contains("\"name\":\"racer:"), "{json}");
}

/// On an instance whose provable score upper bound is achievable, the
/// racer that reaches it emits a `bound_retire` instant carrying the
/// bound value, and later-position racers record their cancellation.
#[test]
fn bound_retirement_appears_in_the_trace_with_its_value() {
    let inst = generate_degenerate(DegenerateShape::AllSingletons, 6, 0).instance;
    let bound = inst.score_upper_bound();
    let sink = TraceSink::new();
    let run = solve_with("portfolio", &inst, 0, TraceHandle::new(Arc::clone(&sink)));
    assert_eq!(run.score, bound, "the singleton shape achieves its bound");
    let log = sink.drain();
    let retired: Vec<_> = log
        .events
        .iter()
        .filter(|e| e.name == "bound_retire")
        .collect();
    assert!(!retired.is_empty(), "no bound retirement recorded");
    for e in &retired {
        assert_eq!(e.a0, run.score, "retirement instant carries the score");
        assert_eq!(e.a1, bound, "retirement instant carries the bound");
        assert!(e.track >= 1, "retirement happens on a racer track");
    }
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, actual).expect("bless golden");
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} (run with BLESS=1): {e}", path.display()));
    assert_eq!(actual, golden, "{name} drifted from snapshot");
}

/// The Chrome trace-event schema, pinned on a synthetic log: field
/// order, µs timestamps normalised to the earliest event, args only
/// when non-zero, instants as `ph:"i"`, and the emitted/dropped tail.
#[test]
fn chrome_trace_schema_is_pinned() {
    let ev = |t0_ns, dur_ns, name, label, track, kind, a0, a1| TraceEvent {
        t0_ns,
        dur_ns,
        name,
        label,
        track,
        kind,
        a0,
        a1,
    };
    let log = TraceLog {
        events: vec![
            ev(5_000, 1_234_567, "solve", "csr", 0, EventKind::Span, 11, 40),
            ev(7_500, 0, "spawn", "greedy", 1, EventKind::Instant, 0, 0),
            ev(8_000, 900_001, "racer", "greedy", 1, EventKind::Span, 9, 12),
            ev(
                910_000,
                0,
                "bound_retire",
                "greedy",
                1,
                EventKind::Instant,
                9,
                9,
            ),
        ],
        emitted: 4,
        dropped: 2,
    };
    assert_golden("trace_chrome.json", &log.to_chrome_json());
}

/// A deterministic [`CacheStats`] for exposition tests.
fn cache_stats() -> CacheStats {
    CacheStats {
        hits: 5,
        misses: 7,
        evictions: 2,
        entries: 3,
        bytes: 4096,
        byte_budget: 1 << 20,
        shards: 16,
        hit_rate: 5.0 / 12.0,
    }
}

/// A telemetry set with one deterministic observation in every
/// histogram and counter.
fn seeded_telemetry() -> Telemetry {
    let t = Telemetry::new();
    t.record_response(200);
    t.record_response(200);
    t.record_response(400);
    t.record_rejected();
    t.record_unknown_solver();
    t.record_batch();
    t.record_traced(3);
    t.record_solve(0);
    t.record_solve_latency(0, Duration::from_micros(1_500));
    t.record_latency(Duration::from_micros(2_500));
    t.record_queue_wait(Duration::from_micros(100));
    t.record_service(Duration::from_micros(2_400));
    t.note_conn_opened();
    t.note_conn_opened();
    t.note_conn_closed();
    t.record_keepalive_reuse();
    t.record_degraded();
    t.record_sampled();
    t
}

/// The Prometheus text exposition, pinned end to end (HELP/TYPE lines,
/// label sets, cumulative buckets, sums, counts). Only the uptime
/// gauge is nondeterministic; its sample is normalised to 0.
#[test]
fn prometheus_exposition_is_pinned() {
    let doc = seeded_telemetry().prometheus(4, 64, cache_stats());
    let normalized: String = doc
        .lines()
        .map(|line| {
            if line.starts_with("fragalign_uptime_seconds ") {
                "fragalign_uptime_seconds 0".to_string()
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_golden("metrics_prometheus.txt", &normalized);
}

/// Every counter and gauge of the JSON `/metrics` document must also
/// appear in the Prometheus exposition (and vice versa via the golden
/// above). The key list is checked for coverage against the actual
/// JSON document, so adding a `MetricsSnapshot` field without a
/// Prometheus rendering — or without extending this mapping — fails.
#[test]
fn every_telemetry_counter_appears_in_both_exports() {
    let t = seeded_telemetry();
    let snap = t.snapshot(4, 64, cache_stats());
    let json = serde_json::to_string(&snap).expect("snapshot serialises");
    let prom = t.prometheus(4, 64, cache_stats());

    // JSON top-level key → Prometheus metric family.
    let mapping = [
        ("uptime_secs", "fragalign_uptime_seconds"),
        ("requests_total", "fragalign_requests_total"),
        ("rejected_503", "fragalign_rejected_503_total"),
        ("client_errors_4xx", "fragalign_client_errors_4xx_total"),
        (
            "unknown_solver_requests",
            "fragalign_unknown_solver_requests_total",
        ),
        ("batch_requests", "fragalign_batch_requests_total"),
        ("solve_requests", "fragalign_solve_requests_total"),
        ("latency", "fragalign_request_duration_seconds"),
        ("queue_wait", "fragalign_queue_wait_seconds"),
        ("service", "fragalign_service_seconds"),
        ("traced_requests", "fragalign_traced_requests_total"),
        (
            "trace_events_dropped",
            "fragalign_trace_events_dropped_total",
        ),
        ("sampled_traces", "fragalign_sampled_traces_total"),
        (
            "connections_accepted",
            "fragalign_connections_accepted_total",
        ),
        ("connections_open", "fragalign_connections_open"),
        ("keepalive_reuse", "fragalign_keepalive_reuse_total"),
        ("admission_degraded", "fragalign_admission_degraded_total"),
        ("queue", "fragalign_queue_depth"),
        ("cache", "fragalign_cache_hits_total"),
    ];
    for (jkey, pname) in mapping {
        assert!(
            json.contains(&format!("\"{jkey}\":")),
            "JSON document lost key {jkey:?}"
        );
        assert!(prom.contains(pname), "Prometheus export lost {pname}");
    }
    // Coverage: no JSON top-level field outside the mapping.
    let doc: serde::Value = serde_json::from_str(&json).expect("snapshot parses");
    let fields = doc.as_object().expect("snapshot is an object");
    for (key, _) in fields {
        assert!(
            mapping.iter().any(|(jkey, _)| jkey == key),
            "new MetricsSnapshot field {key:?} has no Prometheus mapping — \
             render it in Telemetry::prometheus and extend this test"
        );
    }
    // The queue/cache sub-objects' gauges are all rendered too.
    for pname in [
        "fragalign_queue_capacity",
        "fragalign_workers",
        "fragalign_busy_workers",
        "fragalign_cache_misses_total",
        "fragalign_cache_evictions_total",
        "fragalign_cache_entries",
        "fragalign_cache_bytes",
        "fragalign_solve_duration_seconds",
    ] {
        assert!(prom.contains(pname), "Prometheus export lost {pname}");
    }
}
