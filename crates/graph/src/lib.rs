#![warn(missing_docs)]

//! # fragalign-graph
//!
//! Graph substrate for the MAX-SNP hardness reduction (Theorem 2).
//!
//! The reduction maps 3-MIS — maximum independent set on 3-regular
//! graphs — to CSoP. This crate supplies everything the reduction
//! needs: a 3-regular graph generator, the Dirac-style relabelling
//! that removes edges between consecutively numbered nodes (the proof
//! requires `{i, i+1} ∉ E`), exact branch-and-bound MIS for measuring
//! the correspondence `|U*| = 5n + |W*|`, and a greedy baseline.

pub mod gen;
pub mod graph;
pub mod mis;

pub use gen::{dirac_relabel, random_regular};
pub use graph::Graph;
pub use mis::{greedy_mis, is_independent_set, max_independent_set};
