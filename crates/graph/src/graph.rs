//! Simple undirected graphs with adjacency lists.

/// An undirected simple graph on vertices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Build from an edge list; duplicate edges and self-loops panic.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add an undirected edge.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert_ne!(u, v, "self-loop");
        assert!(u < self.len() && v < self.len(), "vertex out of range");
        assert!(!self.has_edge(u, v), "duplicate edge {u}-{v}");
        self.adj[u].push(v);
        self.adj[v].push(u);
    }

    /// Whether `{u, v} ∈ E`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// Neighbours of `u`.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// All edges, each once, as `(min, max)` pairs sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..self.len() {
            for &v in &self.adj[u] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether every vertex has degree `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        (0..self.len()).all(|u| self.degree(u) == d)
    }

    /// Relabel vertices: vertex `u` becomes `perm[u]`.
    pub fn relabel(&self, perm: &[usize]) -> Graph {
        assert_eq!(perm.len(), self.len());
        let mut g = Graph::new(self.len());
        for (u, v) in self.edges() {
            g.add_edge(perm[u], perm[v]);
        }
        g
    }

    /// The `2n × 3` adjacency matrix representation used by the
    /// Theorem 2 reduction: row `i` lists the three neighbours of
    /// vertex `i`. Panics unless the graph is 3-regular.
    pub fn adjacency_matrix_3reg(&self) -> Vec<[usize; 3]> {
        assert!(self.is_regular(3), "graph is not 3-regular");
        self.adj
            .iter()
            .map(|ns| {
                let mut row = [ns[0], ns[1], ns[2]];
                row.sort_unstable();
                row
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_bookkeeping() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(g.is_regular(2));
        assert_eq!(g.edges(), vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_edge_panics() {
        Graph::from_edges(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        Graph::from_edges(2, &[(0, 0)]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let h = g.relabel(&[2, 0, 1]);
        assert!(h.has_edge(2, 0));
        assert!(h.has_edge(0, 1));
        assert!(!h.has_edge(2, 1));
        assert_eq!(h.edge_count(), 2);
    }

    #[test]
    fn k4_is_3_regular_with_matrix() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(g.is_regular(3));
        let a = g.adjacency_matrix_3reg();
        assert_eq!(a[0], [1, 2, 3]);
        assert_eq!(a[3], [0, 1, 2]);
    }
}
