//! Random regular graphs and the Dirac relabelling.
//!
//! Theorem 2 requires 3-regular input graphs whose numbering has no
//! edge `{i, i+1}` ("for n ≥ 6 we can order the nodes in such a manner
//! using Dirac's theorem": the complement of a 3-regular graph on
//! `2n ≥ 8` vertices has minimum degree `2n − 4 ≥ n`, hence a
//! Hamiltonian cycle, whose traversal order is the required
//! numbering). We find such an ordering constructively with a repair
//! loop: start from a random permutation and swap away adjacent
//! consecutive pairs — each swap strictly reduces the number of
//! violations in expectation and the loop is capped and restarted.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Generate a random `d`-regular simple graph on `n` vertices via the
/// pairing (configuration) model with rejection. `n · d` must be even
/// and `n > d`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    assert!(n > d, "need n > d for a simple d-regular graph");
    let mut rng = StdRng::seed_from_u64(seed);
    'outer: loop {
        // Stubs: d copies of every vertex.
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(&mut rng);
        let mut g = Graph::new(n);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || g.has_edge(u, v) {
                continue 'outer; // reject and retry
            }
            g.add_edge(u, v);
        }
        debug_assert!(g.is_regular(d));
        return g;
    }
}

/// Relabel `g` so that no edge joins consecutively numbered vertices
/// (`{i, i+1} ∉ E` for all `i`), as the Theorem 2 reduction requires.
/// Returns the relabelled graph and the permutation used
/// (`perm[old] = new`).
///
/// Exists for every 3-regular graph with ≥ 8 vertices by Dirac's
/// theorem; smaller graphs may have no such ordering, in which case
/// this function panics after exhausting its repair budget.
pub fn dirac_relabel(g: &Graph, seed: u64) -> (Graph, Vec<usize>) {
    let n = g.len();
    if n <= 1 {
        return (g.clone(), (0..n).collect());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // order[pos] = vertex at position pos.
    let mut order: Vec<usize> = (0..n).collect();
    for _restart in 0..200 {
        order.shuffle(&mut rng);
        let mut budget = 50 * n * n;
        loop {
            let violation = (0..n - 1).find(|&i| g.has_edge(order[i], order[i + 1]));
            let Some(i) = violation else {
                // Success: perm maps old label -> position.
                let mut perm = vec![0usize; n];
                for (pos, &v) in order.iter().enumerate() {
                    perm[v] = pos;
                }
                return (g.relabel(&perm), perm);
            };
            if budget == 0 {
                break;
            }
            budget -= 1;
            let j = rng.random_range(0..n);
            order.swap(i + 1, j);
        }
    }
    panic!("no consecutive-free ordering found (graph too small or budget exhausted)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_regular_is_simple_and_regular() {
        for seed in 0..5 {
            for n in [8, 10, 14, 20] {
                let g = random_regular(n, 3, seed);
                assert_eq!(g.len(), n);
                assert!(g.is_regular(3), "n={n} seed={seed}");
                // simplicity is enforced by Graph::add_edge panics
            }
        }
    }

    #[test]
    fn random_regular_even_degree() {
        let g = random_regular(9, 2, 3);
        assert!(g.is_regular(2));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_stub_count_rejected() {
        random_regular(9, 3, 0);
    }

    #[test]
    fn dirac_relabel_removes_consecutive_edges() {
        for seed in 0..5 {
            let g = random_regular(12, 3, seed);
            let (h, perm) = dirac_relabel(&g, seed);
            for i in 0..h.len() - 1 {
                assert!(!h.has_edge(i, i + 1), "seed={seed}, i={i}");
            }
            // Same graph up to relabelling.
            assert_eq!(h.edge_count(), g.edge_count());
            for (u, v) in g.edges() {
                assert!(h.has_edge(perm[u], perm[v]));
            }
        }
    }

    #[test]
    fn dirac_relabel_deterministic() {
        let g = random_regular(10, 3, 7);
        let (h1, p1) = dirac_relabel(&g, 42);
        let (h2, p2) = dirac_relabel(&g, 42);
        assert_eq!(p1, p2);
        assert_eq!(h1, h2);
    }
}
