//! Maximum independent set.
//!
//! The hardness experiment (EXPERIMENTS.md T6) needs exact MIS values
//! on small 3-regular graphs to verify the Theorem 2 correspondence
//! `|U*| = 5n + |W*|`. The exact solver is a branch-and-bound with the
//! standard max-degree branching and a `remaining/(1+min_degree)`-free
//! simple bound, adequate for a few dozen vertices.

use crate::graph::Graph;

/// Whether `set` is an independent set of `g`.
pub fn is_independent_set(g: &Graph, set: &[usize]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// Exact maximum independent set via branch and bound. Panics on
/// graphs with more than 64 vertices (use the greedy for those).
pub fn max_independent_set(g: &Graph) -> Vec<usize> {
    assert!(
        g.len() <= 64,
        "exact MIS is exponential; {} vertices",
        g.len()
    );
    let n = g.len();
    // Bitmask adjacency for speed.
    let adj: Vec<u64> = (0..n)
        .map(|u| g.neighbors(u).iter().fold(0u64, |m, &v| m | (1 << v)))
        .collect();

    fn bits(mut m: u64) -> Vec<usize> {
        let mut v = Vec::new();
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            v.push(b);
            m &= m - 1;
        }
        v
    }

    struct Ctx<'a> {
        adj: &'a [u64],
        best: u32,
        best_set: u64,
    }

    fn rec(ctx: &mut Ctx<'_>, avail: u64, chosen: u64) {
        let count = chosen.count_ones();
        if count > ctx.best {
            ctx.best = count;
            ctx.best_set = chosen;
        }
        if avail == 0 || count + avail.count_ones() <= ctx.best {
            return;
        }
        // Pick the available vertex of maximum available-degree.
        let mut pick = usize::MAX;
        let mut pick_deg = 0i32;
        let mut m = avail;
        while m != 0 {
            let v = m.trailing_zeros() as usize;
            m &= m - 1;
            let deg = (ctx.adj[v] & avail).count_ones() as i32;
            if pick == usize::MAX || deg > pick_deg {
                pick = v;
                pick_deg = deg;
            }
        }
        let v = pick;
        // Degree-0/1 vertices are always safe to take greedily.
        if pick_deg == 0 {
            // All available vertices are isolated within avail.
            let take = chosen | avail;
            if take.count_ones() > ctx.best {
                ctx.best = take.count_ones();
                ctx.best_set = take;
            }
            return;
        }
        // Branch 1: include v.
        rec(ctx, avail & !(ctx.adj[v] | (1 << v)), chosen | (1 << v));
        // Branch 2: exclude v (then some neighbour of v is included in
        // an optimal extension, but the simple exclusion is correct).
        rec(ctx, avail & !(1 << v), chosen);
    }

    let mut ctx = Ctx {
        adj: &adj,
        best: 0,
        best_set: 0,
    };
    let avail = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    rec(&mut ctx, avail, 0);
    let out = bits(ctx.best_set);
    debug_assert!(is_independent_set(g, &out));
    out
}

/// Min-degree greedy independent set: repeatedly take a vertex of
/// minimum remaining degree and delete its closed neighbourhood.
/// On 3-regular graphs this guarantees at least `n/4` vertices.
pub fn greedy_mis(g: &Graph) -> Vec<usize> {
    let n = g.len();
    let mut removed = vec![false; n];
    let mut degree: Vec<usize> = (0..n).map(|u| g.degree(u)).collect();
    let mut out = Vec::new();
    loop {
        let mut pick = usize::MAX;
        for u in 0..n {
            if !removed[u] && (pick == usize::MAX || degree[u] < degree[pick]) {
                pick = u;
            }
        }
        if pick == usize::MAX {
            break;
        }
        out.push(pick);
        removed[pick] = true;
        for &v in g.neighbors(pick) {
            if !removed[v] {
                removed[v] = true;
                for &w in g.neighbors(v) {
                    degree[w] = degree[w].saturating_sub(1);
                }
            }
        }
    }
    out.sort_unstable();
    debug_assert!(is_independent_set(g, &out));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_regular;

    #[test]
    fn independence_check() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(is_independent_set(&g, &[0, 2]));
        assert!(!is_independent_set(&g, &[0, 1]));
        assert!(is_independent_set(&g, &[]));
    }

    #[test]
    fn exact_on_known_graphs() {
        // Path P4: MIS = {0, 2} or {0, 3} or {1, 3}, size 2.
        let p4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(max_independent_set(&p4).len(), 2);
        // Cycle C5: size 2.
        let c5 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(max_independent_set(&c5).len(), 2);
        // K4: size 1.
        let k4 = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(max_independent_set(&k4).len(), 1);
        // Petersen graph: 3-regular, MIS = 4.
        let petersen = Graph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0), // outer C5
                (5, 7),
                (7, 9),
                (9, 6),
                (6, 8),
                (8, 5), // inner pentagram
                (0, 5),
                (1, 6),
                (2, 7),
                (3, 8),
                (4, 9), // spokes
            ],
        );
        assert!(petersen.is_regular(3));
        assert_eq!(max_independent_set(&petersen).len(), 4);
        // Edgeless graph: everything.
        let e = Graph::new(6);
        assert_eq!(max_independent_set(&e).len(), 6);
    }

    #[test]
    fn exact_dominates_greedy_on_random_cubic() {
        for seed in 0..10 {
            let g = random_regular(14, 3, seed);
            let exact = max_independent_set(&g);
            let greedy = greedy_mis(&g);
            assert!(is_independent_set(&g, &exact));
            assert!(is_independent_set(&g, &greedy));
            assert!(exact.len() >= greedy.len(), "seed={seed}");
            // Greedy's n/4 guarantee on cubic graphs.
            assert!(greedy.len() >= g.len() / 4);
        }
    }

    #[test]
    fn brute_force_cross_check_small() {
        // Compare branch and bound against subset enumeration.
        for seed in 0..5 {
            let g = random_regular(10, 3, seed);
            let bb = max_independent_set(&g).len();
            let mut best = 0;
            for mask in 0u32..(1 << 10) {
                let set: Vec<usize> = (0..10).filter(|&i| mask >> i & 1 == 1).collect();
                if is_independent_set(&g, &set) {
                    best = best.max(set.len());
                }
            }
            assert_eq!(bb, best, "seed={seed}");
        }
    }
}
