#![warn(missing_docs)]

//! # fragalign-par
//!
//! Parallel execution substrate.
//!
//! The original venue (IPPS) evaluated parallel machines; our
//! laptop-scale substitute is data parallelism: a configured rayon
//! pool (real `std::thread` workers since the shim rebuild — see
//! `shims/README.md`), deterministic parallel sweeps for experiment
//! drivers (same results regardless of thread count), and a
//! crossbeam-channel worker pipeline for streaming instance generation
//! ahead of solving. The speedup experiment (`exp_speedup`,
//! `BENCH_speedup.json`) runs the same workloads under pools of
//! increasing size via [`with_threads`].

use crossbeam::channel;
use std::time::{Duration, Instant};

/// Width of the rayon pool parallel operations currently submit to:
/// the innermost installed pool, or the global one (one thread per
/// core) outside any [`with_threads`] scope.
pub fn current_threads() -> usize {
    rayon::current_num_threads()
}

/// Run `job` on a dedicated rayon pool with `threads` workers,
/// returning the job's result and its wall-clock duration.
///
/// Building a scoped pool (instead of mutating the global one) keeps
/// measurements independent and lets speedup sweeps run in one
/// process.
pub fn with_threads<T: Send>(threads: usize, job: impl FnOnce() -> T + Send) -> (T, Duration) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("pool construction");
    let start = Instant::now();
    let out = pool.install(job);
    (out, start.elapsed())
}

/// Deterministic parallel map: results are returned in input order no
/// matter how work interleaves across workers.
pub fn par_map_ordered<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync + Send,
{
    use rayon::prelude::*;
    items.into_par_iter().map(f).collect()
}

/// [`par_map_ordered`] with per-worker scratch state: `init` runs once
/// per worker and its value is threaded mutably through every item
/// that worker processes (rayon's `map_init`). The batch solver uses
/// this to keep one warm DP workspace per worker — shared-nothing, so
/// results stay deterministic regardless of thread count provided `f`
/// treats the state as a pure scratch (contents must not influence
/// results, only speed).
pub fn par_map_ordered_init<I, O, W, INIT, F>(items: Vec<I>, init: INIT, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    W: Send,
    INIT: Fn() -> W + Sync + Send,
    F: Fn(&mut W, I) -> O + Sync + Send,
{
    use rayon::prelude::*;
    items.into_par_iter().map_init(init, f).collect()
}

/// A two-stage pipeline: a producer thread feeds `items` through a
/// bounded crossbeam channel while the current thread consumes them;
/// useful when generation (producer) and solving (consumer) should
/// overlap. Results come back in input order.
pub fn pipeline<I, O>(
    items: Vec<I>,
    produce: impl Fn(I) -> I + Send + Sync,
    consume: impl FnMut(I) -> O,
) -> Vec<O>
where
    I: Send,
{
    let (tx, rx) = channel::bounded(8);
    let mut consume = consume;
    crossbeam::scope(|scope| {
        scope.spawn(move |_| {
            for item in items {
                if tx.send(produce(item)).is_err() {
                    break;
                }
            }
        });
        let mut out = Vec::new();
        for item in rx.iter() {
            out.push(consume(item));
        }
        out
    })
    .expect("pipeline threads do not panic")
}

/// Measured speedup curve entry, carrying the provenance of its
/// measurement: the requested thread count *and* the effective pool
/// width the run executed on. [`with_threads`] clamps a request of
/// `0` to a 1-thread pool, so the two only differ for that degenerate
/// request; recording both keeps `BENCH_speedup.json` rows
/// self-describing about what actually ran.
#[derive(Clone, Copy, Debug)]
pub struct SpeedupPoint {
    /// Requested worker count.
    pub threads: usize,
    /// Effective pool width the workload ran on (caller included):
    /// `threads.max(1)`, mirroring [`with_threads`]'s clamp.
    pub pool_threads: usize,
    /// Wall-clock time of the workload.
    pub elapsed: Duration,
    /// `elapsed(1 thread) / elapsed(threads)`.
    pub speedup: f64,
}

/// Sweep a workload over thread counts `1, 2, 4, …, max_threads`,
/// verifying that every run returns the same value (determinism) and
/// reporting the speedup curve. The workload is borrowed (`Fn` by
/// reference — no `Copy` bound), so closures owning buffers or other
/// non-`Copy` state sweep unchanged.
pub fn speedup_sweep<T, F>(max_threads: usize, workload: &F) -> Vec<SpeedupPoint>
where
    T: Send + PartialEq + std::fmt::Debug,
    F: Fn() -> T + Sync,
{
    let mut points = Vec::new();
    let mut base: Option<(T, Duration)> = None;
    let mut t = 1;
    while t <= max_threads {
        let (value, elapsed) = with_threads(t, workload);
        let point = SpeedupPoint {
            threads: t,
            pool_threads: t.max(1),
            elapsed,
            speedup: match &base {
                None => 1.0,
                Some((_, base_time)) => base_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            },
        };
        match &base {
            None => base = Some((value, elapsed)),
            Some((expected, _)) => {
                assert_eq!(&value, expected, "parallel run diverged at {t} threads");
            }
        }
        points.push(point);
        t *= 2;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_runs_job() {
        let ((), d) = with_threads(2, || ());
        assert!(d < Duration::from_secs(5));
        let (sum, _) = with_threads(3, || {
            use rayon::prelude::*;
            (0..1000i64).into_par_iter().sum::<i64>()
        });
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn ordered_map_preserves_order() {
        let out = par_map_ordered((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_map_init_preserves_order() {
        let out = par_map_ordered_init(
            (0..64).collect(),
            || 0u64,
            |scratch: &mut u64, x: i32| {
                *scratch += 1; // per-worker state must not affect results
                x * 3
            },
        );
        assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn pipeline_preserves_order() {
        let out = pipeline((0..50).collect(), |x: i32| x + 1, |x| x * 10);
        assert_eq!(out, (1..=50).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn speedup_sweep_is_deterministic() {
        // The workload is a non-`Copy` closure owning a buffer; the
        // by-reference signature sweeps it unchanged.
        let weights: Vec<i64> = (0..20_000).map(|x| x % 7).collect();
        let workload = move || {
            use rayon::prelude::*;
            weights.par_iter().map(|&x| x * 3).sum::<i64>()
        };
        let points = speedup_sweep(4, &workload);
        assert!(!points.is_empty());
        assert_eq!(points[0].threads, 1);
        assert_eq!(points[0].pool_threads, 1);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.threads, 1 << i, "sweep doubles the pool");
            assert_eq!(p.pool_threads, p.threads);
        }
    }
}
