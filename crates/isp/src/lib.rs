#![warn(missing_docs)]

//! # fragalign-isp
//!
//! The *Interval Selection Problem* substrate (§3.4 of the paper).
//!
//! Given a set of integer intervals, each owned by a *job* `i ∈ [1, k]`
//! and carrying a non-negative profit, select at most one interval per
//! job so that the selected intervals are pairwise disjoint and the
//! total profit is maximal. The paper reduces 1-CSR to ISP and relies
//! on the two-phase algorithm of Berman and DasGupta (ratio 2,
//! `O(n log n)`), which is cited as a black box — we implement it from
//! scratch here ([`tpa`]), along with a greedy baseline in the spirit
//! of Bar-Noy et al. ([`greedy`]) and an exact branch-and-bound solver
//! for cross-checking the guarantee on small instances ([`exact`]).

pub mod exact;
pub mod fenwick;
pub mod greedy;
pub mod instance;
pub mod tpa;

pub use exact::solve_exact;
pub use greedy::solve_greedy;
pub use instance::{Candidate, Interval, IspInstance, Selection};
pub use tpa::solve_tpa;
