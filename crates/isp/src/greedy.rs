//! Profit-greedy baseline for ISP.
//!
//! Sorts candidates by decreasing profit and keeps every candidate
//! compatible with the current selection. No approximation guarantee —
//! the paper's point (§1) is precisely that greedy heuristics can be
//! fooled; the `exp_isp` experiment measures how far behind TPA and
//! exact it lands.

use crate::instance::{Candidate, IspInstance, Selection};

/// Greedy by profit (ties: earlier end first, then job).
pub fn solve_greedy(inst: &IspInstance) -> Selection {
    let mut order: Vec<&Candidate> = inst.candidates.iter().filter(|c| c.profit > 0).collect();
    order.sort_by_key(|c| (std::cmp::Reverse(c.profit), c.iv.hi, c.job, c.tag));
    let mut chosen: Vec<Candidate> = Vec::new();
    let mut job_used = vec![false; inst.jobs];
    for c in order {
        if job_used[c.job] {
            continue;
        }
        if chosen.iter().any(|d| d.iv.overlaps(&c.iv)) {
            continue;
        }
        chosen.push(*c);
        job_used[c.job] = true;
    }
    Selection { chosen }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Interval;
    use crate::tpa::solve_tpa;

    #[test]
    fn greedy_is_feasible() {
        let mut inst = IspInstance::new(3);
        inst.push(0, Interval::new(0, 4), 5, 0);
        inst.push(1, Interval::new(2, 6), 9, 1);
        inst.push(2, Interval::new(5, 8), 2, 2);
        let sel = solve_greedy(&inst);
        inst.validate(&sel).unwrap();
        // Greedy takes the profit-9 interval [2,6), which overlaps both
        // others: total 9 (the optimum here is 5 + 2 + ... = also 9 via
        // exact enumeration of the conflict structure — greedy happens
        // to win this one).
        assert_eq!(sel.profit(), 9);
    }

    #[test]
    fn greedy_trap_instance() {
        // A fat middle interval that greedy grabs first, blocking two
        // slimmer intervals whose sum is larger; TPA avoids the trap.
        let mut inst = IspInstance::new(3);
        inst.push(0, Interval::new(0, 10), 10, 0);
        inst.push(1, Interval::new(0, 5), 7, 1);
        inst.push(2, Interval::new(5, 10), 7, 2);
        let greedy = solve_greedy(&inst);
        let tpa = solve_tpa(&inst);
        assert_eq!(greedy.profit(), 10);
        assert_eq!(tpa.profit(), 14);
    }
}
