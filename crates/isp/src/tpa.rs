//! The Berman–DasGupta two-phase algorithm (TPA), ratio 2,
//! `O(n log n)`.
//!
//! **Phase 1 (evaluation).** Process candidates in non-decreasing order
//! of right endpoint. For candidate `x`, let
//!
//! ```text
//! total(x) = Σ { v(y) : y stacked, y conflicts with x }
//! ```
//!
//! where *conflicts* means interval overlap or same job. Set
//! `v(x) = profit(x) − total(x)`; if positive, push `x` with value
//! `v(x)` onto the stack.
//!
//! **Phase 2 (selection).** Pop the stack (latest first) and greedily
//! keep every candidate compatible with those already kept.
//!
//! The selection's profit is at least the stack's total value, and any
//! feasible solution's profit is at most twice the stack total, giving
//! the factor-2 guarantee the paper's Corollary 1 relies on.
//!
//! Complexity: because candidates are processed by right endpoint, a
//! stacked `y` overlaps `x` iff `y.hi > x.lo`, a suffix sum over right
//! endpoints maintained in a Fenwick tree; same-job non-overlapping
//! values are a per-job prefix (their `hi` values are non-decreasing),
//! looked up by binary search.

use crate::fenwick::Fenwick;
use crate::instance::{Candidate, IspInstance, Profit, Selection};

/// Run TPA on an instance, returning a feasible selection with profit
/// at least half the optimum.
pub fn solve_tpa(inst: &IspInstance) -> Selection {
    let mut order: Vec<&Candidate> = inst.candidates.iter().filter(|c| c.profit > 0).collect();
    // Non-decreasing right endpoint; ties broken deterministically.
    order.sort_by_key(|c| (c.iv.hi, c.iv.lo, c.job, c.tag));

    // Coordinate-compress right endpoints for the Fenwick tree.
    let mut his: Vec<i64> = order.iter().map(|c| c.iv.hi).collect();
    his.dedup();
    let hi_index = |hi: i64| -> usize {
        his.partition_point(|&h| h < hi) // first index with his[i] >= hi
    };

    let mut fw = Fenwick::new(his.len());
    // Per job: (hi, prefix sum of values) in push order, hi non-decreasing.
    let mut job_stacked: Vec<Vec<(i64, Profit)>> = vec![Vec::new(); inst.jobs];
    let mut stack: Vec<(&Candidate, Profit)> = Vec::new();

    for c in order {
        // Values of stacked candidates overlapping c: those with
        // y.hi > c.lo (all stacked have y.hi ≤ c.hi).
        let overlap_sum = fw.suffix(hi_index(c.iv.lo + 1));
        // Same-job stacked candidates *not* already counted: y.hi ≤ c.lo.
        let js = &job_stacked[c.job];
        let cut = js.partition_point(|&(h, _)| h <= c.iv.lo);
        let job_sum = if cut == 0 { 0 } else { js[cut - 1].1 };
        let v = c.profit - overlap_sum - job_sum;
        if v > 0 {
            fw.add(hi_index(c.iv.hi), v);
            let prev = job_stacked[c.job].last().map(|&(_, s)| s).unwrap_or(0);
            job_stacked[c.job].push((c.iv.hi, prev + v));
            stack.push((c, v));
        }
    }

    // Phase 2: reverse greedy selection.
    let mut chosen: Vec<Candidate> = Vec::new();
    let mut job_used = vec![false; inst.jobs];
    let mut min_lo = i64::MAX;
    for &(c, _) in stack.iter().rev() {
        if job_used[c.job] {
            continue;
        }
        // All previously selected intervals have hi ≥ c.hi, so c is
        // disjoint from every one of them iff c.hi ≤ min of their lo.
        if c.iv.hi <= min_lo {
            chosen.push(*c);
            job_used[c.job] = true;
            min_lo = min_lo.min(c.iv.lo);
        }
    }
    chosen.reverse();
    Selection { chosen }
}

/// The stack total of phase 1 — exposed for the ratio-2 analysis
/// experiments (`selection ≥ stack_total` and `opt ≤ 2 · stack_total`).
pub fn stack_total(inst: &IspInstance) -> Profit {
    // Re-run phase 1 only.
    let mut order: Vec<&Candidate> = inst.candidates.iter().filter(|c| c.profit > 0).collect();
    order.sort_by_key(|c| (c.iv.hi, c.iv.lo, c.job, c.tag));
    let mut his: Vec<i64> = order.iter().map(|c| c.iv.hi).collect();
    his.dedup();
    let hi_index = |hi: i64| -> usize { his.partition_point(|&h| h < hi) };
    let mut fw = Fenwick::new(his.len());
    let mut job_stacked: Vec<Vec<(i64, Profit)>> = vec![Vec::new(); inst.jobs];
    let mut total = 0;
    for c in order {
        let overlap_sum = fw.suffix(hi_index(c.iv.lo + 1));
        let js = &job_stacked[c.job];
        let cut = js.partition_point(|&(h, _)| h <= c.iv.lo);
        let job_sum = if cut == 0 { 0 } else { js[cut - 1].1 };
        let v = c.profit - overlap_sum - job_sum;
        if v > 0 {
            fw.add(hi_index(c.iv.hi), v);
            let prev = job_stacked[c.job].last().map(|&(_, s)| s).unwrap_or(0);
            job_stacked[c.job].push((c.iv.hi, prev + v));
            total += v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Interval;

    fn inst(jobs: usize, cands: &[(usize, i64, i64, i64)]) -> IspInstance {
        let mut inst = IspInstance::new(jobs);
        for (tag, &(job, lo, hi, p)) in cands.iter().enumerate() {
            inst.push(job, Interval::new(lo, hi), p, tag);
        }
        inst
    }

    #[test]
    fn disjoint_intervals_all_selected() {
        let i = inst(3, &[(0, 0, 2, 5), (1, 2, 4, 7), (2, 4, 6, 3)]);
        let sel = solve_tpa(&i);
        assert_eq!(i.validate(&sel).unwrap(), 15);
    }

    #[test]
    fn job_constraint_enforced() {
        // Two disjoint intervals of the same job: only one selectable.
        let i = inst(1, &[(0, 0, 2, 5), (0, 4, 6, 7)]);
        let sel = solve_tpa(&i);
        assert_eq!(sel.chosen.len(), 1);
        assert_eq!(i.validate(&sel).unwrap(), 7);
    }

    #[test]
    fn overlapping_chooses_heavier() {
        let i = inst(2, &[(0, 0, 4, 5), (1, 2, 6, 9)]);
        let sel = solve_tpa(&i);
        assert_eq!(i.validate(&sel).unwrap(), 9);
    }

    #[test]
    fn chain_where_greedy_by_profit_fails() {
        // Middle interval overlaps both sides; its profit is larger
        // than each side but smaller than their sum.
        let i = inst(3, &[(0, 0, 3, 4), (1, 2, 5, 6), (2, 4, 7, 4)]);
        let sel = solve_tpa(&i);
        assert_eq!(i.validate(&sel).unwrap(), 8, "takes the two sides");
    }

    #[test]
    fn zero_profit_candidates_ignored() {
        let i = inst(2, &[(0, 0, 2, 0), (1, 0, 2, 3)]);
        let sel = solve_tpa(&i);
        assert_eq!(i.validate(&sel).unwrap(), 3);
        assert_eq!(sel.chosen.len(), 1);
    }

    #[test]
    fn empty_instance() {
        let i = IspInstance::new(0);
        let sel = solve_tpa(&i);
        assert_eq!(sel.profit(), 0);
    }

    #[test]
    fn selection_at_least_stack_total() {
        // Invariant of the two-phase analysis.
        let i = inst(
            4,
            &[
                (0, 0, 5, 10),
                (1, 3, 8, 12),
                (2, 7, 12, 6),
                (3, 1, 4, 3),
                (0, 9, 14, 4),
                (1, 13, 18, 5),
            ],
        );
        let sel = solve_tpa(&i);
        let total = stack_total(&i);
        assert!(sel.profit() >= total, "{} < {}", sel.profit(), total);
        i.validate(&sel).unwrap();
    }

    #[test]
    fn same_job_overlap_not_double_counted() {
        // y overlaps x AND shares x's job: its value must be charged
        // once. With double counting, the second candidate would be
        // rejected (10 - 6 - 6 < 0) and total profit would drop.
        let i = inst(1, &[(0, 0, 4, 6), (0, 2, 6, 10)]);
        let sel = solve_tpa(&i);
        assert_eq!(i.validate(&sel).unwrap(), 10);
    }
}
