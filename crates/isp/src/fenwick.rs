//! Fenwick (binary indexed) tree over prefix sums, used by the TPA
//! evaluation phase to sum stacked values whose right endpoints exceed
//! a query point in `O(log n)`.

/// A Fenwick tree of `i64` sums over indices `0..n`.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<i64>,
}

impl Fenwick {
    /// A tree over `n` zeroed slots.
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Add `delta` at index `i`.
    pub fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of indices `0..=i`.
    pub fn prefix(&self, i: usize) -> i64 {
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over all indices.
    pub fn total(&self) -> i64 {
        self.prefix(self.tree.len().saturating_sub(2))
    }

    /// Sum of indices `i..n` (suffix sum).
    pub fn suffix(&self, i: usize) -> i64 {
        if i == 0 {
            return self.total();
        }
        self.total() - self.prefix(i - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_and_suffix_agree_with_naive() {
        let n = 37;
        let mut fw = Fenwick::new(n);
        let mut naive = vec![0i64; n];
        // Deterministic updates.
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state % n as u64) as usize;
            let delta = ((state >> 32) % 21) as i64 - 10;
            fw.add(i, delta);
            naive[i] += delta;
            let q = ((state >> 17) % n as u64) as usize;
            let want_prefix: i64 = naive[..=q].iter().sum();
            let want_suffix: i64 = naive[q..].iter().sum();
            assert_eq!(fw.prefix(q), want_prefix);
            assert_eq!(fw.suffix(q), want_suffix);
            assert_eq!(fw.total(), naive.iter().sum::<i64>());
        }
    }

    #[test]
    fn empty_tree() {
        let fw = Fenwick::new(0);
        assert_eq!(fw.total(), 0);
        assert_eq!(fw.suffix(0), 0);
    }

    #[test]
    fn single_slot() {
        let mut fw = Fenwick::new(1);
        fw.add(0, 5);
        assert_eq!(fw.prefix(0), 5);
        assert_eq!(fw.suffix(0), 5);
        assert_eq!(fw.total(), 5);
    }
}
