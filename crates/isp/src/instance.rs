//! ISP instance and solution types.

/// Profit type (matches the CSR score type).
pub type Profit = i64;

/// A half-open integer interval `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive start.
    pub lo: i64,
    /// Exclusive end.
    pub hi: i64,
}

impl Interval {
    /// Construct; panics on an empty interval.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo < hi, "interval must be non-empty: [{lo}, {hi})");
        Interval { lo, hi }
    }

    /// Whether two intervals share a point.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Length of the interval.
    pub fn len(&self) -> i64 {
        self.hi - self.lo
    }

    /// Intervals are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// One selectable interval: the job that owns it, the interval, the
/// profit of selecting it, and an opaque tag the caller can use to map
/// selections back to its own domain (e.g. a CSR match).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Owning job; at most one candidate per job may be selected.
    pub job: usize,
    /// The interval claimed on the shared resource.
    pub iv: Interval,
    /// Non-negative selection profit.
    pub profit: Profit,
    /// Caller-defined payload.
    pub tag: usize,
}

/// An ISP instance.
#[derive(Clone, Debug, Default)]
pub struct IspInstance {
    /// Number of jobs (`k` in the paper); jobs are `0..jobs`.
    pub jobs: usize,
    /// All selectable candidates.
    pub candidates: Vec<Candidate>,
}

impl IspInstance {
    /// Create an instance with `jobs` jobs and no candidates.
    pub fn new(jobs: usize) -> Self {
        IspInstance {
            jobs,
            candidates: Vec::new(),
        }
    }

    /// Add a candidate interval.
    pub fn push(&mut self, job: usize, iv: Interval, profit: Profit, tag: usize) {
        assert!(job < self.jobs, "job {job} out of range {}", self.jobs);
        assert!(profit >= 0, "ISP profits are non-negative");
        self.candidates.push(Candidate {
            job,
            iv,
            profit,
            tag,
        });
    }

    /// Verify that a selection is feasible: at most one candidate per
    /// job, pairwise-disjoint intervals, all candidates from this
    /// instance. Returns the total profit.
    pub fn validate(&self, sel: &Selection) -> Result<Profit, String> {
        let mut used_jobs = std::collections::HashSet::new();
        let mut total = 0;
        for (i, c) in sel.chosen.iter().enumerate() {
            if !self.candidates.contains(c) {
                return Err(format!("candidate {c:?} is not part of the instance"));
            }
            if !used_jobs.insert(c.job) {
                return Err(format!("job {} selected twice", c.job));
            }
            for d in &sel.chosen[..i] {
                if c.iv.overlaps(&d.iv) {
                    return Err(format!("intervals {:?} and {:?} overlap", c.iv, d.iv));
                }
            }
            total += c.profit;
        }
        Ok(total)
    }
}

/// A feasible (not necessarily optimal) selection.
#[derive(Clone, Debug, Default)]
pub struct Selection {
    /// The selected candidates.
    pub chosen: Vec<Candidate>,
}

impl Selection {
    /// Total profit of the selection.
    pub fn profit(&self) -> Profit {
        self.chosen.iter().map(|c| c.profit).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_overlap_semantics() {
        let a = Interval::new(0, 5);
        let b = Interval::new(5, 8);
        let c = Interval::new(4, 6);
        assert!(!a.overlaps(&b), "half-open: touching is disjoint");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert_eq!(a.len(), 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_rejected() {
        Interval::new(3, 3);
    }

    #[test]
    fn validation_catches_job_reuse() {
        let mut inst = IspInstance::new(1);
        inst.push(0, Interval::new(0, 1), 5, 0);
        inst.push(0, Interval::new(2, 3), 5, 1);
        let sel = Selection {
            chosen: inst.candidates.clone(),
        };
        assert!(inst.validate(&sel).unwrap_err().contains("twice"));
    }

    #[test]
    fn validation_catches_overlap() {
        let mut inst = IspInstance::new(2);
        inst.push(0, Interval::new(0, 3), 5, 0);
        inst.push(1, Interval::new(2, 4), 5, 1);
        let sel = Selection {
            chosen: inst.candidates.clone(),
        };
        assert!(inst.validate(&sel).unwrap_err().contains("overlap"));
    }

    #[test]
    fn validation_accepts_feasible() {
        let mut inst = IspInstance::new(2);
        inst.push(0, Interval::new(0, 2), 5, 0);
        inst.push(1, Interval::new(2, 4), 7, 1);
        let sel = Selection {
            chosen: inst.candidates.clone(),
        };
        assert_eq!(inst.validate(&sel).unwrap(), 12);
    }
}
