//! Exact ISP solver (branch and bound) for small instances.
//!
//! ISP with per-job choice is NP-hard in general (it contains the job
//! interval selection problem), so the exact solver is reserved for
//! ratio measurements on small instances: it enumerates candidates in
//! order of left endpoint with an optimistic remaining-profit bound.

use crate::instance::{Candidate, IspInstance, Profit, Selection};

/// Exhaustively solve an ISP instance. Intended for instances with at
/// most a few dozen candidates; panics beyond a safety cap because the
/// search is exponential.
pub fn solve_exact(inst: &IspInstance) -> Selection {
    assert!(
        inst.candidates.len() <= 200,
        "exact ISP is exponential; got {} candidates",
        inst.candidates.len()
    );
    let mut order: Vec<&Candidate> = inst.candidates.iter().filter(|c| c.profit > 0).collect();
    order.sort_by_key(|c| (c.iv.lo, c.iv.hi, c.job, c.tag));

    // Optimistic suffix bound: the total profit of candidates from i on
    // (ignoring all constraints).
    let mut suffix_bound = vec![0 as Profit; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix_bound[i] = suffix_bound[i + 1] + order[i].profit;
    }

    struct Ctx<'a> {
        order: &'a [&'a Candidate],
        suffix_bound: &'a [Profit],
        jobs: usize,
        best: Profit,
        best_set: Vec<Candidate>,
    }

    fn rec(
        ctx: &mut Ctx<'_>,
        i: usize,
        cur: &mut Vec<Candidate>,
        cur_profit: Profit,
        job_used: &mut Vec<bool>,
        last_end: i64,
    ) {
        if cur_profit > ctx.best {
            ctx.best = cur_profit;
            ctx.best_set = cur.clone();
        }
        if i == ctx.order.len() || cur_profit + ctx.suffix_bound[i] <= ctx.best {
            return;
        }
        let c = ctx.order[i];
        // Take c if feasible. Candidates are ordered by lo, so
        // disjointness against the chosen set reduces to lo ≥ last_end
        // *only if* chosen intervals end before future ones — not true
        // in general, so check all.
        let feasible =
            !job_used[c.job] && (c.iv.lo >= last_end || cur.iter().all(|d| !d.iv.overlaps(&c.iv)));
        if feasible {
            cur.push(*c);
            job_used[c.job] = true;
            rec(
                ctx,
                i + 1,
                cur,
                cur_profit + c.profit,
                job_used,
                last_end.max(c.iv.hi),
            );
            job_used[c.job] = false;
            cur.pop();
        }
        // Skip c.
        rec(ctx, i + 1, cur, cur_profit, job_used, last_end);
    }

    let mut ctx = Ctx {
        order: &order,
        suffix_bound: &suffix_bound,
        jobs: inst.jobs,
        best: 0,
        best_set: Vec::new(),
    };
    let mut job_used = vec![false; ctx.jobs];
    rec(&mut ctx, 0, &mut Vec::new(), 0, &mut job_used, i64::MIN);
    Selection {
        chosen: ctx.best_set,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Interval;
    use crate::solve_tpa;

    fn random_instance(seed: u64, jobs: usize, cands: usize, span: i64) -> IspInstance {
        let mut inst = IspInstance::new(jobs);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for tag in 0..cands {
            let job = (next() % jobs as u64) as usize;
            let lo = (next() % span as u64) as i64;
            let len = 1 + (next() % 5) as i64;
            let profit = 1 + (next() % 20) as i64;
            inst.push(job, Interval::new(lo, lo + len), profit, tag);
        }
        inst
    }

    #[test]
    fn exact_beats_or_equals_tpa_and_ratio_two_holds() {
        for seed in 1..40u64 {
            let inst = random_instance(seed, 4, 12, 15);
            let exact = solve_exact(&inst);
            let tpa = solve_tpa(&inst);
            inst.validate(&exact).unwrap();
            inst.validate(&tpa).unwrap();
            assert!(exact.profit() >= tpa.profit(), "seed {seed}");
            assert!(
                2 * tpa.profit() >= exact.profit(),
                "ratio-2 guarantee violated at seed {seed}: tpa={} exact={}",
                tpa.profit(),
                exact.profit()
            );
        }
    }

    #[test]
    fn exact_simple_cases() {
        let mut inst = IspInstance::new(2);
        inst.push(0, Interval::new(0, 3), 4, 0);
        inst.push(1, Interval::new(2, 5), 6, 1);
        inst.push(0, Interval::new(4, 7), 5, 2);
        let exact = solve_exact(&inst);
        // Job 1's [2,5) overlaps both job-0 intervals, and the two
        // job-0 intervals exclude each other (same job), so the best
        // feasible profit is 6 alone.
        assert_eq!(exact.profit(), 6);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn cap_enforced() {
        let mut inst = IspInstance::new(1);
        for i in 0..201 {
            inst.push(0, Interval::new(i, i + 1), 1, i as usize);
        }
        solve_exact(&inst);
    }
}
