//! Property-based tests for the ISP substrate: feasibility, the
//! two-phase invariants, and the ratio-2 guarantee against exhaustive
//! search.

use fragalign_isp::tpa::stack_total;
use fragalign_isp::{solve_exact, solve_greedy, solve_tpa, Interval, IspInstance};
use proptest::prelude::*;

fn instance_strategy() -> impl Strategy<Value = IspInstance> {
    (
        1usize..5,
        prop::collection::vec((0usize..5, 0i64..25, 1i64..7, 0i64..40), 0..14),
    )
        .prop_map(|(jobs, cands)| {
            let mut inst = IspInstance::new(jobs);
            for (tag, (job, lo, len, profit)) in cands.into_iter().enumerate() {
                inst.push(job % jobs, Interval::new(lo, lo + len), profit, tag);
            }
            inst
        })
}

proptest! {
    #[test]
    fn tpa_output_is_feasible(inst in instance_strategy()) {
        let sel = solve_tpa(&inst);
        prop_assert!(inst.validate(&sel).is_ok());
    }

    #[test]
    fn greedy_output_is_feasible(inst in instance_strategy()) {
        let sel = solve_greedy(&inst);
        prop_assert!(inst.validate(&sel).is_ok());
    }

    #[test]
    fn tpa_selection_at_least_stack_total(inst in instance_strategy()) {
        // The phase-2 selection realises at least the phase-1 stack
        // value — the left half of the ratio-2 proof.
        let sel = solve_tpa(&inst);
        prop_assert!(sel.profit() >= stack_total(&inst));
    }

    #[test]
    fn ratio_two_guarantee(inst in instance_strategy()) {
        let exact = solve_exact(&inst);
        let tpa = solve_tpa(&inst);
        prop_assert!(exact.profit() >= tpa.profit());
        prop_assert!(2 * tpa.profit() >= exact.profit(),
            "tpa {} vs exact {}", tpa.profit(), exact.profit());
    }

    #[test]
    fn opt_at_most_twice_stack(inst in instance_strategy()) {
        // The right half of the proof: Opt ≤ 2 · stack total.
        let exact = solve_exact(&inst);
        prop_assert!(exact.profit() <= 2 * stack_total(&inst).max(exact.profit() / 2 + exact.profit() % 2));
        // (stated loosely to tolerate the all-zero-profit case)
        if exact.profit() > 0 {
            prop_assert!(2 * stack_total(&inst) >= exact.profit());
        }
    }

    #[test]
    fn exact_dominates_heuristics(inst in instance_strategy()) {
        let exact = solve_exact(&inst).profit();
        prop_assert!(exact >= solve_tpa(&inst).profit());
        prop_assert!(exact >= solve_greedy(&inst).profit());
    }

    #[test]
    fn disjoint_single_candidates_always_taken(
        profits in prop::collection::vec(1i64..50, 1..8)
    ) {
        // One candidate per job, all disjoint: everything is selected.
        let mut inst = IspInstance::new(profits.len());
        for (i, &p) in profits.iter().enumerate() {
            inst.push(i, Interval::new(10 * i as i64, 10 * i as i64 + 5), p, i);
        }
        let sel = solve_tpa(&inst);
        prop_assert_eq!(sel.profit(), profits.iter().sum::<i64>());
    }
}
