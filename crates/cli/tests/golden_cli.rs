//! Golden snapshot tests for the CLI: `fragalign demo` and
//! `fragalign gen --seed 42 | fragalign solve -` must be byte-stable
//! across runs and match the snapshots under `tests/golden/` at the
//! repository root — guarding the determinism work of PR 1 (sorted
//! layouts, deterministic winner selection, seeded generation).

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn golden(name: &str) -> String {
    let path = golden_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()))
}

fn run(args: &[&str], stdin: Option<&str>) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fragalign"));
    cmd.args(args).stdout(Stdio::piped());
    match stdin {
        Some(_) => cmd.stdin(Stdio::piped()),
        None => cmd.stdin(Stdio::null()),
    };
    let mut child = cmd.spawn().expect("spawn fragalign");
    if let Some(data) = stdin {
        use std::io::Write;
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(data.as_bytes())
            .expect("feed stdin");
    }
    let out = child.wait_with_output().expect("fragalign runs");
    assert!(out.status.success(), "fragalign {args:?} failed: {out:?}");
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn demo_output_is_byte_stable() {
    let first = run(&["demo"], None);
    let second = run(&["demo"], None);
    assert_eq!(first, second, "demo output differs between two runs");
    assert_eq!(
        first,
        golden("demo.txt"),
        "demo output drifted from snapshot"
    );
}

#[test]
fn gen_seed42_is_byte_stable() {
    let first = run(&["gen", "--seed", "42"], None);
    let second = run(&["gen", "--seed", "42"], None);
    assert_eq!(first, second, "gen output differs between two runs");
    assert_eq!(
        first,
        golden("gen_seed42.json"),
        "gen --seed 42 drifted from snapshot"
    );
}

#[test]
fn one_csr_gen_pipe_solve_is_byte_stable() {
    // The 1-CSR/ISP reduction is reachable end to end now that the
    // registry dispatches the CLI: a single-M generated instance
    // solves under `--algo one-csr` and both artifacts stay
    // byte-stable.
    let instance = run(
        &[
            "gen",
            "--seed",
            "7",
            "--m-frags",
            "1",
            "--regions",
            "8",
            "--h-frags",
            "3",
        ],
        None,
    );
    assert_eq!(
        instance,
        golden("one_csr_seed7.json"),
        "single-M gen drifted from snapshot"
    );
    let first = run(&["solve", "--algo", "one-csr", "-"], Some(&instance));
    let second = run(&["solve", "--algo", "one-csr", "-"], Some(&instance));
    assert_eq!(first, second, "one-csr output differs between two runs");
    assert_eq!(
        first,
        golden("one_csr_solve_seed7.txt"),
        "one-csr solve drifted from snapshot"
    );
}

#[test]
fn report_json_is_machine_readable() {
    // `--report json` replaces the layout with the engine's uniform
    // telemetry record. Wall time varies, so this parses instead of
    // snapshotting.
    let instance = run(&["gen", "--seed", "42"], None);
    for algo in ["csr", "portfolio"] {
        let out = run(
            &["solve", "--algo", algo, "--report", "json", "-"],
            Some(&instance),
        );
        assert!(out.contains(&format!("\"solver\": \"{algo}\"")), "{out}");
        for field in [
            "\"score\"",
            "\"rounds\"",
            "\"attempts\"",
            "\"dp_fills\"",
            "\"dp_reallocs\"",
            "\"wall_secs\"",
            "\"winner\"",
        ] {
            assert!(out.contains(field), "{algo}: report lacks {field}: {out}");
        }
    }
}

#[test]
fn gen_pipe_solve_is_byte_stable() {
    let instance = run(&["gen", "--seed", "42"], None);
    let first = run(&["solve", "-"], Some(&instance));
    let second = run(&["solve", "-"], Some(&instance));
    assert_eq!(first, second, "solve output differs between two runs");
    assert_eq!(
        first,
        golden("gen_solve_seed42.txt"),
        "gen | solve drifted from snapshot"
    );
}

#[test]
fn solve_threads_flag_is_result_invariant() {
    // `--threads N` runs the solve on a dedicated N-thread pool; the
    // output must stay byte-identical to the default-pool snapshot at
    // every width (the pool is a wall-clock knob, never a results
    // knob).
    let instance = run(&["gen", "--seed", "42"], None);
    for threads in ["1", "2", "4"] {
        let out = run(&["solve", "--threads", threads, "-"], Some(&instance));
        assert_eq!(
            out,
            golden("gen_solve_seed42.txt"),
            "--threads {threads} changed solve output"
        );
    }
    // The batch path threads the same knob through BatchOptions.
    let tmp = std::env::temp_dir().join(format!("fragalign_threads_golden_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("create batch dir");
    std::fs::write(tmp.join("a.json"), &instance).expect("write instance");
    let path = tmp.to_str().expect("utf-8 temp path");
    // The trailing summary line carries a wall-clock rate; only the
    // per-instance result lines must be invariant.
    let results_only = |out: String| -> String {
        out.lines()
            .filter(|l| !l.starts_with("batch:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let base = results_only(run(&["solve", "--batch", path], None));
    assert!(base.contains("score"), "batch printed no results: {base}");
    for threads in ["1", "4"] {
        let out = results_only(run(&["solve", "--batch", "--threads", threads, path], None));
        assert_eq!(out, base, "--threads {threads} changed batch output");
    }
    let _ = std::fs::remove_dir_all(&tmp);
}
