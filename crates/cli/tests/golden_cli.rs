//! Golden snapshot tests for the CLI: `fragalign demo` and
//! `fragalign gen --seed 42 | fragalign solve -` must be byte-stable
//! across runs and match the snapshots under `tests/golden/` at the
//! repository root — guarding the determinism work of PR 1 (sorted
//! layouts, deterministic winner selection, seeded generation).

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn golden(name: &str) -> String {
    let path = golden_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()))
}

fn run(args: &[&str], stdin: Option<&str>) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fragalign"));
    cmd.args(args).stdout(Stdio::piped());
    match stdin {
        Some(_) => cmd.stdin(Stdio::piped()),
        None => cmd.stdin(Stdio::null()),
    };
    let mut child = cmd.spawn().expect("spawn fragalign");
    if let Some(data) = stdin {
        use std::io::Write;
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(data.as_bytes())
            .expect("feed stdin");
    }
    let out = child.wait_with_output().expect("fragalign runs");
    assert!(out.status.success(), "fragalign {args:?} failed: {out:?}");
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn demo_output_is_byte_stable() {
    let first = run(&["demo"], None);
    let second = run(&["demo"], None);
    assert_eq!(first, second, "demo output differs between two runs");
    assert_eq!(
        first,
        golden("demo.txt"),
        "demo output drifted from snapshot"
    );
}

#[test]
fn gen_seed42_is_byte_stable() {
    let first = run(&["gen", "--seed", "42"], None);
    let second = run(&["gen", "--seed", "42"], None);
    assert_eq!(first, second, "gen output differs between two runs");
    assert_eq!(
        first,
        golden("gen_seed42.json"),
        "gen --seed 42 drifted from snapshot"
    );
}

#[test]
fn gen_pipe_solve_is_byte_stable() {
    let instance = run(&["gen", "--seed", "42"], None);
    let first = run(&["solve", "-"], Some(&instance));
    let second = run(&["solve", "-"], Some(&instance));
    assert_eq!(first, second, "solve output differs between two runs");
    assert_eq!(
        first,
        golden("gen_solve_seed42.txt"),
        "gen | solve drifted from snapshot"
    );
}
