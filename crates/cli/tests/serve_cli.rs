//! The `fragalign serve` subcommand end to end: the startup banner is
//! pinned by a golden snapshot (port normalised — the test binds port
//! 0), the served endpoints answer over real sockets, and SIGINT
//! drains the worker pool and exits 0. Unix-only: the graceful-stop
//! contract is SIGINT/ctrl-c, delivered here with `kill -INT`.
#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn golden(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()))
}

/// Wait for exit, polling so a hung shutdown fails the test instead
/// of wedging it.
fn wait_with_deadline(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > deadline {
            let _ = child.kill();
            panic!("serve did not exit within {deadline:?} of SIGINT");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn serve_banner_is_pinned_and_sigint_drains() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fragalign"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue-depth",
            "8",
            "--cache-mb",
            "16",
        ])
        .stdout(Stdio::piped())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn fragalign serve");

    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut lines: Vec<String> = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read banner line");
        assert!(n > 0, "serve exited before the banner completed: {lines:?}");
        lines.push(line.trim_end_matches('\n').to_string());
        if lines.last().unwrap().contains("press ctrl-c") {
            break;
        }
        assert!(lines.len() < 16, "banner never ended: {lines:?}");
    }

    // The banner's first line carries the actual bound port.
    let port: u16 = lines[0]
        .rsplit(':')
        .next()
        .and_then(|p| p.parse().ok())
        .unwrap_or_else(|| panic!("no port in banner line {:?}", lines[0]));
    let addr = std::net::SocketAddr::from(([127, 0, 0, 1], port));

    // The advertised endpoints are really up.
    let health = fragalign_serve::client::get(addr, "/healthz").expect("healthz answers");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""));
    let solvers = fragalign_serve::client::get(addr, "/v1/solvers").expect("solvers answers");
    assert!(solvers.body.contains("\"name\": \"csr\""));

    // ctrl-c: drain and stop, exit 0, say so on stdout.
    let pid = child.id().to_string();
    let kill = Command::new("kill")
        .args(["-INT", &pid])
        .status()
        .expect("send SIGINT");
    assert!(kill.success(), "kill -INT failed");
    let status = wait_with_deadline(&mut child, Duration::from_secs(10));
    assert!(status.success(), "serve exited non-zero: {status:?}");
    for line in reader.lines() {
        lines.push(line.expect("read shutdown line"));
    }

    // Pin the whole transcript, normalising only the ephemeral port.
    let port_str = format!(":{port}");
    let transcript: String = lines
        .iter()
        .map(|l| l.replace(&port_str, ":{port}"))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";
    assert_eq!(
        transcript,
        golden("serve_banner.txt"),
        "serve banner/shutdown transcript drifted from snapshot"
    );
}

#[test]
fn serve_rejects_bad_flags_and_unknown_default_solver() {
    let out = Command::new(env!("CARGO_BIN_EXE_fragalign"))
        .args(["serve", "--workres", "2"])
        .output()
        .expect("run fragalign serve");
    assert_eq!(out.status.code(), Some(2), "bad flag should hit usage()");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = Command::new(env!("CARGO_BIN_EXE_fragalign"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--default-solver",
            "greddy",
        ])
        .output()
        .expect("run fragalign serve");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("did you mean 'greedy'?"), "{stderr}");
}
