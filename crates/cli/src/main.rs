//! `fragalign` — solve CSR instances from the command line.
//!
//! ```text
//! fragalign solve  [--algo NAME] [--scaling] [--threads N] [--report json] [--trace out.json] <instance.json|->
//! fragalign solve  --batch [--algo NAME] [--scaling] [--threads N] [--report json] <dir|instances.jsonl>
//! fragalign serve  [--addr A] [--workers N] [--queue-depth N] [--cache-mb N] [--default-solver NAME]
//!                  [--max-conns N] [--idle-timeout MS] [--admission on|off] [--trace-sample N]
//! fragalign gen    [--channel C] [--regions N] [--seed S] [channel knobs...]
//! fragalign demo
//! fragalign solvers
//! ```
//!
//! * `solve` reads an instance (JSON), runs the chosen solver and
//!   prints the score, the matches and the two-row layout. `--algo`
//!   takes any name the [`SolverRegistry`] knows — including
//!   `one-csr`, `exact` (small instances) and the racing `portfolio`
//!   meta-solver; `--report json` emits the engine's uniform
//!   telemetry record instead of the human-readable layout;
//!   `--threads N` runs the solve on a dedicated N-thread pool
//!   (`0`, the default, uses one thread per core — results are
//!   bit-identical at any width); `--trace out.json` records the
//!   solve's phase/racer timeline and writes it as a Chrome
//!   trace-event file (open in `chrome://tracing` or Perfetto) —
//!   tracing never changes results.
//! * `solve --batch` reads many instances — every `*.json` file of a
//!   directory, or one JSON instance per line of a `.jsonl` file — and
//!   solves them all through the batch pipeline (one summary line per
//!   instance instead of full layouts).
//! * `serve` runs the concurrent HTTP alignment service
//!   (`fragalign-serve`): a poll(2)-driven event loop feeding a fixed
//!   worker pool through a bounded queue (503 when full), HTTP/1.1
//!   keep-alive and pipelining, load-aware admission control
//!   (`--admission off` restores solve-as-asked), the sharded result
//!   cache, and the JSON endpoints listed in its startup banner.
//!   `--max-conns`/`--idle-timeout` bound concurrent sockets and evict
//!   idle ones; `--trace-sample N` records every Nth solve into the
//!   ring served at `GET /debug/trace`. SIGINT/ctrl-c drains
//!   in-flight requests before exiting.
//! * `gen` emits a synthetic instance as JSON (pipe into `solve`).
//!   `--channel` picks the workload: `clean` (the default simulator),
//!   the adversarial `torn` (torn-paper breakpoints, drops,
//!   duplications) and `soup` (short overlapping noisy reads)
//!   channels, or a degenerate shape (`mega`, `singletons`,
//!   `desert`). Channel-specific knobs on the wrong channel are a
//!   usage error.
//! * `demo` runs the paper's Fig. 2 example end to end.
//! * `solvers` lists every registered solver with its paper reference.

use fragalign_align::DpAligner;
use fragalign_core as core;
use fragalign_core::{BatchOptions, EngineOptions, SolveReport, SolverRegistry};
use fragalign_model::{Instance, LayoutBuilder, MatchSet};
use fragalign_serve::{ServeConfig, Server};
use fragalign_sim::{
    generate, generate_degenerate, generate_soup, generate_torn, DegenerateShape, SimConfig,
    SoupConfig, TornConfig,
};
use serde::Serialize;
use std::io::{Read, Write};
use std::process::ExitCode;

fn algo_names() -> String {
    SolverRegistry::global().names().join("|")
}

fn usage() -> ExitCode {
    let names = algo_names();
    eprintln!(
        "usage:\n  fragalign solve [--algo {names}] [--scaling] [--threads N] [--report json] [--trace out.json] <instance.json|->\n  fragalign solve --batch [--algo {names}] [--scaling] [--threads N] [--report json] <dir|instances.jsonl>\n  fragalign serve [--addr HOST:PORT] [--workers N] [--queue-depth N] [--cache-mb N] [--default-solver {names}]\n                  [--max-conns N] [--idle-timeout MS] [--admission on|off] [--trace-sample N]\n  fragalign gen [--channel clean|torn|soup|mega|singletons|desert] [--regions N] [--seed S]\n                [--h-frags N] [--m-frags N] [--noise X]           (clean; noise also soup)\n                [--tear-rate X] [--drop-rate X] [--dup-rate X]    (torn)\n                [--read-len N] [--coverage X] [--sub-rate X]      (soup)\n  fragalign demo\n  fragalign solvers"
    );
    ExitCode::from(2)
}

fn parse_instance(data: &str) -> Result<Instance, String> {
    let mut inst: Instance = serde_json::from_str(data).map_err(|e| e.to_string())?;
    inst.alphabet.rebuild_index();
    inst.validate()?;
    Ok(inst)
}

fn read_instance(path: &str) -> Result<Instance, String> {
    let data = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    parse_instance(&data)
}

/// Load a batch: every `*.json` file of a directory (sorted by name,
/// so batch order is deterministic), a single `.json` instance file
/// (a batch of one), or one instance per non-empty line of a JSONL
/// file.
fn read_batch(path: &str) -> Result<(Vec<String>, Vec<Instance>), String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?;
    let mut names = Vec::new();
    let mut instances = Vec::new();
    if meta.is_dir() {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{path}: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("{path}: no *.json instances found"));
        }
        for file in files {
            let name = file.display().to_string();
            let data = std::fs::read_to_string(&file).map_err(|e| format!("{name}: {e}"))?;
            instances.push(parse_instance(&data).map_err(|e| format!("{name}: {e}"))?);
            names.push(name);
        }
    } else if std::path::Path::new(path)
        .extension()
        .is_some_and(|ext| ext == "json")
    {
        // A lone instance file (the format `gen` emits is pretty-printed,
        // so line-wise JSONL parsing would reject it).
        let data = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        instances.push(parse_instance(&data).map_err(|e| format!("{path}: {e}"))?);
        names.push(path.to_owned());
    } else {
        let data = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        for (lineno, line) in data.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            instances
                .push(parse_instance(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?);
            names.push(format!("{path}:{}", lineno + 1));
        }
        if instances.is_empty() {
            return Err(format!("{path}: no instances found"));
        }
    }
    Ok((names, instances))
}

/// One instance of the batch JSON report: the input name (file path
/// or `file:line` for JSONL) plus the engine's telemetry record.
#[derive(Serialize)]
struct BatchResult {
    name: String,
    report: SolveReport,
}

/// The batch summary `--batch --report json` emits.
#[derive(Serialize)]
struct BatchReport {
    solver: String,
    instances: usize,
    total_score: i64,
    instances_per_sec: f64,
    results: Vec<BatchResult>,
}

fn solve_batch_cmd(algo: &str, scaling: bool, threads: usize, json: bool, path: &str) -> ExitCode {
    let (names, instances) = match read_batch(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut opts = BatchOptions::new(algo);
    opts.engine.scaling = scaling;
    opts.engine.threads = threads;
    let start = std::time::Instant::now();
    let solutions = match core::solve_batch_reports(&instances, &opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();
    let total: i64 = solutions.iter().map(|(sol, _)| sol.score).sum();
    let per_sec = solutions.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    if json {
        let report = BatchReport {
            solver: algo.to_owned(),
            instances: solutions.len(),
            total_score: total,
            instances_per_sec: per_sec,
            results: names
                .into_iter()
                .zip(solutions)
                .map(|(name, (_, report))| BatchResult { name, report })
                .collect(),
        };
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    for (name, (sol, _)) in names.iter().zip(&solutions) {
        println!("{name}: score {}, {} matches", sol.score, sol.matches.len());
    }
    println!(
        "batch: {} instances, total score {total}, algo {algo}, {per_sec:.1} instances/s",
        solutions.len(),
    );
    ExitCode::SUCCESS
}

fn report(inst: &Instance, matches: &MatchSet) {
    match core::solution_stats(inst, matches) {
        Ok(stats) => print!("{stats}"),
        Err(e) => println!("inconsistent solution: {e}"),
    }
    for (id, m) in matches.iter() {
        println!(
            "  #{id}: {:?} ~ {:?} ({:?}, score {})",
            m.h, m.m, m.orient, m.score
        );
    }
    match LayoutBuilder::new(inst, &DpAligner).layout(matches) {
        Ok(pair) => {
            println!("layout (H over M):\n{}", pair.render(inst));
        }
        Err(e) => println!("layout failed: {e}"),
    }
}

fn solve_cmd(
    algo: &str,
    scaling: bool,
    threads: usize,
    json: bool,
    trace_path: Option<&str>,
    inst: &Instance,
) -> ExitCode {
    let opts = EngineOptions {
        scaling,
        threads,
        ..EngineOptions::default()
    };
    let sink = trace_path.map(|_| core::obs::TraceSink::new());
    let trace = sink
        .as_ref()
        .map_or_else(core::obs::TraceHandle::disabled, |s| {
            core::obs::TraceHandle::new(std::sync::Arc::clone(s))
        });
    let mut ws = fragalign_align::DpWorkspace::new();
    let run = match SolverRegistry::global().solve_traced(
        algo,
        inst,
        opts,
        &mut ws,
        core::CancelToken::never(),
        trace,
    ) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let (Some(path), Some(sink)) = (trace_path, sink) {
        let log = sink.drain();
        if let Err(e) = std::fs::write(path, log.to_chrome_json()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trace: {} events ({} dropped) -> {path} (load in chrome://tracing or Perfetto)",
            log.events.len(),
            log.dropped
        );
    }
    if json {
        return match serde_json::to_string_pretty(&run.report) {
            Ok(s) => {
                println!("{s}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(winner) = &run.report.winner {
        println!("portfolio winner: {winner}");
    }
    report(inst, &run.matches);
    ExitCode::SUCCESS
}

/// Cooperative SIGINT/SIGTERM handling without a signals crate: the
/// handler just flips an atomic, and the serve loop polls it. Storing
/// an `AtomicBool` is async-signal-safe; everything else (draining
/// workers, printing) happens on the main thread afterwards.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn flag_shutdown(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // std links libc, so `signal` is declarable directly — the
        // container has no crate registry for the `libc` crate.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, flag_shutdown);
            signal(SIGTERM, flag_shutdown);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Whether a graceful stop was requested. Only unix delivers one
/// (SIGINT/SIGTERM); elsewhere `serve` runs until the process is
/// killed, and this indirection keeps the shutdown path compiled (and
/// warning-free) on every target.
fn shutdown_requested() -> bool {
    #[cfg(unix)]
    {
        sigint::requested()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

fn serve_cmd(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => cfg.addr = v.clone(),
                None => return usage(),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.workers = v,
                None => return usage(),
            },
            "--queue-depth" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.queue_depth = v,
                None => return usage(),
            },
            "--cache-mb" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.cache_mb = v,
                None => return usage(),
            },
            "--default-solver" => match it.next() {
                Some(v) => cfg.default_solver = v.clone(),
                None => return usage(),
            },
            "--max-conns" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.max_conns = v,
                None => return usage(),
            },
            "--idle-timeout" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.idle_timeout_ms = v,
                None => return usage(),
            },
            "--admission" => match it.next().map(|v| v.as_str()) {
                Some("on") => cfg.admission.enabled = true,
                Some("off") => cfg.admission.enabled = false,
                _ => return usage(),
            },
            "--trace-sample" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.trace_sample = v,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    #[cfg(unix)]
    sigint::install();
    let banner_cfg = cfg.clone();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("fragalign-serve listening on http://{}", server.addr());
    println!(
        "  workers {} | queue depth {} | cache {} MiB in {} shards | default solver {}",
        banner_cfg.workers.max(1),
        banner_cfg.queue_depth.max(1),
        banner_cfg.cache_mb,
        banner_cfg.cache_shards,
        banner_cfg.default_solver
    );
    println!(
        "  max conns {} | idle timeout {} ms | admission {} | trace sample {}",
        banner_cfg.max_conns.max(1),
        banner_cfg.idle_timeout_ms.max(1),
        if banner_cfg.admission.enabled {
            "on"
        } else {
            "off"
        },
        if banner_cfg.trace_sample > 0 {
            format!("1-in-{}", banner_cfg.trace_sample)
        } else {
            "off".to_string()
        }
    );
    println!(
        "  endpoints: POST /v1/solve, POST /v1/batch, GET /v1/solvers, GET /healthz, GET /metrics"
    );
    println!("  press ctrl-c to drain and stop");
    // Stdout is block-buffered when piped; the banner must reach
    // process supervisors (and the golden test) before the first
    // request arrives.
    let _ = std::io::stdout().flush();
    while !shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("fragalign-serve: draining workers and stopping");
    server.shutdown();
    println!("fragalign-serve: stopped cleanly");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "demo" => {
            let inst = fragalign_model::instance::paper_example();
            println!("instance: the paper's Fig. 2 example");
            solve_cmd("csr", false, 0, false, None, &inst)
        }
        "solvers" => {
            print!("{}", SolverRegistry::global().markdown_table());
            ExitCode::SUCCESS
        }
        "serve" => serve_cmd(&args[1..]),
        "solve" => {
            let mut algo = "csr".to_owned();
            let mut scaling = false;
            let mut threads = 0usize;
            let mut batch = false;
            let mut json = false;
            let mut trace: Option<String> = None;
            let mut path: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--algo" => match it.next() {
                        Some(v) => algo = v.clone(),
                        None => return usage(),
                    },
                    "--trace" => match it.next() {
                        Some(v) => trace = Some(v.clone()),
                        None => return usage(),
                    },
                    "--report" => match it.next().map(String::as_str) {
                        Some("json") => json = true,
                        _ => return usage(),
                    },
                    // 0 (the default) = available parallelism: the
                    // ambient pool is already one thread per core.
                    "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => threads = v,
                        None => return usage(),
                    },
                    "--scaling" => scaling = true,
                    "--batch" => batch = true,
                    other => path = Some(other.to_owned()),
                }
            }
            let Some(path) = path else { return usage() };
            if batch {
                if trace.is_some() {
                    eprintln!("error: --trace applies to single solves, not --batch");
                    return usage();
                }
                return solve_batch_cmd(&algo, scaling, threads, json, &path);
            }
            let inst = match read_instance(&path) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            solve_cmd(&algo, scaling, threads, json, trace.as_deref(), &inst)
        }
        "gen" => {
            // Flags are parsed channel-agnostically and folded into
            // whichever generator `--channel` selects; a knob the
            // selected channel has no use for is a usage error, so a
            // typo'd sweep script fails loudly instead of silently
            // generating the wrong workload.
            fn next_parsed<T: std::str::FromStr>(
                it: &mut std::slice::Iter<'_, String>,
            ) -> Option<T> {
                it.next().and_then(|v| v.parse().ok())
            }
            let mut channel = "clean".to_owned();
            let mut regions: Option<usize> = None;
            let mut h_frags: Option<usize> = None;
            let mut m_frags: Option<usize> = None;
            let mut seed: Option<u64> = None;
            let mut noise: Option<f64> = None;
            let mut tear_rate: Option<f64> = None;
            let mut drop_rate: Option<f64> = None;
            let mut dup_rate: Option<f64> = None;
            let mut read_len: Option<usize> = None;
            let mut coverage: Option<f64> = None;
            let mut sub_rate: Option<f64> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--channel" => match it.next() {
                        Some(v) => channel = v.clone(),
                        None => return usage(),
                    },
                    "--regions" => match next_parsed(&mut it) {
                        Some(v) => regions = Some(v),
                        None => return usage(),
                    },
                    "--h-frags" => match next_parsed(&mut it) {
                        Some(v) => h_frags = Some(v),
                        None => return usage(),
                    },
                    "--m-frags" => match next_parsed(&mut it) {
                        Some(v) => m_frags = Some(v),
                        None => return usage(),
                    },
                    "--seed" => match next_parsed(&mut it) {
                        Some(v) => seed = Some(v),
                        None => return usage(),
                    },
                    "--noise" => match next_parsed(&mut it) {
                        Some(v) => noise = Some(v),
                        None => return usage(),
                    },
                    "--tear-rate" => match next_parsed(&mut it) {
                        Some(v) => tear_rate = Some(v),
                        None => return usage(),
                    },
                    "--drop-rate" => match next_parsed(&mut it) {
                        Some(v) => drop_rate = Some(v),
                        None => return usage(),
                    },
                    "--dup-rate" => match next_parsed(&mut it) {
                        Some(v) => dup_rate = Some(v),
                        None => return usage(),
                    },
                    "--read-len" => match next_parsed(&mut it) {
                        Some(v) => read_len = Some(v),
                        None => return usage(),
                    },
                    "--coverage" => match next_parsed(&mut it) {
                        Some(v) => coverage = Some(v),
                        None => return usage(),
                    },
                    "--sub-rate" => match next_parsed(&mut it) {
                        Some(v) => sub_rate = Some(v),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            // Reject knobs the selected channel cannot honour.
            let misapplied = match channel.as_str() {
                "clean" => [
                    tear_rate.is_some(),
                    drop_rate.is_some(),
                    dup_rate.is_some(),
                    read_len.is_some(),
                    coverage.is_some(),
                    sub_rate.is_some(),
                ]
                .iter()
                .any(|&b| b),
                "torn" => [
                    m_frags.is_some(),
                    noise.is_some(),
                    read_len.is_some(),
                    coverage.is_some(),
                    sub_rate.is_some(),
                ]
                .iter()
                .any(|&b| b),
                "soup" => [
                    m_frags.is_some(),
                    tear_rate.is_some(),
                    drop_rate.is_some(),
                    dup_rate.is_some(),
                ]
                .iter()
                .any(|&b| b),
                "mega" | "singletons" | "desert" => [
                    h_frags.is_some(),
                    m_frags.is_some(),
                    noise.is_some(),
                    tear_rate.is_some(),
                    drop_rate.is_some(),
                    dup_rate.is_some(),
                    read_len.is_some(),
                    coverage.is_some(),
                    sub_rate.is_some(),
                ]
                .iter()
                .any(|&b| b),
                _ => return usage(),
            };
            if misapplied {
                eprintln!("error: a flag does not apply to --channel {channel}");
                return usage();
            }
            let instance = match channel.as_str() {
                "clean" => {
                    let mut cfg = SimConfig::default();
                    if let Some(v) = regions {
                        cfg.regions = v;
                    }
                    if let Some(v) = h_frags {
                        cfg.h_frags = v;
                    }
                    if let Some(v) = m_frags {
                        cfg.m_frags = v;
                    }
                    if let Some(v) = seed {
                        cfg.seed = v;
                    }
                    if let Some(v) = noise {
                        cfg.loss_rate = v;
                        cfg.spurious = (v * 20.0) as usize;
                        cfg.shuffles = (v * 10.0) as usize;
                    }
                    generate(&cfg).instance
                }
                "torn" => {
                    let mut cfg = TornConfig::default();
                    if let Some(v) = regions {
                        cfg.regions = v;
                    }
                    if let Some(v) = h_frags {
                        cfg.h_frags = v;
                    }
                    if let Some(v) = seed {
                        cfg.seed = v;
                    }
                    if let Some(v) = tear_rate {
                        cfg.tear_rate = v;
                    }
                    if let Some(v) = drop_rate {
                        cfg.drop_rate = v;
                    }
                    if let Some(v) = dup_rate {
                        cfg.dup_rate = v;
                    }
                    generate_torn(&cfg).instance
                }
                "soup" => {
                    let mut cfg = SoupConfig::default();
                    if let Some(v) = regions {
                        cfg.regions = v;
                    }
                    if let Some(v) = h_frags {
                        cfg.h_frags = v;
                    }
                    if let Some(v) = seed {
                        cfg.seed = v;
                    }
                    if let Some(v) = noise {
                        cfg.noise = v;
                    }
                    if let Some(v) = read_len {
                        cfg.read_len = v;
                    }
                    if let Some(v) = coverage {
                        cfg.coverage = v;
                    }
                    if let Some(v) = sub_rate {
                        cfg.sub_rate = v;
                    }
                    generate_soup(&cfg).instance
                }
                shape => {
                    let shape = match shape {
                        "mega" => DegenerateShape::MegaFragment,
                        "singletons" => DegenerateShape::AllSingletons,
                        _ => DegenerateShape::SigmaDesert,
                    };
                    generate_degenerate(shape, regions.unwrap_or(24), seed.unwrap_or(0)).instance
                }
            };
            match serde_json::to_string_pretty(&instance) {
                Ok(s) => {
                    println!("{s}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
