//! `fragalign` — solve CSR instances from the command line.
//!
//! ```text
//! fragalign solve  [--algo csr|full|border|four|greedy|matching|exact] [--scaling] <instance.json>
//! fragalign gen    [--regions N] [--h-frags N] [--m-frags N] [--seed S] [--noise X]
//! fragalign demo
//! ```
//!
//! * `solve` reads an instance (JSON), runs the chosen solver and
//!   prints the score, the matches and the two-row layout.
//! * `gen` emits a synthetic instance as JSON (pipe into `solve`).
//! * `demo` runs the paper's Fig. 2 example end to end.

use fragalign_align::DpAligner;
use fragalign_core as core;
use fragalign_model::{Instance, LayoutBuilder, MatchSet};
use fragalign_sim::{generate, SimConfig};
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fragalign solve [--algo csr|full|border|four|greedy|matching|exact] [--scaling] <instance.json|->\n  fragalign gen [--regions N] [--h-frags N] [--m-frags N] [--seed S] [--noise X]\n  fragalign demo"
    );
    ExitCode::from(2)
}

fn read_instance(path: &str) -> Result<Instance, String> {
    let data = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    let mut inst: Instance = serde_json::from_str(&data).map_err(|e| e.to_string())?;
    inst.alphabet.rebuild_index();
    inst.validate()?;
    Ok(inst)
}

fn solve(algo: &str, scaling: bool, inst: &Instance) -> Result<MatchSet, String> {
    Ok(match algo {
        "csr" => core::csr_improve(inst, scaling).matches,
        "full" => core::full_improve(inst, scaling).matches,
        "border" => core::border_improve(inst, scaling).matches,
        "four" => core::solve_four_approx(inst),
        "greedy" => core::solve_greedy(inst),
        "matching" => core::border_matching_2approx(inst),
        "exact" => {
            let limits = core::ExactLimits::default();
            let sol = core::solve_exact(inst, limits);
            eprintln!(
                "exact score: {} (arrangement only; showing csr matches)",
                sol.score
            );
            core::csr_improve(inst, scaling).matches
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn report(inst: &Instance, matches: &MatchSet) {
    match core::solution_stats(inst, matches) {
        Ok(stats) => print!("{stats}"),
        Err(e) => println!("inconsistent solution: {e}"),
    }
    for (id, m) in matches.iter() {
        println!(
            "  #{id}: {:?} ~ {:?} ({:?}, score {})",
            m.h, m.m, m.orient, m.score
        );
    }
    match LayoutBuilder::new(inst, &DpAligner).layout(matches) {
        Ok(pair) => {
            println!("layout (H over M):\n{}", pair.render(inst));
        }
        Err(e) => println!("layout failed: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "demo" => {
            let inst = fragalign_model::instance::paper_example();
            println!("instance: the paper's Fig. 2 example");
            let result = core::csr_improve(&inst, false);
            report(&inst, &result.matches);
            ExitCode::SUCCESS
        }
        "solve" => {
            let mut algo = "csr".to_owned();
            let mut scaling = false;
            let mut path: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--algo" => match it.next() {
                        Some(v) => algo = v.clone(),
                        None => return usage(),
                    },
                    "--scaling" => scaling = true,
                    other => path = Some(other.to_owned()),
                }
            }
            let Some(path) = path else { return usage() };
            let inst = match read_instance(&path) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match solve(&algo, scaling, &inst) {
                Ok(matches) => {
                    report(&inst, &matches);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "gen" => {
            let mut cfg = SimConfig::default();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut next_usize = |target: &mut usize| -> Result<(), ExitCode> {
                    match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => {
                            *target = v;
                            Ok(())
                        }
                        None => Err(usage()),
                    }
                };
                match a.as_str() {
                    "--regions" => {
                        if let Err(e) = next_usize(&mut cfg.regions) {
                            return e;
                        }
                    }
                    "--h-frags" => {
                        if let Err(e) = next_usize(&mut cfg.h_frags) {
                            return e;
                        }
                    }
                    "--m-frags" => {
                        if let Err(e) = next_usize(&mut cfg.m_frags) {
                            return e;
                        }
                    }
                    "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => cfg.seed = v,
                        None => return usage(),
                    },
                    "--noise" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                        Some(v) => {
                            cfg.loss_rate = v;
                            cfg.spurious = (v * 20.0) as usize;
                            cfg.shuffles = (v * 10.0) as usize;
                        }
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let sim = generate(&cfg);
            match serde_json::to_string_pretty(&sim.instance) {
                Ok(s) => {
                    println!("{s}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
