//! Instance generation.

use fragalign_align::dna::{best_local_score, reverse_complement, DnaParams};
use fragalign_model::{Alphabet, Fragment, Instance, Score, ScoreTable, Sym};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Simulator parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of conserved regions in the ancestral sequence.
    pub regions: usize,
    /// Target fragments for the H species (contigs).
    pub h_frags: usize,
    /// Target fragments for the M species.
    pub m_frags: usize,
    /// Probability that a region is missing from a species' copy
    /// (lineage-specific loss / unsequenced gap).
    pub loss_rate: f64,
    /// Probability that an M fragment is emitted reverse-complemented.
    pub flip_rate: f64,
    /// Number of random adjacent-region transpositions applied to the
    /// M copy (evolutionary shuffling producing Fig. 3 conflicts).
    pub shuffles: usize,
    /// Number of spurious cross-pairs added to σ (wrong alignments).
    pub spurious: usize,
    /// Base score of a true conserved-pair alignment.
    pub base_score: Score,
    /// ± jitter applied to true pair scores.
    pub score_jitter: Score,
    /// Derive σ from simulated DNA instead of the abstract model.
    pub dna: Option<DnaMode>,
    /// Number of chimeric joins: after fragmentation, swap the tails
    /// of two random M contigs. This models incorrectly assembled
    /// contigs — the third inconsistency source the paper names
    /// ("when contigs are incorrectly assembled from the shorter
    /// segments").
    pub chimeras: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            regions: 24,
            h_frags: 4,
            m_frags: 4,
            loss_rate: 0.1,
            flip_rate: 0.5,
            shuffles: 1,
            spurious: 2,
            base_score: 100,
            score_jitter: 30,
            dna: None,
            chimeras: 0,
            seed: 0,
        }
    }
}

/// Nucleotide-level σ derivation parameters.
#[derive(Clone, Copy, Debug)]
pub struct DnaMode {
    /// Region length in basepairs.
    pub region_len: usize,
    /// Per-base mutation probability between the species' copies.
    pub mutation_rate: f64,
    /// Alignment scoring.
    pub params: DnaParams,
}

impl Default for DnaMode {
    fn default() -> Self {
        DnaMode {
            region_len: 60,
            mutation_rate: 0.1,
            params: DnaParams::default(),
        }
    }
}

/// What actually happened during generation, for recovery scoring.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// For each H fragment index: (ancestral start rank, emitted reversed).
    pub h_layout: Vec<(usize, bool)>,
    /// For each M fragment index: (ancestral start rank, emitted reversed).
    pub m_layout: Vec<(usize, bool)>,
    /// True (H region, M region) homologous pairs present in σ.
    pub true_pairs: Vec<(Sym, Sym)>,
}

/// A generated instance plus its ground truth.
#[derive(Clone, Debug)]
pub struct SimInstance {
    /// The CSR instance handed to solvers.
    pub instance: Instance,
    /// The generation record.
    pub truth: GroundTruth,
}

fn random_dna(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len)
        .map(|_| b"ACGT"[rng.random_range(0..4usize)])
        .collect()
}

fn mutate(rng: &mut StdRng, seq: &[u8], rate: f64) -> Vec<u8> {
    seq.iter()
        .map(|&b| {
            if rng.random_bool(rate) {
                b"ACGT"[rng.random_range(0..4usize)]
            } else {
                b
            }
        })
        .collect()
}

/// Cut `items` into `pieces` non-empty contiguous chunks.
pub(crate) fn cut_into(rng: &mut StdRng, len: usize, pieces: usize) -> Vec<(usize, usize)> {
    let pieces = pieces.min(len).max(1);
    let mut cuts: Vec<usize> = (1..len).collect();
    cuts.shuffle(rng);
    let mut chosen: Vec<usize> = cuts.into_iter().take(pieces - 1).collect();
    chosen.push(0);
    chosen.push(len);
    chosen.sort_unstable();
    chosen.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Generate a synthetic instance.
pub fn generate(config: &SimConfig) -> SimInstance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut alphabet = Alphabet::new();
    let n = config.regions;

    // Ancestral regions 0..n; each species sees a subset, named
    // species-locally (an H region and its M counterpart are distinct
    // symbols scored by σ, as in the paper).
    let h_syms: Vec<Sym> = (0..n).map(|i| alphabet.sym(&format!("h{i}"))).collect();
    let m_syms: Vec<Sym> = (0..n).map(|i| alphabet.sym(&format!("m{i}"))).collect();

    let keep = |rng: &mut StdRng, rate: f64| -> Vec<bool> {
        (0..n).map(|_| !rng.random_bool(rate)).collect()
    };
    let h_keep = keep(&mut rng, config.loss_rate);
    let m_keep = keep(&mut rng, config.loss_rate);

    // M copy order: ancestral order with local shuffles.
    let mut m_order: Vec<usize> = (0..n).collect();
    for _ in 0..config.shuffles {
        if n >= 2 {
            let i = rng.random_range(0..n - 1);
            m_order.swap(i, i + 1);
        }
    }

    // σ: true pairs (+ jitter), then spurious pairs.
    let mut sigma = ScoreTable::new();
    let mut true_pairs = Vec::new();
    let mut dna_h: Vec<Vec<u8>> = Vec::new();
    let mut dna_m: Vec<Vec<u8>> = Vec::new();
    if let Some(dna) = &config.dna {
        for i in 0..n {
            let ancestral = random_dna(&mut rng, dna.region_len);
            dna_h.push(mutate(&mut rng, &ancestral, dna.mutation_rate / 2.0));
            dna_m.push(mutate(&mut rng, &ancestral, dna.mutation_rate / 2.0));
            let _ = i;
        }
    }
    for i in 0..n {
        if !(h_keep[i] && m_keep[i]) {
            continue;
        }
        let score = match &config.dna {
            None => {
                let jitter = if config.score_jitter > 0 {
                    rng.random_range(-config.score_jitter..=config.score_jitter)
                } else {
                    0
                };
                (config.base_score + jitter).max(1)
            }
            Some(dna) => {
                let (s, _) = best_local_score(&dna_h[i], &dna_m[i], dna.params);
                s.max(1)
            }
        };
        sigma.set(h_syms[i], m_syms[i], score);
        true_pairs.push((h_syms[i], m_syms[i]));
    }
    for _ in 0..config.spurious {
        if n < 2 {
            break;
        }
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n);
        if i == j {
            j = (j + 1) % n;
        }
        let score = match &config.dna {
            None => (config.base_score / 3).max(1),
            Some(dna) => {
                // Align unrelated regions; take whatever noise floor the
                // aligner reports, at least 1.
                let (s, _) =
                    best_local_score(&dna_h[i], &reverse_complement(&dna_m[j]), dna.params);
                s.max(1)
            }
        };
        let flip = rng.random_bool(0.5);
        let m = if flip {
            m_syms[j].reversed()
        } else {
            m_syms[j]
        };
        sigma.set(h_syms[i], m, score);
    }

    // Fragment each species' surviving regions into contigs, then
    // shuffle contig order and flip some contigs.
    let build_side = |rng: &mut StdRng,
                      order: &[usize],
                      keeps: &[bool],
                      syms: &[Sym],
                      frags: usize,
                      flip_rate: f64,
                      prefix: &str|
     -> (Vec<Fragment>, Vec<(usize, bool)>) {
        let surviving: Vec<usize> = order.iter().copied().filter(|&i| keeps[i]).collect();
        let chunks = cut_into(rng, surviving.len().max(1), frags);
        let mut out = Vec::new();
        let mut layout = Vec::new();
        for (k, &(lo, hi)) in chunks.iter().enumerate() {
            let mut regions: Vec<Sym> = surviving
                .get(lo..hi.min(surviving.len()))
                .unwrap_or(&[])
                .iter()
                .map(|&i| syms[i])
                .collect();
            if regions.is_empty() {
                regions = vec![syms[0]]; // degenerate tiny genomes
            }
            let flipped = rng.random_bool(flip_rate);
            if flipped {
                fragalign_model::symbol::reverse_word_in_place(&mut regions);
            }
            out.push(Fragment::new(format!("{prefix}{k}"), regions));
            layout.push((lo, flipped));
        }
        // Shuffle the emission order (assemblies output contigs in
        // arbitrary order); keep layout aligned with the new order.
        let mut idx: Vec<usize> = (0..out.len()).collect();
        idx.shuffle(rng);
        let out2: Vec<Fragment> = idx.iter().map(|&i| out[i].clone()).collect();
        let layout2: Vec<(usize, bool)> = idx.iter().map(|&i| layout[i]).collect();
        (out2, layout2)
    };

    let h_order: Vec<usize> = (0..n).collect();
    let (h, h_layout) = build_side(
        &mut rng,
        &h_order,
        &h_keep,
        &h_syms,
        config.h_frags,
        0.0, // by convention the H assembly is the reference orientation
        "h",
    );
    let (mut m, m_layout) = build_side(
        &mut rng,
        &m_order,
        &m_keep,
        &m_syms,
        config.m_frags,
        config.flip_rate,
        "m",
    );

    // Misassembly: swap the tails of two random M contigs (chimeric
    // joins). Ground-truth layout for chimeric contigs keeps the
    // original start rank of the head piece; order metrics treat the
    // swapped tail as noise, which is exactly what a real chimera does
    // to a scaffolder.
    for _ in 0..config.chimeras {
        if m.len() < 2 {
            break;
        }
        let a = rng.random_range(0..m.len());
        let mut b = rng.random_range(0..m.len());
        if a == b {
            b = (b + 1) % m.len();
        }
        if m[a].len() < 2 || m[b].len() < 2 {
            continue;
        }
        let cut_a = 1 + rng.random_range(0..m[a].len() - 1);
        let cut_b = 1 + rng.random_range(0..m[b].len() - 1);
        let tail_a: Vec<_> = m[a].regions.split_off(cut_a);
        let tail_b: Vec<_> = m[b].regions.split_off(cut_b);
        m[a].regions.extend(tail_b);
        m[b].regions.extend(tail_a);
        m[a].name.push('!');
        m[b].name.push('!');
    }

    SimInstance {
        instance: Instance {
            h,
            m,
            sigma,
            alphabet,
        },
        truth: GroundTruth {
            h_layout,
            m_layout,
            true_pairs,
        },
    }
}

/// Generate a batch of `count` instances: the shared `base` config
/// with seeds `base.seed, base.seed + 1, …`. Instance `i` of a batch
/// is identical to a lone [`generate`] call at seed `base.seed + i`,
/// so batch workloads are reproducible piecewise.
pub fn gen_batch(base: &SimConfig, count: usize) -> Vec<SimInstance> {
    (0..count)
        .map(|i| {
            generate(&SimConfig {
                seed: base.seed.wrapping_add(i as u64),
                ..base.clone()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_batch_matches_piecewise_generation() {
        let base = SimConfig {
            regions: 12,
            seed: 40,
            ..SimConfig::default()
        };
        let batch = gen_batch(&base, 3);
        assert_eq!(batch.len(), 3);
        for (i, sim) in batch.iter().enumerate() {
            let lone = generate(&SimConfig {
                seed: 40 + i as u64,
                ..base.clone()
            });
            assert_eq!(sim.instance.h, lone.instance.h, "instance {i}");
            assert_eq!(sim.instance.m, lone.instance.m, "instance {i}");
        }
        // Different seeds actually vary the data.
        assert!(
            batch[0].instance.h != batch[1].instance.h
                || batch[0].instance.m != batch[1].instance.m
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let c = SimConfig::default();
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.instance.h, b.instance.h);
        assert_eq!(a.instance.m, b.instance.m);
        assert_eq!(a.truth.true_pairs, b.truth.true_pairs);
    }

    #[test]
    fn seeds_differ() {
        let a = generate(&SimConfig::default());
        let b = generate(&SimConfig {
            seed: 1,
            ..SimConfig::default()
        });
        assert!(a.instance.h != b.instance.h || a.instance.m != b.instance.m);
    }

    #[test]
    fn shapes_respect_config() {
        let c = SimConfig {
            regions: 30,
            h_frags: 5,
            m_frags: 3,
            ..SimConfig::default()
        };
        let s = generate(&c);
        assert_eq!(s.instance.h.len(), 5);
        assert_eq!(s.instance.m.len(), 3);
        let h_total: usize = s.instance.h.iter().map(|f| f.len()).sum();
        assert!(h_total <= 30);
        assert!(
            h_total >= 20,
            "loss rate 0.1 keeps most regions, got {h_total}"
        );
    }

    #[test]
    fn true_pairs_scored_positive() {
        let s = generate(&SimConfig::default());
        for &(a, b) in &s.truth.true_pairs {
            assert!(s.instance.sigma.score(a, b) > 0);
        }
    }

    #[test]
    fn no_loss_no_shuffle_keeps_all_regions() {
        let c = SimConfig {
            loss_rate: 0.0,
            shuffles: 0,
            spurious: 0,
            regions: 12,
            h_frags: 3,
            m_frags: 3,
            ..SimConfig::default()
        };
        let s = generate(&c);
        let h_total: usize = s.instance.h.iter().map(|f| f.len()).sum();
        let m_total: usize = s.instance.m.iter().map(|f| f.len()).sum();
        assert_eq!(h_total, 12);
        assert_eq!(m_total, 12);
        assert_eq!(s.truth.true_pairs.len(), 12);
    }

    #[test]
    fn dna_mode_produces_positive_sigma() {
        let c = SimConfig {
            regions: 8,
            h_frags: 2,
            m_frags: 2,
            dna: Some(DnaMode::default()),
            loss_rate: 0.0,
            ..SimConfig::default()
        };
        let s = generate(&c);
        // true pairs should align far above the noise floor
        for &(a, b) in &s.truth.true_pairs {
            assert!(s.instance.sigma.score(a, b) > 40, "weak true pair");
        }
    }

    #[test]
    fn chimeras_swap_tails_but_preserve_regions() {
        let base = SimConfig {
            regions: 16,
            m_frags: 4,
            loss_rate: 0.0,
            ..SimConfig::default()
        };
        let clean = generate(&base);
        let chim = generate(&SimConfig {
            chimeras: 2,
            ..base
        });
        let count = |s: &SimInstance| -> usize { s.instance.m.iter().map(|f| f.len()).sum() };
        // Chimeric joins move regions between contigs, never lose them.
        assert_eq!(count(&clean), count(&chim));
        // Some contig is marked chimeric.
        assert!(chim.instance.m.iter().any(|f| f.name.ends_with('!')));
        // The instance still solves without panicking.
        let sol = fragalign_core::solve_four_approx(&chim.instance);
        fragalign_model::check_consistency(&chim.instance, &sol).unwrap();
    }

    #[test]
    fn cut_into_partitions() {
        let mut rng = StdRng::seed_from_u64(5);
        let chunks = cut_into(&mut rng, 10, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].0, 0);
        assert_eq!(chunks.last().unwrap().1, 10);
        for w in chunks.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }
}
