//! Adversarial workload generators: hostile instance shapes the clean
//! simulator in [`crate::generate`] never produces.
//!
//! Three channels, all emitting [`SimInstance`]s with full
//! [`GroundTruth`] layouts (so [`crate::evaluate_recovery`] works
//! unchanged) and all deterministic per seed:
//!
//! * **Torn paper** ([`generate_torn`]) — the channel of "Improved
//!   Torn Paper Coding via Local Alignment" (PAPERS.md): the M copy is
//!   torn at random breakpoints (one per region adjacency with
//!   probability [`TornConfig::tear_rate`]), then whole pieces are
//!   *deleted* or *duplicated* before emission. Solvers see many short
//!   fragments, missing regions, and — the hostile part — the same
//!   region symbol spelled by two different fragments.
//! * **Read soup** ([`generate_soup`]) — the pyrosequencing-style
//!   workload (PAPERS.md): M is a pile of short overlapping reads
//!   sampled along the ancestral sequence at a configurable coverage,
//!   with substitution noise in σ (a corrupted region's true-pair
//!   score collapses to the spurious-pair floor). Regions typically
//!   appear in several reads at once.
//! * **Degenerate shapes** ([`generate_degenerate`]) — the boundary
//!   geometry the stress net wants: one mega-fragment holding a whole
//!   species ([`DegenerateShape::MegaFragment`], the 1-CSR regime),
//!   every region its own fragment ([`DegenerateShape::AllSingletons`],
//!   maximal fragment count), and a σ desert
//!   ([`DegenerateShape::SigmaDesert`], almost no scoring signal).
//!
//! Batch helpers ([`torn_batch`], [`soup_batch`]) derive per-instance
//! seeds by index (`base.seed + i`), exactly like
//! [`crate::gen_batch`], so growing a batch never changes its prefix.

use crate::generate::{cut_into, GroundTruth, SimInstance};
use fragalign_model::{Alphabet, Fragment, Instance, Score, ScoreTable, Sym};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Torn-paper channel parameters.
#[derive(Clone, Debug)]
pub struct TornConfig {
    /// Conserved regions in the ancestral sequence.
    pub regions: usize,
    /// Contigs the (clean, reference-orientation) H copy is cut into.
    pub h_frags: usize,
    /// Probability of a tear at each region adjacency of the M copy.
    pub tear_rate: f64,
    /// Probability that a torn piece is lost entirely (at least one
    /// piece always survives).
    pub drop_rate: f64,
    /// Probability that a surviving piece is emitted twice — the
    /// second copy independently oriented, so solvers face duplicate
    /// region symbols across fragments.
    pub dup_rate: f64,
    /// Probability that each emitted M piece is reverse-complemented.
    pub flip_rate: f64,
    /// Base score of a true conserved pair.
    pub base_score: Score,
    /// ± jitter on true-pair scores.
    pub score_jitter: Score,
    /// Spurious (wrong) σ pairs added at a third of the base score.
    pub spurious: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TornConfig {
    fn default() -> Self {
        TornConfig {
            regions: 24,
            h_frags: 4,
            tear_rate: 0.25,
            drop_rate: 0.15,
            dup_rate: 0.1,
            flip_rate: 0.5,
            base_score: 100,
            score_jitter: 30,
            spurious: 2,
            seed: 0,
        }
    }
}

/// Read-soup channel parameters.
#[derive(Clone, Debug)]
pub struct SoupConfig {
    /// Conserved regions in the ancestral sequence.
    pub regions: usize,
    /// Contigs the (clean) H copy is cut into.
    pub h_frags: usize,
    /// Regions per read (reads at the sequence end may be shorter
    /// only when `regions < read_len`).
    pub read_len: usize,
    /// Expected number of reads covering each region; the read count
    /// is `ceil(coverage · regions / read_len)`.
    pub coverage: f64,
    /// Probability that each read is emitted reverse-complemented.
    pub flip_rate: f64,
    /// Per-region substitution probability: a corrupted region's
    /// true-pair score collapses to the spurious floor.
    pub sub_rate: f64,
    /// Multiplicative jitter on clean true-pair scores, uniform in
    /// `[1 - noise, 1 + noise]`.
    pub noise: f64,
    /// Base score of a clean true pair.
    pub base_score: Score,
    /// Spurious (wrong) σ pairs added at a third of the base score.
    pub spurious: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SoupConfig {
    fn default() -> Self {
        SoupConfig {
            regions: 24,
            h_frags: 3,
            read_len: 4,
            coverage: 2.0,
            flip_rate: 0.5,
            sub_rate: 0.15,
            noise: 0.3,
            base_score: 100,
            spurious: 4,
            seed: 0,
        }
    }
}

/// The degenerate boundary geometries the stress net exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegenerateShape {
    /// All of M in one fragment (the 1-CSR regime, where `one-csr`
    /// applies and fragment-enumeration costs vanish).
    MegaFragment,
    /// Every region its own fragment on both sides — maximal fragment
    /// count, worst case for per-fragment enumeration.
    AllSingletons,
    /// σ keeps only `ceil(regions / 8)` true pairs: almost no signal,
    /// so tie-breaking and empty-result paths get exercised.
    SigmaDesert,
}

/// Per-species symbol tables for an ancestral sequence of `n` regions.
fn sym_tables(n: usize) -> (Alphabet, Vec<Sym>, Vec<Sym>) {
    let mut alphabet = Alphabet::new();
    let h: Vec<Sym> = (0..n).map(|i| alphabet.sym(&format!("h{i}"))).collect();
    let m: Vec<Sym> = (0..n).map(|i| alphabet.sym(&format!("m{i}"))).collect();
    (alphabet, h, m)
}

/// Emit fragments from `(ancestral start, region indices, flipped)`
/// piece specs, shuffling the emission order; returns the fragments
/// plus the matching ground-truth layout entries.
fn emit_pieces(
    rng: &mut StdRng,
    prefix: &str,
    pieces: &[(usize, Vec<usize>, bool)],
    syms: &[Sym],
) -> (Vec<Fragment>, Vec<(usize, bool)>) {
    let mut frags = Vec::with_capacity(pieces.len());
    let mut layout = Vec::with_capacity(pieces.len());
    for (k, (start, idxs, flipped)) in pieces.iter().enumerate() {
        let mut regions: Vec<Sym> = idxs.iter().map(|&i| syms[i]).collect();
        if *flipped {
            fragalign_model::symbol::reverse_word_in_place(&mut regions);
        }
        frags.push(Fragment::new(format!("{prefix}{k}"), regions));
        layout.push((*start, *flipped));
    }
    let mut order: Vec<usize> = (0..frags.len()).collect();
    order.shuffle(rng);
    let frags2 = order.iter().map(|&i| frags[i].clone()).collect();
    let layout2 = order.iter().map(|&i| layout[i]).collect();
    (frags2, layout2)
}

/// The clean reference side: all `n` regions, ancestral order, cut
/// into `frags` contigs, unflipped, shuffled emission order.
fn reference_side(
    rng: &mut StdRng,
    n: usize,
    frags: usize,
    syms: &[Sym],
) -> (Vec<Fragment>, Vec<(usize, bool)>) {
    let chunks = cut_into(rng, n.max(1), frags);
    let pieces: Vec<(usize, Vec<usize>, bool)> = chunks
        .iter()
        .map(|&(lo, hi)| (lo, (lo..hi.min(n.max(1))).collect(), false))
        .collect();
    emit_pieces(rng, "h", &pieces, syms)
}

/// Add `count` spurious σ pairs at a third of `base` (minimum 1),
/// randomly oriented, never overwriting an existing entry's key pair
/// intentionally — collisions just reset a score, which is itself a
/// kind of noise.
fn add_spurious(
    rng: &mut StdRng,
    sigma: &mut ScoreTable,
    h: &[Sym],
    m: &[Sym],
    count: usize,
    base: Score,
) {
    let n = h.len();
    for _ in 0..count {
        if n < 2 {
            break;
        }
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n);
        if i == j {
            j = (j + 1) % n;
        }
        let target = if rng.random_bool(0.5) {
            m[j].reversed()
        } else {
            m[j]
        };
        sigma.set(h[i], target, (base / 3).max(1));
    }
}

/// Generate one torn-paper instance.
pub fn generate_torn(config: &TornConfig) -> SimInstance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.regions.max(1);
    let (alphabet, h_syms, m_syms) = sym_tables(n);

    // Tear the M copy: a breakpoint at each adjacency with
    // probability tear_rate.
    let mut pieces: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut current: Vec<usize> = vec![0];
    let mut start = 0usize;
    for i in 1..n {
        if rng.random_bool(config.tear_rate) {
            pieces.push((start, std::mem::take(&mut current)));
            start = i;
        }
        current.push(i);
    }
    pieces.push((start, current));

    // Deletion pass (keep at least one piece), then duplication pass.
    let mut surviving: Vec<(usize, Vec<usize>)> = pieces
        .iter()
        .filter(|_| !rng.random_bool(config.drop_rate))
        .cloned()
        .collect();
    if surviving.is_empty() {
        surviving.push(pieces[0].clone());
    }
    let mut emitted: Vec<(usize, Vec<usize>, bool)> = Vec::new();
    for (start, idxs) in &surviving {
        emitted.push((*start, idxs.clone(), rng.random_bool(config.flip_rate)));
        if rng.random_bool(config.dup_rate) {
            // The duplicate re-spells the same region symbols from a
            // second fragment — the shape clean sim never produces.
            emitted.push((*start, idxs.clone(), rng.random_bool(config.flip_rate)));
        }
    }

    // σ only over regions the torn copy still carries.
    let mut present = vec![false; n];
    for (_, idxs, _) in &emitted {
        for &i in idxs {
            present[i] = true;
        }
    }
    let mut sigma = ScoreTable::new();
    let mut true_pairs = Vec::new();
    for i in 0..n {
        if !present[i] {
            continue;
        }
        let jitter = if config.score_jitter > 0 {
            rng.random_range(-config.score_jitter..=config.score_jitter)
        } else {
            0
        };
        sigma.set(h_syms[i], m_syms[i], (config.base_score + jitter).max(1));
        true_pairs.push((h_syms[i], m_syms[i]));
    }
    add_spurious(
        &mut rng,
        &mut sigma,
        &h_syms,
        &m_syms,
        config.spurious,
        config.base_score,
    );

    let (h, h_layout) = reference_side(&mut rng, n, config.h_frags, &h_syms);
    let (m, m_layout) = emit_pieces(&mut rng, "m", &emitted, &m_syms);

    SimInstance {
        instance: Instance {
            h,
            m,
            sigma,
            alphabet,
        },
        truth: GroundTruth {
            h_layout,
            m_layout,
            true_pairs,
        },
    }
}

/// Generate one read-soup instance.
pub fn generate_soup(config: &SoupConfig) -> SimInstance {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.regions.max(1);
    let (alphabet, h_syms, m_syms) = sym_tables(n);

    let read_len = config.read_len.clamp(1, n);
    let reads = ((config.coverage * n as f64 / read_len as f64).ceil() as usize).max(1);
    let mut pieces: Vec<(usize, Vec<usize>, bool)> = Vec::with_capacity(reads);
    for _ in 0..reads {
        let start = rng.random_range(0..=n - read_len);
        pieces.push((
            start,
            (start..start + read_len).collect(),
            rng.random_bool(config.flip_rate),
        ));
    }

    let mut covered = vec![false; n];
    for (_, idxs, _) in &pieces {
        for &i in idxs {
            covered[i] = true;
        }
    }
    let mut sigma = ScoreTable::new();
    let mut true_pairs = Vec::new();
    let floor = (config.base_score / 5).max(1);
    for i in 0..n {
        if !covered[i] {
            continue;
        }
        let score = if rng.random_bool(config.sub_rate) {
            floor // substitution noise ate the alignment signal
        } else {
            let jitter = 1.0 + config.noise * (rng.random_range(-1000..=1000i64) as f64 / 1000.0);
            ((config.base_score as f64 * jitter) as Score).max(1)
        };
        sigma.set(h_syms[i], m_syms[i], score);
        true_pairs.push((h_syms[i], m_syms[i]));
    }
    add_spurious(
        &mut rng,
        &mut sigma,
        &h_syms,
        &m_syms,
        config.spurious,
        config.base_score,
    );

    let (h, h_layout) = reference_side(&mut rng, n, config.h_frags, &h_syms);
    let (m, m_layout) = emit_pieces(&mut rng, "m", &pieces, &m_syms);

    SimInstance {
        instance: Instance {
            h,
            m,
            sigma,
            alphabet,
        },
        truth: GroundTruth {
            h_layout,
            m_layout,
            true_pairs,
        },
    }
}

/// Generate one degenerate-shape instance with `regions` regions.
pub fn generate_degenerate(shape: DegenerateShape, regions: usize, seed: u64) -> SimInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = regions.max(1);
    let (alphabet, h_syms, m_syms) = sym_tables(n);

    let base: Score = 100;
    let mut sigma = ScoreTable::new();
    let mut true_pairs = Vec::new();
    let sparse_keep = match shape {
        // Keep every 8th region's σ entry (at least one).
        DegenerateShape::SigmaDesert => Some(n.div_ceil(8).max(1)),
        _ => None,
    };
    for i in 0..n {
        if let Some(keep) = sparse_keep {
            // Evenly spaced survivors: region i kept iff i % stride == 0.
            let stride = n.div_ceil(keep);
            if i % stride != 0 {
                continue;
            }
        }
        sigma.set(h_syms[i], m_syms[i], base);
        true_pairs.push((h_syms[i], m_syms[i]));
    }

    let (h, h_layout, m, m_layout) = match shape {
        DegenerateShape::MegaFragment => {
            let (h, h_layout) = reference_side(&mut rng, n, n.div_ceil(6).max(2), &h_syms);
            let mega = vec![(0usize, (0..n).collect::<Vec<usize>>(), false)];
            let (m, m_layout) = emit_pieces(&mut rng, "m", &mega, &m_syms);
            (h, h_layout, m, m_layout)
        }
        DegenerateShape::AllSingletons => {
            let h_pieces: Vec<(usize, Vec<usize>, bool)> =
                (0..n).map(|i| (i, vec![i], false)).collect();
            let (h, h_layout) = emit_pieces(&mut rng, "h", &h_pieces, &h_syms);
            let m_pieces: Vec<(usize, Vec<usize>, bool)> =
                (0..n).map(|i| (i, vec![i], rng.random_bool(0.5))).collect();
            let (m, m_layout) = emit_pieces(&mut rng, "m", &m_pieces, &m_syms);
            (h, h_layout, m, m_layout)
        }
        DegenerateShape::SigmaDesert => {
            let (h, h_layout) = reference_side(&mut rng, n, 3, &h_syms);
            let chunks = cut_into(&mut rng, n, 3);
            let pieces: Vec<(usize, Vec<usize>, bool)> = chunks
                .iter()
                .map(|&(lo, hi)| (lo, (lo..hi).collect(), rng.random_bool(0.5)))
                .collect();
            let (m, m_layout) = emit_pieces(&mut rng, "m", &pieces, &m_syms);
            (h, h_layout, m, m_layout)
        }
    };

    SimInstance {
        instance: Instance {
            h,
            m,
            sigma,
            alphabet,
        },
        truth: GroundTruth {
            h_layout,
            m_layout,
            true_pairs,
        },
    }
}

/// A batch of torn-paper instances at seeds `base.seed, base.seed+1,
/// …` — prefix-stable: instance `i` equals a lone [`generate_torn`]
/// at seed `base.seed + i`, so growing `count` never changes earlier
/// instances.
pub fn torn_batch(base: &TornConfig, count: usize) -> Vec<SimInstance> {
    (0..count)
        .map(|i| {
            generate_torn(&TornConfig {
                seed: base.seed.wrapping_add(i as u64),
                ..base.clone()
            })
        })
        .collect()
}

/// A batch of read-soup instances, prefix-stable exactly like
/// [`torn_batch`].
pub fn soup_batch(base: &SoupConfig, count: usize) -> Vec<SimInstance> {
    (0..count)
        .map(|i| {
            generate_soup(&SoupConfig {
                seed: base.seed.wrapping_add(i as u64),
                ..base.clone()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_is_deterministic_and_valid() {
        let c = TornConfig::default();
        let a = generate_torn(&c);
        let b = generate_torn(&c);
        assert_eq!(a.instance.h, b.instance.h);
        assert_eq!(a.instance.m, b.instance.m);
        assert_eq!(a.truth.true_pairs, b.truth.true_pairs);
        a.instance.validate().unwrap();
        // Layouts cover every fragment (evaluate_recovery indexes them).
        assert_eq!(a.truth.h_layout.len(), a.instance.h.len());
        assert_eq!(a.truth.m_layout.len(), a.instance.m.len());
    }

    #[test]
    fn torn_tears_drop_and_duplicate() {
        // A high tear rate with drops and dups must change fragment
        // counts relative to the clean reference on some seed.
        let c = TornConfig {
            regions: 30,
            tear_rate: 0.5,
            drop_rate: 0.3,
            dup_rate: 0.3,
            seed: 7,
            ..TornConfig::default()
        };
        let s = generate_torn(&c);
        s.instance.validate().unwrap();
        assert!(s.instance.m.len() > 4, "tearing makes many pieces");
        let m_total: usize = s.instance.m.iter().map(|f| f.len()).sum();
        assert_ne!(m_total, 30, "drops/dups change total M regions");
        // True pairs only name regions the torn copy still carries.
        for &(_, m) in &s.truth.true_pairs {
            assert!(s
                .instance
                .m
                .iter()
                .any(|f| f.regions.iter().any(|r| r.id == m.id)));
        }
    }

    #[test]
    fn soup_reads_overlap_and_cover() {
        let c = SoupConfig {
            regions: 20,
            coverage: 3.0,
            seed: 11,
            ..SoupConfig::default()
        };
        let s = generate_soup(&c);
        s.instance.validate().unwrap();
        assert_eq!(s.instance.m.len(), 15, "ceil(3.0 * 20 / 4) reads");
        for f in &s.instance.m {
            assert_eq!(f.len(), 4, "reads are read_len regions long");
        }
        // Coverage > 1 means some region appears in several reads.
        let mut counts = std::collections::HashMap::new();
        for f in &s.instance.m {
            for r in &f.regions {
                *counts.entry(r.id).or_insert(0usize) += 1;
            }
        }
        assert!(counts.values().any(|&c| c > 1), "no overlapping reads");
        assert_eq!(s.truth.m_layout.len(), s.instance.m.len());
    }

    #[test]
    fn soup_substitutions_hit_the_floor() {
        let c = SoupConfig {
            sub_rate: 1.0,
            noise: 0.0,
            seed: 3,
            ..SoupConfig::default()
        };
        let s = generate_soup(&c);
        for &(a, b) in &s.truth.true_pairs {
            assert_eq!(s.instance.sigma.score(a, b), 20, "all pairs corrupted");
        }
    }

    #[test]
    fn degenerate_shapes_hold_their_invariants() {
        let mega = generate_degenerate(DegenerateShape::MegaFragment, 18, 5);
        mega.instance.validate().unwrap();
        assert_eq!(mega.instance.m.len(), 1);
        assert_eq!(mega.instance.m[0].len(), 18);

        let singles = generate_degenerate(DegenerateShape::AllSingletons, 18, 5);
        singles.instance.validate().unwrap();
        assert_eq!(singles.instance.h.len(), 18);
        assert_eq!(singles.instance.m.len(), 18);
        assert!(singles.instance.m.iter().all(|f| f.len() == 1));

        let desert = generate_degenerate(DegenerateShape::SigmaDesert, 18, 5);
        desert.instance.validate().unwrap();
        assert_eq!(desert.instance.sigma.len(), 3, "ceil(18/8) entries");
        assert!(desert.instance.sigma.len() < 18 / 2);
    }

    #[test]
    fn batches_are_prefix_stable() {
        let torn = TornConfig {
            seed: 90,
            ..TornConfig::default()
        };
        let small = torn_batch(&torn, 3);
        let grown = torn_batch(&torn, 8);
        for (i, (a, b)) in small.iter().zip(&grown).enumerate() {
            assert_eq!(a.instance.h, b.instance.h, "torn prefix drifted at {i}");
            assert_eq!(a.instance.m, b.instance.m, "torn prefix drifted at {i}");
        }
        let soup = SoupConfig {
            seed: 91,
            ..SoupConfig::default()
        };
        let small = soup_batch(&soup, 3);
        let grown = soup_batch(&soup, 8);
        for (i, (a, b)) in small.iter().zip(&grown).enumerate() {
            assert_eq!(a.instance.m, b.instance.m, "soup prefix drifted at {i}");
            assert_eq!(
                a.truth.true_pairs, b.truth.true_pairs,
                "soup truth drifted at {i}"
            );
        }
    }

    #[test]
    fn tiny_region_counts_survive() {
        for n in [1usize, 2, 3] {
            generate_torn(&TornConfig {
                regions: n,
                ..TornConfig::default()
            })
            .instance
            .validate()
            .unwrap();
            generate_soup(&SoupConfig {
                regions: n,
                ..SoupConfig::default()
            })
            .instance
            .validate()
            .unwrap();
            for shape in [
                DegenerateShape::MegaFragment,
                DegenerateShape::AllSingletons,
                DegenerateShape::SigmaDesert,
            ] {
                generate_degenerate(shape, n, 1)
                    .instance
                    .validate()
                    .unwrap();
            }
        }
    }
}
