//! # fragalign-sim
//!
//! Synthetic fragmented-genome simulator.
//!
//! The paper's motivating data — partially sequenced genome pairs with
//! conserved regions aligned across species ([8] in the paper) — is
//! proprietary-era sequencing output we do not have. This substrate
//! generates the closest synthetic equivalent with *known ground
//! truth* (DESIGN.md §2, substitution 1):
//!
//! 1. draw an ancestral sequence of conserved regions;
//! 2. give each species a copy, applying evolutionary noise: region
//!    loss, local shuffles, segment reversals, spurious similarities;
//! 3. fragment each copy into contigs shotgun-style and randomly
//!    reorder/flip the contigs (the assembly's arbitrary output order);
//! 4. emit the region score table `σ` — either from an abstract score
//!    model, or (end-to-end mode) by generating nucleotide sequences
//!    per region and aligning them with the Smith–Waterman substrate.
//!
//! The recorded [`GroundTruth`] supports the recovery experiment
//! (EXPERIMENTS.md T7): how many order/orient relationships the CSR
//! solvers reconstruct as noise rises.

pub mod adversarial;
pub mod generate;
pub mod metrics;

pub use adversarial::{
    generate_degenerate, generate_soup, generate_torn, soup_batch, torn_batch, DegenerateShape,
    SoupConfig, TornConfig,
};
pub use generate::{gen_batch, generate, DnaMode, GroundTruth, SimConfig, SimInstance};
pub use metrics::{evaluate_recovery, RecoveryReport};
