//! Recovery metrics: how much of the ground truth a solution
//! reconstructs (EXPERIMENTS.md T7).

use crate::generate::SimInstance;
use fragalign_align::DpAligner;
use fragalign_model::{check_consistency, FragId, LayoutBuilder, MatchSet, RegionId, Species};
use std::collections::HashMap;

/// Recovery quality of a solution against the simulator ground truth.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// True homologous pairs whose regions are covered by a common
    /// match, over all true pairs present in the instance.
    pub pair_recall: f64,
    /// Pairwise relative-order accuracy of fragments the solution
    /// relates (same island), best over the island's two global
    /// orientations.
    pub order_accuracy: f64,
    /// Pairwise relative-orientation accuracy of fragments the
    /// solution relates.
    pub orient_accuracy: f64,
    /// Number of islands in the solution.
    pub islands: usize,
    /// Number of fragment pairs compared for order/orientation.
    pub compared_pairs: usize,
}

/// Evaluate a solved match set against the generation record.
pub fn evaluate_recovery(sim: &SimInstance, solution: &MatchSet) -> RecoveryReport {
    let inst = &sim.instance;
    let report = check_consistency(inst, solution).expect("solution must be consistent");

    // --- pair recall --------------------------------------------------
    let mut region_pos: HashMap<RegionId, (FragId, usize)> = HashMap::new();
    for f in inst.all_frag_ids() {
        for (i, sym) in inst.fragment(f).regions.iter().enumerate() {
            region_pos.insert(sym.id, (f, i));
        }
    }
    let mut hit = 0usize;
    let mut total = 0usize;
    for &(a, b) in &sim.truth.true_pairs {
        let (Some(&(fa, ia)), Some(&(fb, ib))) = (region_pos.get(&a.id), region_pos.get(&b.id))
        else {
            continue; // region lost during generation
        };
        total += 1;
        let covered = solution.iter().any(|(_, m)| {
            m.h.frag == fa
                && m.m.frag == fb
                && m.h.lo <= ia
                && ia < m.h.hi
                && m.m.lo <= ib
                && ib < m.m.hi
        });
        if covered {
            hit += 1;
        }
    }
    let pair_recall = if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    };

    // --- order / orientation -------------------------------------------
    // The layout gives each fragment a span position and a flip.
    let pair = LayoutBuilder::new(inst, &DpAligner)
        .layout(solution)
        .expect("consistent");
    let mut span: HashMap<FragId, (usize, bool)> = HashMap::new();
    for p in pair.h_row.placed.iter().chain(pair.m_row.placed.iter()) {
        span.insert(p.frag, (p.span_start, p.reversed));
    }
    let truth_of = |f: FragId| -> (usize, bool) {
        match f.species {
            Species::H => sim.truth.h_layout[f.index],
            Species::M => sim.truth.m_layout[f.index],
        }
    };

    let mut order_ok = 0usize;
    let mut orient_ok = 0usize;
    let mut compared = 0usize;
    for island in &report.islands {
        // Same-species fragment pairs within the island.
        let mut best_order_ok = 0usize;
        let mut island_pairs = 0usize;
        let mut island_orient_ok = 0usize;
        for flip_island in [false, true] {
            let mut ok = 0usize;
            let mut pairs_cnt = 0usize;
            let mut orient_cnt = 0usize;
            for (i, &f1) in island.fragments.iter().enumerate() {
                for &f2 in &island.fragments[i + 1..] {
                    if f1.species != f2.species {
                        continue;
                    }
                    let (p1, o1) = span[&f1];
                    let (p2, o2) = span[&f2];
                    let (t1, to1) = truth_of(f1);
                    let (t2, to2) = truth_of(f2);
                    if t1 == t2 {
                        continue; // no defined true order
                    }
                    pairs_cnt += 1;
                    let predicted_before = (p1 < p2) ^ flip_island;
                    if predicted_before == (t1 < t2) {
                        ok += 1;
                    }
                    // Relative orientation is island-flip invariant;
                    // count it once (on the first flip pass).
                    if !flip_island && (o1 ^ o2) == (to1 ^ to2) {
                        orient_cnt += 1;
                    }
                }
            }
            best_order_ok = best_order_ok.max(ok);
            if !flip_island {
                island_pairs = pairs_cnt;
                island_orient_ok = orient_cnt;
            }
        }
        order_ok += best_order_ok;
        orient_ok += island_orient_ok;
        compared += island_pairs;
    }

    RecoveryReport {
        pair_recall,
        order_accuracy: if compared == 0 {
            1.0
        } else {
            order_ok as f64 / compared as f64
        },
        orient_accuracy: if compared == 0 {
            1.0
        } else {
            orient_ok as f64 / compared as f64
        },
        islands: report.islands.len(),
        compared_pairs: compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, SimConfig};
    use fragalign_core::csr_improve;

    #[test]
    fn clean_instance_recovers_well() {
        let sim = generate(&SimConfig {
            regions: 12,
            h_frags: 2,
            m_frags: 2,
            loss_rate: 0.0,
            shuffles: 0,
            spurious: 0,
            score_jitter: 0,
            seed: 3,
            ..SimConfig::default()
        });
        let sol = csr_improve(&sim.instance, false);
        let rep = evaluate_recovery(&sim, &sol.matches);
        assert!(rep.pair_recall >= 0.8, "recall {}", rep.pair_recall);
        assert!(rep.order_accuracy >= 0.5, "order {}", rep.order_accuracy);
    }

    #[test]
    fn empty_solution_scores_zero_recall() {
        let sim = generate(&SimConfig {
            seed: 9,
            ..SimConfig::default()
        });
        let rep = evaluate_recovery(&sim, &fragalign_model::MatchSet::new());
        assert_eq!(rep.pair_recall, 0.0);
        assert_eq!(rep.islands, 0);
        assert_eq!(rep.compared_pairs, 0);
    }
}
