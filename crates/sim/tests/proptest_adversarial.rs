//! Generator-validity properties for the adversarial channels: every
//! torn / soup / degenerate instance must be a *valid* CSR instance
//! (solvers may reject shapes via `supports`, never crash on invalid
//! data), survive a serde round trip bit-identically, and regenerate
//! bit-identically from its seed. The batch builders must be
//! prefix-stable, and the batch pipeline must return bit-identical
//! results at any thread width.

use fragalign_core::{solve_batch, BatchOptions};
use fragalign_sim::{
    evaluate_recovery, gen_batch, generate_degenerate, generate_soup, generate_torn, soup_batch,
    torn_batch, DegenerateShape, SimConfig, SimInstance, SoupConfig, TornConfig,
};
use proptest::prelude::*;

/// Canonical JSON of an instance — the comparison key for
/// "bit-identical" below (Instance carries no `PartialEq`; the wire
/// form is the contract anyway).
fn canon(sim: &SimInstance) -> String {
    serde_json::to_string(&sim.instance).expect("instance serialises")
}

fn torn_cfg(regions: usize, tear: f64, drop: f64, dup: f64, seed: u64) -> TornConfig {
    TornConfig {
        regions,
        tear_rate: tear,
        drop_rate: drop,
        dup_rate: dup,
        seed,
        ..TornConfig::default()
    }
}

fn soup_cfg(regions: usize, read_len: usize, coverage: f64, sub: f64, seed: u64) -> SoupConfig {
    SoupConfig {
        regions,
        read_len,
        coverage,
        sub_rate: sub,
        seed,
        ..SoupConfig::default()
    }
}

proptest! {
    /// Torn instances validate, round-trip through JSON, regenerate
    /// deterministically, and their ground truth drives
    /// `evaluate_recovery` without panicking.
    #[test]
    fn torn_instances_are_valid(
        seed in 0u64..10_000,
        regions in 1usize..40,
        tear in 0.0f64..1.0,
        drop in 0.0f64..0.9,
        dup in 0.0f64..0.9,
    ) {
        let cfg = torn_cfg(regions, tear, drop, dup, seed);
        let sim = generate_torn(&cfg);
        prop_assert!(sim.instance.validate().is_ok(), "invalid torn instance");
        prop_assert_eq!(canon(&sim), canon(&generate_torn(&cfg)), "torn not deterministic");

        let mut back: fragalign_model::Instance =
            serde_json::from_str(&canon(&sim)).expect("round trip parses");
        back.alphabet.rebuild_index();
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(canon(&sim), serde_json::to_string(&back).unwrap());

        // The ground-truth hook accepts any consistent solution.
        let report = evaluate_recovery(&sim, &fragalign_model::MatchSet::new());
        prop_assert!(report.pair_recall >= 0.0 && report.pair_recall <= 1.0);
    }

    /// Soup instances validate, round-trip, and regenerate
    /// deterministically.
    #[test]
    fn soup_instances_are_valid(
        seed in 0u64..10_000,
        regions in 1usize..32,
        read_len in 1usize..8,
        coverage in 0.5f64..4.0,
        sub in 0.0f64..0.8,
    ) {
        let cfg = soup_cfg(regions, read_len, coverage, sub, seed);
        let sim = generate_soup(&cfg);
        prop_assert!(sim.instance.validate().is_ok(), "invalid soup instance");
        prop_assert_eq!(canon(&sim), canon(&generate_soup(&cfg)), "soup not deterministic");

        let mut back: fragalign_model::Instance =
            serde_json::from_str(&canon(&sim)).expect("round trip parses");
        back.alphabet.rebuild_index();
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(canon(&sim), serde_json::to_string(&back).unwrap());
    }

    /// Every degenerate shape validates at every region count,
    /// including the 1–3 region corner cases.
    #[test]
    fn degenerate_shapes_are_valid(seed in 0u64..10_000, regions in 1usize..48) {
        for shape in [
            DegenerateShape::MegaFragment,
            DegenerateShape::AllSingletons,
            DegenerateShape::SigmaDesert,
        ] {
            let sim = generate_degenerate(shape, regions, seed);
            prop_assert!(sim.instance.validate().is_ok(), "invalid {shape:?} instance");
            prop_assert_eq!(
                canon(&sim),
                canon(&generate_degenerate(shape, regions, seed)),
                "degenerate {:?} not deterministic", shape
            );
        }
    }

    /// Batch builders are prefix-stable: growing a batch never
    /// changes the instances already generated. (This pins the
    /// `seed + index` derivation — a regression here silently
    /// invalidates every seed-addressed experiment grid.)
    #[test]
    fn batches_are_prefix_stable(
        seed in 0u64..10_000,
        prefix in 1usize..5,
        extra in 1usize..4,
    ) {
        let torn = torn_cfg(12, 0.4, 0.2, 0.1, seed);
        let long = torn_batch(&torn, prefix + extra);
        for (a, b) in torn_batch(&torn, prefix).iter().zip(&long) {
            prop_assert_eq!(canon(a), canon(b), "torn batch prefix drifted");
        }
        let soup = soup_cfg(10, 3, 1.5, 0.2, seed);
        let long = soup_batch(&soup, prefix + extra);
        for (a, b) in soup_batch(&soup, prefix).iter().zip(&long) {
            prop_assert_eq!(canon(a), canon(b), "soup batch prefix drifted");
        }
        let clean = SimConfig { regions: 8, seed, ..SimConfig::default() };
        let long = gen_batch(&clean, prefix + extra);
        for (a, b) in gen_batch(&clean, prefix).iter().zip(&long) {
            prop_assert_eq!(canon(a), canon(b), "clean batch prefix drifted");
        }
    }
}

proptest! {
    // Each case solves a batch three times; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The batch pipeline returns bit-identical solutions for
    /// adversarial instances at 1, 2 and 8 threads.
    #[test]
    fn adversarial_batches_are_thread_invariant(seed in 0u64..1_000) {
        let mut instances: Vec<fragalign_model::Instance> = Vec::new();
        instances.extend(torn_batch(&torn_cfg(10, 0.4, 0.2, 0.1, seed), 2).into_iter().map(|s| s.instance));
        instances.extend(soup_batch(&soup_cfg(8, 3, 1.5, 0.2, seed), 2).into_iter().map(|s| s.instance));
        let solve_at = |threads: usize| {
            let mut opts = BatchOptions::new("auto");
            opts.engine.threads = threads;
            solve_batch(&instances, &opts)
                .expect("batch solves")
                .into_iter()
                .map(|sol| (sol.score, sol.matches))
                .collect::<Vec<_>>()
        };
        let one = solve_at(1);
        prop_assert_eq!(&one, &solve_at(2), "2-thread batch diverged");
        prop_assert_eq!(&one, &solve_at(8), "8-thread batch diverged");
    }
}
