//! Lemma 9: a 2-approximation for Border CSR via maximum-weight
//! bipartite matching.
//!
//! The solution graph of a Border CSR optimum has degree ≤ 2, so its
//! edges split into two matchings; the heavier half is at least 50% of
//! the optimum, and within a matching every fragment participates in
//! at most one match, so all sites can be taken full. Hence: match `H`
//! fragments against `M` fragments with edge weight `MS(h, m)` (full
//! sites) and keep the positive pairs.

use fragalign_align::ScoreOracle;
use fragalign_matching::{max_weight_matching, WeightMatrix};
use fragalign_model::{FragId, Instance, Match, MatchSet, Site};

/// The Lemma 9 algorithm. Returns full–full matches only.
pub fn border_matching_2approx(inst: &Instance) -> MatchSet {
    let oracle = ScoreOracle::new(inst);
    border_matching_2approx_with_oracle(&oracle)
}

/// [`border_matching_2approx`] with a caller-provided oracle: the
/// full-fragment `MS` weights fill through the oracle's pooled
/// workspaces (and are memoised for the second pass). Bit-identical to
/// the free-function route — the oracle scores through the same
/// kernels.
pub fn border_matching_2approx_with_oracle(oracle: &ScoreOracle<'_>) -> MatchSet {
    let inst = oracle.instance();
    let mut w = WeightMatrix::new(inst.h.len(), inst.m.len());
    for (i, hf) in inst.h.iter().enumerate() {
        for (j, mf) in inst.m.iter().enumerate() {
            let (score, _) = oracle.ms(
                Site::full(FragId::h(i), hf.len()),
                Site::full(FragId::m(j), mf.len()),
            );
            w.set(i, j, score);
        }
    }
    let matching = max_weight_matching(&w);
    let mut out = MatchSet::new();
    for (i, j, score) in matching.pairs {
        let h = Site::full(FragId::h(i), inst.h[i].len());
        let m = Site::full(FragId::m(j), inst.m[j].len());
        let (ms, orient) = oracle.ms(h, m);
        debug_assert_eq!(ms, score);
        out.push(Match::new(h, m, orient, score));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::check_consistency;
    use fragalign_model::instance::paper_example;

    #[test]
    fn matching_solution_is_consistent() {
        let inst = paper_example();
        let sol = border_matching_2approx(&inst);
        check_consistency(&inst, &sol).unwrap();
        // Best pairing: h1–m1 (σ(a,s)+? aligned in order: a–s=4 plus
        // b–t=0 → 4; h1–m2 would give c–u=5... matching optimises
        // globally.
        assert!(sol.total_score() >= 7, "got {}", sol.total_score());
        // Every fragment in at most one match.
        assert!(sol.len() <= 2);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::default();
        let sol = border_matching_2approx(&inst);
        assert_eq!(sol.len(), 0);
    }
}
