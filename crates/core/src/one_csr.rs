//! 1-CSR: CSR with a single M fragment, solved through the interval
//! selection problem (§3.4).
//!
//! Each H fragment is involved in at most one match, so every match is
//! `(h_k, m(i, j))` with the H site full. The reduction sets, for each
//! fragment `h_i` and interval `[d, e)` of the single `m`, the profit
//! `p(i, [d, e]) = MS(h_i, m(d, e))`; a ratio-2 ISP algorithm then
//! yields a ratio-2 1-CSR algorithm.

use fragalign_align::ScoreOracle;
use fragalign_isp::{solve_exact as isp_exact, solve_tpa, Interval, IspInstance, Selection};
use fragalign_model::{FragId, Instance, Match, MatchSet, Site, Species};

/// Build the ISP instance of the §3.4 reduction. Tags index into the
/// returned interval list.
fn build_isp(oracle: &ScoreOracle<'_>) -> (IspInstance, Vec<(FragId, usize, usize)>) {
    let inst = oracle.instance();
    assert_eq!(inst.m.len(), 1, "1-CSR needs exactly one M fragment");
    let m = FragId::m(0);
    let n = inst.frag_len(m);
    let jobs: Vec<FragId> = inst.frag_ids(Species::H).collect();
    let mut isp = IspInstance::new(jobs.len());
    let mut tags = Vec::new();
    for (ji, &h) in jobs.iter().enumerate() {
        let table = oracle.interval_table(h, m);
        for d in 0..n {
            for e in (d + 1)..=n {
                let (score, _) = table.get(d, e);
                if score > 0 {
                    let tag = tags.len();
                    tags.push((h, d, e));
                    isp.push(ji, Interval::new(d as i64, e as i64), score, tag);
                }
            }
        }
    }
    (isp, tags)
}

fn selection_to_matches(
    oracle: &ScoreOracle<'_>,
    tags: &[(FragId, usize, usize)],
    sel: &Selection,
) -> MatchSet {
    let inst = oracle.instance();
    let m = FragId::m(0);
    let mut out = MatchSet::new();
    for c in &sel.chosen {
        let (h, d, e) = tags[c.tag];
        let (score, orient) = oracle.ms_full_vs_interval(h, m, d, e);
        debug_assert_eq!(score, c.profit);
        out.push(Match::new(
            Site::full(h, inst.frag_len(h)),
            Site::new(m, d, e),
            orient,
            score,
        ));
    }
    out
}

/// Solve a 1-CSR instance with TPA (ratio 2). Panics unless the
/// instance has exactly one M fragment.
pub fn solve_one_csr(inst: &Instance) -> MatchSet {
    let oracle = ScoreOracle::new(inst);
    solve_one_csr_with_oracle(&oracle)
}

/// [`solve_one_csr`] with a caller-provided oracle (shares interval
/// tables and pooled workspaces with the caller; bit-identical
/// results). Panics unless the instance has exactly one M fragment.
pub fn solve_one_csr_with_oracle(oracle: &ScoreOracle<'_>) -> MatchSet {
    let (isp, tags) = build_isp(oracle);
    selection_to_matches(oracle, &tags, &solve_tpa(&isp))
}

/// Exact 1-CSR through exhaustive ISP (small instances only: the
/// candidate count is quadratic in `|m|` times `|H|`).
pub fn solve_one_csr_exact(inst: &Instance) -> MatchSet {
    let oracle = ScoreOracle::new(inst);
    let (isp, tags) = build_isp(&oracle);
    selection_to_matches(&oracle, &tags, &isp_exact(&isp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::check_consistency;
    use fragalign_model::instance::InstanceBuilder;

    fn one_m_instance() -> Instance {
        let mut b = InstanceBuilder::new();
        b.h_frag("h1", &["a", "b"]);
        b.h_frag("h2", &["c"]);
        b.h_frag("h3", &["d"]);
        b.m_frag("m", &["p", "q", "r", "s"]);
        b.score("a", "p", 3);
        b.score("b", "q", 4);
        b.score("c", "r", 5);
        b.score("d", "qR", 6); // reversed-only alignment
        b.build()
    }

    #[test]
    fn tpa_solution_is_consistent_and_good() {
        let inst = one_m_instance();
        let sol = solve_one_csr(&inst);
        check_consistency(&inst, &sol).unwrap();
        // h1 → [p,q] (7), h2 → [r] (5) are disjoint: at least 12.
        assert!(sol.total_score() >= 12, "got {}", sol.total_score());
    }

    #[test]
    fn exact_dominates_tpa_within_ratio_two() {
        let inst = one_m_instance();
        let tpa = solve_one_csr(&inst).total_score();
        let exact = solve_one_csr_exact(&inst).total_score();
        assert!(exact >= tpa);
        assert!(2 * tpa >= exact);
        // The true optimum here: h1→[p,q]=7, h2→[r]=5, total 12; using
        // h3→q (6, reversed) forfeits b–q (4) and forces h1→[p]=3:
        // 3+6+5=14. Exact finds 14.
        assert_eq!(exact, 14);
    }

    #[test]
    fn reversed_orientation_recorded() {
        let inst = one_m_instance();
        let sol = solve_one_csr_exact(&inst);
        let has_reversed = sol
            .iter()
            .any(|(_, m)| m.orient == fragalign_model::Orient::Reversed);
        assert!(has_reversed, "d–q^R match should be selected reversed");
    }

    #[test]
    #[should_panic(expected = "exactly one M fragment")]
    fn multi_m_rejected() {
        let inst = fragalign_model::instance::paper_example();
        solve_one_csr(&inst);
    }
}
