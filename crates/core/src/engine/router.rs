//! The shape → solver router: cheap instance features, a transparent
//! decision list, and the `auto` meta-solver that delegates to the
//! routed choice.
//!
//! The portfolio races blind — every member burns CPU on every
//! instance. The router replaces that with a table fitted offline by
//! `exp_router` (crates/bench), which sweeps every registered solver
//! over the clean + adversarial grid (`BENCH_router.json`) and picks,
//! per shape cell, the best-scoring solver holding a ≥ 0.9 score
//! ratio against the certified reference (`exact` where its limits
//! admit the cell, the best-over-all-solvers score elsewhere) among
//! those inside the cell's wall window — `max(1.5x the fastest
//! qualifying solver, 5 ms per instance)`. Below the absolute budget
//! a solve is operationally free, so quality decides there and
//! microsecond jitter on tiny instances never flips the table; exact
//! score ties resolve to the earlier registry entry (stronger
//! guarantees beat equal measurements).
//!
//! ## Features ([`InstanceFeatures`])
//!
//! All O(fragments + σ entries), no DP:
//!
//! * `h_frags`, `m_frags` — fragment counts per species;
//! * `h_regions`, `m_regions` — total region counts per species;
//! * `max_frag_len` — the longest fragment either species carries;
//! * `sigma_entries` — explicit σ entries;
//! * `sigma_density` — entries over `h_regions · m_regions`;
//! * `mass_skew` — max positive σ entry over the mean positive entry
//!   (1.0 when σ is empty): near 1 means uniform mass, large means a
//!   few pairs dominate the score.
//!
//! ## Rules ([`RouterRule`])
//!
//! An ordered decision list: the first rule whose thresholds all hold
//! *and* whose solver [`Solver::supports`] the instance wins;
//! otherwise the fallback (`csr`) runs. The shipped table is
//! [`Router::default`]; `exp_router` re-derives it from data and
//! reports per-cell agreement, so drift between the shipped table and
//! fresh measurements is visible in `BENCH_router.json`.

use super::{EngineOptions, SolveCtx, SolveOutcome, Solver, SolverRegistry};
use fragalign_model::Instance;
use serde::Serialize;

/// Cheap shape features of one instance (see the module docs).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct InstanceFeatures {
    /// H fragment count.
    pub h_frags: usize,
    /// M fragment count.
    pub m_frags: usize,
    /// Total H regions.
    pub h_regions: usize,
    /// Total M regions.
    pub m_regions: usize,
    /// Longest fragment in either species.
    pub max_frag_len: usize,
    /// Explicit σ entries.
    pub sigma_entries: usize,
    /// `sigma_entries / (h_regions · m_regions)`; 0 when a side is
    /// empty.
    pub sigma_density: f64,
    /// Max positive σ entry over the mean positive entry (1.0 when no
    /// positive entries exist).
    pub mass_skew: f64,
}

impl InstanceFeatures {
    /// Extract features from `inst`.
    pub fn of(inst: &Instance) -> Self {
        let h_regions: usize = inst.h.iter().map(|f| f.len()).sum();
        let m_regions: usize = inst.m.iter().map(|f| f.len()).sum();
        let max_frag_len = inst
            .h
            .iter()
            .chain(inst.m.iter())
            .map(|f| f.len())
            .max()
            .unwrap_or(0);
        let sigma_entries = inst.sigma.len();
        let cells = (h_regions * m_regions) as f64;
        let sigma_density = if cells > 0.0 {
            sigma_entries as f64 / cells
        } else {
            0.0
        };
        let mut max_pos = 0i64;
        let mut sum_pos = 0i64;
        let mut n_pos = 0i64;
        for (_, _, _, s) in inst.sigma.iter() {
            if s > 0 {
                max_pos = max_pos.max(s);
                sum_pos += s;
                n_pos += 1;
            }
        }
        let mass_skew = if n_pos > 0 {
            max_pos as f64 * n_pos as f64 / sum_pos as f64
        } else {
            1.0
        };
        InstanceFeatures {
            h_frags: inst.h.len(),
            m_frags: inst.m.len(),
            h_regions,
            m_regions,
            max_frag_len,
            sigma_entries,
            sigma_density,
            mass_skew,
        }
    }

    /// Total regions across both species (the router's main size
    /// axis).
    pub fn total_regions(&self) -> usize {
        self.h_regions + self.m_regions
    }
}

/// One threshold rule of the decision list. Every set bound must hold
/// for the rule to match; unset bounds are unconstrained.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RouterRule {
    /// Human-readable shape label (shows up in `BENCH_router.json`).
    pub label: &'static str,
    /// Registered solver this rule routes to.
    pub solver: &'static str,
    /// Match only instances with exactly this many M fragments.
    pub m_frags_eq: Option<usize>,
    /// Match only instances with at least this many M fragments.
    pub min_m_frags: Option<usize>,
    /// Match only instances with at most this many total regions.
    pub max_total_regions: Option<usize>,
    /// Match only instances with at least this many total regions.
    pub min_total_regions: Option<usize>,
    /// Match only instances with at most this many σ entries.
    pub max_sigma_entries: Option<usize>,
}

impl RouterRule {
    /// A rule with no bounds set (matches everything) routing to
    /// `solver`.
    pub const fn any(label: &'static str, solver: &'static str) -> Self {
        RouterRule {
            label,
            solver,
            m_frags_eq: None,
            min_m_frags: None,
            max_total_regions: None,
            min_total_regions: None,
            max_sigma_entries: None,
        }
    }

    /// Whether every set bound holds for `f`.
    pub fn matches(&self, f: &InstanceFeatures) -> bool {
        let total = f.total_regions();
        self.m_frags_eq.is_none_or(|v| f.m_frags == v)
            && self.min_m_frags.is_none_or(|v| f.m_frags >= v)
            && self.max_total_regions.is_none_or(|v| total <= v)
            && self.min_total_regions.is_none_or(|v| total >= v)
            && self.max_sigma_entries.is_none_or(|v| f.sigma_entries <= v)
    }
}

/// The shape → solver decision list (see the module docs). The first
/// matching rule whose solver supports the instance wins; the
/// fallback runs otherwise.
#[derive(Clone, Debug)]
pub struct Router {
    rules: Vec<RouterRule>,
    fallback: &'static str,
}

impl Router {
    /// A router over an explicit rule list.
    pub fn new(rules: Vec<RouterRule>, fallback: &'static str) -> Self {
        Router { rules, fallback }
    }

    /// The rule list, in match order.
    pub fn rules(&self) -> &[RouterRule] {
        &self.rules
    }

    /// The fallback solver name.
    pub fn fallback(&self) -> &'static str {
        self.fallback
    }

    /// Route by features alone, ignoring solver applicability (used
    /// by `exp_router` to report the table's raw choice per cell).
    pub fn route_features(&self, f: &InstanceFeatures) -> &'static str {
        self.rules
            .iter()
            .find(|r| r.matches(f))
            .map(|r| r.solver)
            .unwrap_or(self.fallback)
    }

    /// Route `inst`: the first matching rule whose solver supports
    /// the instance under `opts`; the fallback otherwise. The
    /// fallback (`csr` in the shipped table) supports every instance,
    /// so routing always succeeds.
    pub fn route(&self, inst: &Instance, opts: &EngineOptions) -> &'static str {
        self.route_explain(inst, opts).0
    }

    /// [`Router::route`] plus the evidence: the matched rule's label
    /// (`"fallback"` when no rule fired) and the features the decision
    /// was made on. The trace layer emits these so a routed solve
    /// shows *why* it was routed, not just where.
    pub fn route_explain(
        &self,
        inst: &Instance,
        opts: &EngineOptions,
    ) -> (&'static str, &'static str, InstanceFeatures) {
        let f = InstanceFeatures::of(inst);
        let reg = SolverRegistry::global();
        for rule in &self.rules {
            if !rule.matches(&f) {
                continue;
            }
            if let Ok(spec) = reg.spec(rule.solver) {
                if spec.build().supports(inst, opts).is_ok() {
                    return (rule.solver, rule.label, f);
                }
            }
        }
        (self.fallback, "fallback", f)
    }

    /// The cheap tier an overloaded server degrades `f` to: `chain`
    /// when there is sparse σ structure to anchor on (the
    /// anchor-chaining tier is near-linear and scores far above
    /// `greedy` once instances carry enough regions to chain), and
    /// `greedy` otherwise — both support every instance, so the pick
    /// never needs a fallback. This is a policy hook for the serving
    /// layer's admission control, deliberately next to the routing
    /// table so the "which solver under which conditions" knowledge
    /// stays in one file.
    pub fn degraded_pick(&self, f: &InstanceFeatures) -> &'static str {
        if f.sigma_entries > 0 && f.total_regions() >= 64 {
            "chain"
        } else {
            "greedy"
        }
    }
}

impl Default for Router {
    /// The learned table, fitted by `exp_router` over the clean +
    /// adversarial grid (see `BENCH_router.json` for the per-cell
    /// measurements behind each rule):
    ///
    /// 1. σ deserts (≤ 3 entries) route to `full`: there is almost
    ///    nothing to score, so the lighter improvement variant holds
    ///    0.92 of the optimum at half `csr`'s wall — which falls
    ///    outside the window on these cells;
    /// 2. single-M instances past trivial size route to `four`: on
    ///    the mega-fragment and large single-M cells it ties the best
    ///    sweep score at a tenth of `csr`'s wall (small single-M
    ///    instances fall through to the fallback — quality is free
    ///    there);
    /// 3. genome-scale instances route to `full`: `four`'s ratio
    ///    collapses to 0.81 at this size, while `full` holds 1.0 at
    ///    roughly half `csr`'s wall;
    /// 4. mid-size shredded instances (read-soup, heavily torn)
    ///    route to `four`: ≥ 0.97 of the best sweep score at 3–15x
    ///    less wall than the improvement family;
    /// 5. everything else — all small dense shapes — falls back to
    ///    `csr`: every solve is inside the free window there, so the
    ///    strongest-guarantee solver wins on quality.
    fn default() -> Self {
        Router::new(
            vec![
                RouterRule {
                    max_sigma_entries: Some(3),
                    ..RouterRule::any("sigma-desert", "full")
                },
                RouterRule {
                    m_frags_eq: Some(1),
                    min_total_regions: Some(40),
                    ..RouterRule::any("single-m-heavy", "four")
                },
                RouterRule {
                    min_total_regions: Some(150),
                    ..RouterRule::any("genome-scale", "full")
                },
                RouterRule {
                    min_total_regions: Some(55),
                    ..RouterRule::any("shredded", "four")
                },
            ],
            "csr",
        )
    }
}

/// The `auto` meta-solver: routes through [`Router::default`] and
/// delegates, stamping [`SolveOutcome::routed_by`] with the choice so
/// reports show which solver actually ran.
pub struct Auto {
    router: Router,
}

impl Auto {
    /// An `auto` solver over the shipped table.
    pub fn new() -> Self {
        Auto {
            router: Router::default(),
        }
    }

    /// The table this instance routes with.
    pub fn router(&self) -> &Router {
        &self.router
    }
}

impl Default for Auto {
    fn default() -> Self {
        Auto::new()
    }
}

impl Solver for Auto {
    fn solve(&self, inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome {
        let (choice, rule, feats) = self.router.route_explain(inst, &ctx.opts);
        // Two markers: the features the decision saw, and the matched
        // rule → solver. `args` carry the router's main size axes.
        ctx.trace.instant(
            "route_features",
            rule,
            feats.total_regions() as i64,
            feats.sigma_entries as i64,
        );
        ctx.trace.instant("routed", choice, 0, 0);
        let spec = SolverRegistry::global()
            .spec(choice)
            .expect("router tables only name registered solvers");
        // Delegate through the same context: the oracle keeps its
        // memoised scores and pooled workspaces, cancellation
        // propagates, and the report's counters cover the delegate's
        // work.
        let mut out = spec.build().solve(inst, ctx);
        out.routed_by = Some(choice);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::instance::paper_example;

    #[test]
    fn features_of_the_paper_example() {
        let f = InstanceFeatures::of(&paper_example());
        assert_eq!(f.h_frags, 2);
        assert_eq!(f.m_frags, 2);
        assert_eq!(f.total_regions(), f.h_regions + f.m_regions);
        assert!(f.sigma_entries > 0);
        assert!(f.sigma_density > 0.0);
        assert!(f.mass_skew >= 1.0);
    }

    #[test]
    fn default_table_routes_the_demo_to_csr() {
        // Small dense instances keep the quality solver; the pinned
        // portfolio winner in tests/engine_registry.rs relies on it.
        let inst = paper_example();
        let router = Router::default();
        assert_eq!(router.route(&inst, &EngineOptions::default()), "csr");
    }

    #[test]
    fn unsupported_rules_fall_through() {
        // A rule naming a solver that rejects the instance must not
        // capture it: the single-m rule only fires on single-M
        // instances by its own bound, but a synthetic table routing
        // everything to one-csr still falls through to the fallback
        // on a multi-M instance.
        let router = Router::new(vec![RouterRule::any("all", "one-csr")], "csr");
        let inst = paper_example(); // two M fragments
        assert_eq!(router.route(&inst, &EngineOptions::default()), "csr");
        // But route_features reports the raw table choice.
        assert_eq!(
            router.route_features(&InstanceFeatures::of(&inst)),
            "one-csr"
        );
    }

    #[test]
    fn degraded_pick_prefers_chain_on_big_sparse_instances() {
        let router = Router::default();
        let mut f = InstanceFeatures {
            h_frags: 6,
            m_frags: 6,
            h_regions: 60,
            m_regions: 60,
            max_frag_len: 12,
            sigma_entries: 200,
            sigma_density: 0.05,
            mass_skew: 1.5,
        };
        assert_eq!(router.degraded_pick(&f), "chain");
        // No σ entries: nothing to anchor a chain on.
        f.sigma_entries = 0;
        assert_eq!(router.degraded_pick(&f), "greedy");
        // Too small to be worth chaining.
        f.sigma_entries = 10;
        f.h_regions = 20;
        f.m_regions = 20;
        assert_eq!(router.degraded_pick(&f), "greedy");
        // Both tiers must stay registered — the admission layer
        // depends on them accepting every instance.
        for tier in ["chain", "greedy"] {
            assert!(SolverRegistry::global().spec(tier).is_ok());
        }
    }

    #[test]
    fn rule_bounds_all_apply() {
        let f = InstanceFeatures {
            h_frags: 3,
            m_frags: 5,
            h_regions: 30,
            m_regions: 28,
            max_frag_len: 12,
            sigma_entries: 25,
            sigma_density: 0.03,
            mass_skew: 1.2,
        };
        let mut rule = RouterRule::any("t", "csr");
        assert!(rule.matches(&f));
        rule.min_m_frags = Some(6);
        assert!(!rule.matches(&f));
        rule.min_m_frags = Some(5);
        assert!(rule.matches(&f));
        rule.max_total_regions = Some(57);
        assert!(!rule.matches(&f));
        rule.max_total_regions = Some(58);
        rule.max_sigma_entries = Some(24);
        assert!(!rule.matches(&f));
    }
}
