//! [`Solver`] adapters for every algorithm the paper presents. Each
//! adapter routes through the `_with_oracle` entry point of its
//! algorithm, so the context's pooled workspaces (and memoised scores)
//! serve the whole run — and each is bit-identical to the legacy free
//! function it wraps (`tests/engine_registry.rs` proves it).

use super::{EngineOptions, SolveCtx, SolveOutcome, Solver};
use crate::{ImproveConfig, MethodSet};
use fragalign_model::{Instance, MatchSet};

/// A pre-empted one-shot run: the token tripped before the solver
/// started, so the outcome is the empty (consistent) match set flagged
/// as cancelled. One-shot solvers have no round structure to interrupt
/// mid-flight; they are entry-checked only (the improvement family and
/// the portfolio cancel mid-run).
fn preempted() -> SolveOutcome {
    SolveOutcome {
        cancelled: true,
        ..SolveOutcome::from_matches(MatchSet::new())
    }
}

/// The §4 iterative-improvement family; the method set picks the
/// variant (Full_Improve, Border_Improve, CSR_Improve).
pub struct Improve(pub MethodSet);

impl Solver for Improve {
    fn solve(&self, _inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome {
        let result = crate::improve::improve_with_oracle_ctl(
            &ctx.oracle,
            ImproveConfig {
                methods: self.0,
                scaling: ctx.opts.scaling,
                ..Default::default()
            },
            MatchSet::new(),
            &ctx.cancel,
        );
        SolveOutcome {
            matches: result.matches,
            rounds: result.rounds,
            attempts: result.attempts_evaluated,
            winner: None,
            cancelled: result.cancelled,
            racers: Vec::new(),
            routed_by: None,
        }
    }
}

/// The Corollary 1 factor-4 algorithm.
pub struct FourApprox;

impl Solver for FourApprox {
    fn solve(&self, _inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome {
        if ctx.cancel.is_cancelled() {
            return preempted();
        }
        let _sp = ctx.trace.span_labeled("phase", "factor4");
        SolveOutcome::from_matches(crate::solve_four_approx_with_oracle(&ctx.oracle))
    }
}

/// The greedy baseline the introduction warns about.
pub struct Greedy;

impl Solver for Greedy {
    fn solve(&self, _inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome {
        if ctx.cancel.is_cancelled() {
            return preempted();
        }
        let _sp = ctx.trace.span_labeled("phase", "greedy");
        SolveOutcome::from_matches(crate::solve_greedy_with_oracle(&ctx.oracle))
    }
}

/// The Lemma 9 Border-CSR 2-approximation via bipartite matching.
pub struct BorderMatching;

impl Solver for BorderMatching {
    fn solve(&self, _inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome {
        if ctx.cancel.is_cancelled() {
            return preempted();
        }
        let _sp = ctx.trace.span_labeled("phase", "border-matching");
        SolveOutcome::from_matches(crate::border_matching_2approx_with_oracle(&ctx.oracle))
    }
}

/// The §3.4 1-CSR → ISP reduction solved with TPA (ratio 2). Only
/// instances with exactly one M fragment qualify.
pub struct OneCsr;

impl Solver for OneCsr {
    fn supports(&self, inst: &Instance, _opts: &EngineOptions) -> Result<(), String> {
        if inst.m.len() == 1 {
            Ok(())
        } else {
            Err(format!(
                "1-CSR needs exactly one M fragment (instance has {})",
                inst.m.len()
            ))
        }
    }

    fn solve(&self, _inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome {
        if ctx.cancel.is_cancelled() {
            return preempted();
        }
        let _sp = ctx.trace.span_labeled("phase", "one-csr");
        SolveOutcome::from_matches(crate::solve_one_csr_with_oracle(&ctx.oracle))
    }
}

/// The anchor-chaining tier: minimizer anchors chained by LIS, DP
/// only inside each chained window. This is the tier that *accepts*
/// what `exact` rejects — `supports()` stays unconditional so
/// genome-scale instances route here.
pub struct Chain;

impl Solver for Chain {
    fn solve(&self, _inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome {
        if ctx.cancel.is_cancelled() {
            return preempted();
        }
        SolveOutcome::from_matches(fragalign_align::solve_chain_with_oracle(&ctx.oracle))
    }
}

/// The exhaustive optimum, materialised as a match set (Definition 2
/// over the winning arrangements). Guarded by
/// [`EngineOptions::exact_limits`].
pub struct Exact;

impl Solver for Exact {
    fn supports(&self, inst: &Instance, opts: &EngineOptions) -> Result<(), String> {
        opts.exact_limits.check(inst)
    }

    fn solve(&self, inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome {
        if ctx.cancel.is_cancelled() {
            return preempted();
        }
        let _sp = ctx.trace.span_labeled("phase", "exact-search");
        let sol = crate::solve_exact(inst, ctx.opts.exact_limits);
        SolveOutcome::from_matches(crate::exact::exact_matches(inst, &sol))
    }
}
