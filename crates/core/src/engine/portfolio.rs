//! The racing portfolio meta-solver.
//!
//! Strategy choice is instance-dependent (Allali et al., "Chaining
//! fragments in sequences: to sweep or not"): on dense instances the
//! improvement family wins, on disjoint full-fragment instances the
//! matching 2-approximation already ties it at a fraction of the
//! cost, and greedy occasionally lucks out. The portfolio races a
//! configurable set of registered solvers over the rayon pool — and
//! now that the pool runs real threads, the race is genuine:
//!
//! * every racer runs under its own child [`CancelToken`], carrying
//!   the configured per-member **budgets** — a wall-clock deadline
//!   (latency SLAs; timing-dependent by nature) and/or a **work cap**
//!   in improvement attempts (deterministic: a capped racer always
//!   stops at the same round on every machine and thread count);
//! * a shared best-score board implements **bound cancellation**:
//!   when a racer finishes at the instance's provable score upper
//!   bound ([`Instance::score_upper_bound`] — the greedy assignment
//!   relaxation over σ, much tighter than the old min-mass × σ_max
//!   bound on heterogeneous tables, so racers retire earlier and the
//!   `racers[]` telemetry shows more `outraced` entries), every racer
//!   at a later race position is cancelled — it could at best tie,
//!   and ties lose to the earlier position, so killing it can never
//!   change the winner;
//! * cancelled improvement racers return their best-so-far consistent
//!   result (the loop is anytime), which still competes: with
//!   work-cap budgets the whole race stays bit-deterministic.
//!
//! Dispatch order is no longer blind registry order: the shape
//! [`Router`] (fitted offline by `exp_router`, see `engine::router`)
//! sends its per-instance pick to the pool first, so the solver the
//! data says fits this shape starts earliest and — when it reaches
//! the bound — retires the rest with the least wasted work. Dispatch
//! is *all* routing changes: retirement and winner selection both key
//! on registry position (best score over the possibly-partial
//! results, ties to the earliest registry entry — never to whichever
//! thread finished first), so the winner is identical for every
//! routing table and equal to running every member to completion
//! sequentially in registry order when no budgets are configured.

use super::{
    CancelCause, CancelToken, EngineError, EngineOptions, RacerReport, Router, SolveCtx,
    SolveOutcome, Solver, SolverRegistry, SolverSpec,
};
use fragalign_model::{Instance, MatchSet, Score};
use fragalign_par::par_map_ordered;
use std::time::{Duration, Instant};

/// Per-racer resource budgets.
#[derive(Clone, Copy, Debug, Default)]
pub struct RacerBudget {
    /// Wall-clock budget, measured from race start. Timing-dependent:
    /// use for latency SLAs, not for reproducible runs.
    pub wall: Option<Duration>,
    /// Work budget in improvement attempts (see
    /// [`CancelToken::charge`]). Deterministic: the racer stops at the
    /// same round on every machine and thread count.
    pub work_cap: Option<u64>,
}

impl RacerBudget {
    /// No limits.
    pub const UNLIMITED: RacerBudget = RacerBudget {
        wall: None,
        work_cap: None,
    };
}

/// Portfolio-wide racing policy.
#[derive(Clone, Debug, Default)]
pub struct PortfolioConfig {
    /// Budget applied to every member without an override.
    pub default_budget: RacerBudget,
    /// Per-member budget overrides, by registered name.
    pub overrides: Vec<(String, RacerBudget)>,
}

impl PortfolioConfig {
    fn budget_for(&self, name: &str) -> RacerBudget {
        self.overrides
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| *b)
            .unwrap_or(self.default_budget)
    }
}

/// One raced member: its registry spec, the solver built once at
/// portfolio construction (so [`Portfolio::supports`] probes without
/// allocating), and its budget.
struct Member {
    spec: &'static SolverSpec,
    solver: Box<dyn Solver>,
    budget: RacerBudget,
}

/// Meta-solver racing a set of registered solvers and returning the
/// best-scoring result (ties: the lowest registry position).
pub struct Portfolio {
    /// Members sorted by registry position.
    members: Vec<Member>,
    /// The shape router whose per-instance pick is dispatched to the
    /// pool first. Routing only reorders dispatch — never retirement
    /// or tie-breaks — so the winner is routing-table-independent.
    router: Router,
}

impl Portfolio {
    /// The default racer set: every registry entry flagged
    /// `in_portfolio` (the exhaustive solver and the portfolio itself
    /// are excluded), with no budgets.
    pub fn new() -> Self {
        Portfolio::with_config(PortfolioConfig::default())
            .expect("the default config has no overrides to mismatch")
    }

    /// The default racer set under an explicit racing policy. Every
    /// override must name a member, so a misspelled (or non-portfolio)
    /// name fails loudly instead of silently racing unbudgeted.
    pub fn with_config(config: PortfolioConfig) -> Result<Self, EngineError> {
        let members: Vec<Member> = SolverRegistry::global()
            .specs()
            .iter()
            .filter(|s| s.in_portfolio)
            .map(|spec| Member {
                spec,
                solver: spec.build(),
                budget: config.budget_for(spec.name),
            })
            .collect();
        Portfolio::check_overrides(&config, &members)?;
        Ok(Portfolio {
            members,
            router: Router::default(),
        })
    }

    /// Race a custom member set. Every name must be registered;
    /// duplicates collapse and members race in registry order
    /// regardless of argument order, so the tie-break stays the
    /// registry's, not the caller's.
    pub fn with_members(names: &[&str]) -> Result<Self, EngineError> {
        Portfolio::with_members_config(names, PortfolioConfig::default())
    }

    /// [`Portfolio::with_members`] under an explicit racing policy.
    pub fn with_members_config(
        names: &[&str],
        config: PortfolioConfig,
    ) -> Result<Self, EngineError> {
        let reg = SolverRegistry::global();
        let mut positions = Vec::with_capacity(names.len());
        for name in names {
            let pos = reg
                .position(name)
                .ok_or_else(|| EngineError::UnknownSolver {
                    name: (*name).to_owned(),
                    known: reg.names(),
                    suggestion: reg.suggest(name),
                })?;
            positions.push(pos);
        }
        positions.sort_unstable();
        positions.dedup();
        let members: Vec<Member> = positions
            .into_iter()
            .map(|p| {
                let spec = &reg.specs()[p];
                Member {
                    spec,
                    solver: spec.build(),
                    budget: config.budget_for(spec.name),
                }
            })
            .collect();
        Portfolio::check_overrides(&config, &members)?;
        Ok(Portfolio {
            members,
            router: Router::default(),
        })
    }

    /// Reject budget overrides that match no member: an SLA that
    /// silently fails to apply is worse than an error.
    fn check_overrides(config: &PortfolioConfig, members: &[Member]) -> Result<(), EngineError> {
        for (name, _) in &config.overrides {
            if !members.iter().any(|m| m.spec.name == name.as_str()) {
                return Err(EngineError::UnknownSolver {
                    name: name.clone(),
                    known: members.iter().map(|m| m.spec.name).collect(),
                    suggestion: SolverRegistry::global().suggest(name),
                });
            }
        }
        Ok(())
    }

    /// The member names, in race (registry) order.
    pub fn members(&self) -> Vec<&'static str> {
        self.members.iter().map(|m| m.spec.name).collect()
    }
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio::new()
    }
}

/// The shared race board: the instance's provable optimum plus every
/// racer's token. When a completion reaches the bound, all later
/// racers are retired. (Winner selection itself needs no shared state
/// — it runs over the ordered results after the race.)
struct Board<'t> {
    upper_bound: Score,
    tokens: &'t [CancelToken],
}

impl Board<'_> {
    /// Record that racer `idx` completed with `score`; retire racers
    /// that can no longer win. Sound at any interleaving: a racer is
    /// only cancelled when its best possible outcome is a tie it
    /// would lose on registry order.
    fn complete(&self, idx: usize, score: Score) {
        if score >= self.upper_bound {
            for token in &self.tokens[idx + 1..] {
                token.cancel_with(CancelCause::Outraced);
            }
        }
    }
}

impl Solver for Portfolio {
    fn supports(&self, inst: &Instance, opts: &EngineOptions) -> Result<(), String> {
        // Members were built at construction, so probing is
        // allocation-free (a hot path for the serving layer, which
        // checks applicability per request).
        for member in &self.members {
            if member.solver.supports(inst, opts).is_ok() {
                return Ok(());
            }
        }
        Err("no portfolio member supports this instance".to_owned())
    }

    fn solve(&self, inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome {
        let opts = ctx.opts;
        // Racers that can run here, in registry order; each gets its
        // own shared-nothing context so no cache line crosses racers.
        let racers: Vec<&Member> = self
            .members
            .iter()
            .filter(|m| m.solver.supports(inst, &opts).is_ok())
            .collect();
        if racers.is_empty() {
            // supports() rejects instances no member can run, so this
            // only guards direct Solver-trait use.
            return SolveOutcome::from_matches(MatchSet::new());
        }
        // The shape router's pick is *dispatched* first: on a loaded
        // pool it starts earliest, so the solver the data says fits
        // this shape finishes soonest and (if it hits the bound)
        // retires the rest with the least wasted work. Dispatch order
        // is all it changes — retirement and winner ties both key on
        // registry position below, so the result is identical for
        // every routing table (and equal to a sequential
        // registry-order race).
        let (routed, rule, feats) = self.router.route_explain(inst, &opts);
        ctx.trace.instant(
            "route_features",
            rule,
            feats.total_regions() as i64,
            feats.sigma_entries as i64,
        );
        ctx.trace.instant("routed", routed, 0, 0);
        let routed_by = racers
            .iter()
            .any(|m| m.spec.name == routed)
            .then_some(routed);
        let mut order: Vec<usize> = (0..racers.len()).collect();
        if let Some(p) = racers.iter().position(|m| m.spec.name == routed) {
            order.remove(p);
            order.insert(0, p);
        }
        let start = Instant::now();
        let tokens: Vec<CancelToken> = racers
            .iter()
            .map(|m| {
                ctx.cancel
                    .child_with_limits(m.budget.wall.map(|w| start + w), m.budget.work_cap)
            })
            .collect();
        let board = Board {
            upper_bound: inst.score_upper_bound(),
            tokens: &tokens,
        };
        let board = &board;
        let tokens_ref = &tokens;
        let racers_ref = &racers;
        let trace = ctx.trace.clone();
        let dispatched = par_map_ordered(order.clone(), move |idx: usize| {
            let member = racers_ref[idx];
            // Each racer gets its own timeline lane (track 0 is the
            // engine): a portfolio Chrome trace renders as parallel
            // racer rows with spawn → retire/finish visible per lane.
            let rt = trace.with_track(idx as u16 + 1);
            rt.instant("spawn", member.spec.name, idx as i64, 0);
            let mut racer_span = rt.span_labeled("racer", member.spec.name);
            let t0 = Instant::now();
            let token = tokens_ref[idx].clone();
            let mut sub = SolveCtx::with_cancel(inst, opts, token.clone());
            sub.set_trace(rt.clone());
            let out = member.solver.solve(inst, &mut sub);
            let wall = t0.elapsed().as_secs_f64();
            // Capture the cancel cause at the moment the racer exits:
            // reading it any later would let a post-exit event (a
            // deadline elapsing, say) overwrite why this run actually
            // stopped. A capped run is immune either way — the token
            // ranks its own work cap above a racing Outraced flag, so
            // that cause stays machine-independent.
            let cause = out
                .cancelled
                .then(|| token.cause().unwrap_or(CancelCause::Requested).name());
            let score = out.matches.total_score();
            if let Some(cause) = cause {
                rt.instant("cancel", cause, score, 0);
            }
            if !out.cancelled {
                board.complete(idx, score);
                if score >= board.upper_bound {
                    // The marker that explains later racers' "outraced"
                    // cancels: this racer hit the provable bound (a0 =
                    // score, a1 = bound).
                    rt.instant("bound_retire", member.spec.name, score, board.upper_bound);
                }
            }
            racer_span.set_args(score, out.attempts as i64);
            drop(racer_span);
            (out, cause, sub.oracle.stats.snapshot(), wall)
        });
        // Dispatch order was the router's; winner selection runs in
        // registry order, so put the results back.
        let mut slots: Vec<Option<_>> = (0..racers.len()).map(|_| None).collect();
        for (idx, run) in order.into_iter().zip(dispatched) {
            slots[idx] = Some(run);
        }
        let runs: Vec<_> = slots
            .into_iter()
            .map(|s| s.expect("every racer ran"))
            .collect();

        let mut best: Option<(usize, SolveOutcome)> = None;
        let mut attempts = 0;
        let mut reports = Vec::with_capacity(runs.len());
        for (idx, (out, cause, stats, wall)) in runs.into_iter().enumerate() {
            // Fold each racer's oracle work into the portfolio's
            // context so the report shows the whole race.
            ctx.oracle.stats.absorb(&stats);
            attempts += out.attempts;
            reports.push(RacerReport {
                name: racers[idx].spec.name.to_owned(),
                score: out.matches.total_score(),
                cancelled: cause.map(str::to_owned),
                rounds: out.rounds,
                attempts: out.attempts,
                wall_secs: wall,
            });
            // Cancelled racers still compete with their best-so-far
            // partial result (anytime semantics); strict comparison
            // keeps ties with the earliest racer.
            let better = match &best {
                None => true,
                Some((_, b)) => out.matches.total_score() > b.matches.total_score(),
            };
            if better {
                best = Some((idx, out));
            }
        }
        let (idx, out) = best.expect("at least one racer ran");
        SolveOutcome {
            winner: Some(racers[idx].spec.name),
            rounds: out.rounds,
            attempts,
            cancelled: out.cancelled,
            racers: reports,
            matches: out.matches,
            routed_by,
        }
    }
}
