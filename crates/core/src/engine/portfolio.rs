//! The racing portfolio meta-solver.
//!
//! Strategy choice is instance-dependent (Allali et al., "Chaining
//! fragments in sequences: to sweep or not"): on dense instances the
//! improvement family wins, on disjoint full-fragment instances the
//! matching 2-approximation already ties it at a fraction of the
//! cost, and greedy occasionally lucks out. The portfolio runs a
//! configurable set of registered solvers — in parallel over the
//! rayon pool — and keeps the best-scoring consistent result.
//! Determinism: racers are ordered by registry position and the
//! best-score tie goes to the lowest position, never to whichever
//! thread finished first.

use super::{EngineError, EngineOptions, SolveCtx, SolveOutcome, Solver, SolverRegistry};
use fragalign_model::Instance;
use fragalign_par::par_map_ordered;

/// Meta-solver racing a set of registered solvers and returning the
/// best-scoring result (ties: lowest registry position).
pub struct Portfolio {
    /// Member names, sorted by registry position.
    members: Vec<&'static str>,
}

impl Portfolio {
    /// The default racer set: every registry entry flagged
    /// `in_portfolio` (the exhaustive solver and the portfolio itself
    /// are excluded).
    pub fn new() -> Self {
        let members = SolverRegistry::global()
            .specs()
            .iter()
            .filter(|s| s.in_portfolio)
            .map(|s| s.name)
            .collect();
        Portfolio { members }
    }

    /// Race a custom member set. Every name must be registered;
    /// duplicates collapse and members race in registry order
    /// regardless of argument order, so the tie-break stays the
    /// registry's, not the caller's.
    pub fn with_members(names: &[&str]) -> Result<Self, EngineError> {
        let reg = SolverRegistry::global();
        let mut positions = Vec::with_capacity(names.len());
        for name in names {
            let pos = reg
                .position(name)
                .ok_or_else(|| EngineError::UnknownSolver {
                    name: (*name).to_owned(),
                    known: reg.names(),
                    suggestion: reg.suggest(name),
                })?;
            positions.push(pos);
        }
        positions.sort_unstable();
        positions.dedup();
        Ok(Portfolio {
            members: positions.into_iter().map(|p| reg.specs()[p].name).collect(),
        })
    }

    /// The member names, in race (registry) order.
    pub fn members(&self) -> &[&'static str] {
        &self.members
    }
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio::new()
    }
}

impl Solver for Portfolio {
    fn supports(&self, inst: &Instance, opts: &EngineOptions) -> Result<(), String> {
        let reg = SolverRegistry::global();
        for name in &self.members {
            if let Ok(spec) = reg.spec(name) {
                if spec.build().supports(inst, opts).is_ok() {
                    return Ok(());
                }
            }
        }
        Err("no portfolio member supports this instance".to_owned())
    }

    fn solve(&self, inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome {
        let reg = SolverRegistry::global();
        let opts = ctx.opts;
        // Racers that can run here, in registry order; each gets its
        // own shared-nothing context so no cache line crosses racers.
        let racers: Vec<&'static str> = self
            .members
            .iter()
            .copied()
            .filter(|name| {
                reg.spec(name)
                    .is_ok_and(|s| s.build().supports(inst, &opts).is_ok())
            })
            .collect();
        let runs = par_map_ordered(racers.clone(), move |name| {
            let solver = reg.spec(name).expect("racer is registered").build();
            let mut sub = SolveCtx::new(inst, opts);
            let out = solver.solve(inst, &mut sub);
            (out, sub.oracle.stats.snapshot())
        });

        let mut best: Option<(usize, SolveOutcome)> = None;
        let mut attempts = 0;
        for (idx, (out, stats)) in runs.into_iter().enumerate() {
            // Fold each racer's oracle work into the portfolio's
            // context so the report shows the whole race.
            ctx.oracle.stats.absorb(&stats);
            attempts += out.attempts;
            let better = match &best {
                None => true,
                // Strict: the earliest racer keeps ties.
                Some((_, b)) => out.matches.total_score() > b.matches.total_score(),
            };
            if better {
                best = Some((idx, out));
            }
        }
        match best {
            Some((idx, out)) => SolveOutcome {
                winner: Some(racers[idx]),
                rounds: out.rounds,
                attempts,
                matches: out.matches,
            },
            // supports() rejects instances no member can run, so this
            // only guards direct Solver-trait use.
            None => SolveOutcome::from_matches(fragalign_model::MatchSet::new()),
        }
    }
}
