//! The solver engine layer: one object-safe interface, one registry,
//! one telemetry shape for every CSR solver.
//!
//! The paper presents a *family* of algorithms for the same instances
//! — greedy, the factor-4 algorithm (Theorem 3), the 1-CSR/ISP
//! reduction (§3.4), the three §4 improvement variants, the Border
//! matching 2-approximation (Lemma 9), and the exhaustive optimum.
//! Before this module, the CLI and the batch pipeline each hard-coded
//! their own dispatch over a subset of them. Now:
//!
//! * [`Solver`] is the uniform interface: `solve(inst, &mut SolveCtx)`
//!   with an injected memoising [`ScoreOracle`] (which owns the
//!   pooled [`DpWorkspace`](fragalign_align::DpWorkspace)s) and the
//!   run options;
//! * [`SolverRegistry`] is the single source of truth mapping names to
//!   solver factories plus paper metadata — the CLI, the batch loop,
//!   the bench matrix, and the README table all read it;
//! * [`SolveReport`] is the uniform telemetry record every run emits:
//!   score, rounds, attempts, DP fill/realloc counts pulled from the
//!   oracle stats, and wall time;
//! * [`Portfolio`] is a meta-solver racing a configurable solver set
//!   in parallel and keeping the best-scoring result, with ties broken
//!   by registry order so the outcome never depends on thread timing.

mod portfolio;
mod registry;
mod router;
mod solvers;

pub use crate::cancel::{CancelCause, CancelToken};
pub use fragalign_obs::{TraceHandle, TraceLog, TraceSink};
pub use portfolio::{Portfolio, PortfolioConfig, RacerBudget};
pub use registry::{SolverRegistry, SolverSpec};
pub use router::{Auto, InstanceFeatures, Router, RouterRule};

use crate::ExactLimits;
use fragalign_align::ScoreOracle;
use fragalign_model::{Instance, MatchSet, Score};
use serde::Serialize;

/// Knobs shared by every engine run.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Enable the §4.1 scaling step (improvement solvers only).
    pub scaling: bool,
    /// Pool DP workspaces across fills and instances (default). Off
    /// restores the per-call-allocation baseline `exp_throughput`
    /// measures against; results never change either way.
    pub reuse_workspaces: bool,
    /// Rayon pool width for this run: the solve executes on a
    /// dedicated pool of this many threads. `0` (default) runs on the
    /// ambient pool (the global one, or whatever `install` pinned).
    /// Results are bit-identical either way — this knob trades wall
    /// clock only.
    pub threads: usize,
    /// Instance-size guard for the exhaustive solver.
    pub exact_limits: ExactLimits,
}

impl Default for EngineOptions {
    /// Unscaled, workspace reuse on, ambient pool, default exact
    /// limits.
    fn default() -> Self {
        EngineOptions {
            scaling: false,
            reuse_workspaces: true,
            threads: 0,
            exact_limits: ExactLimits::default(),
        }
    }
}

/// Per-run context injected into [`Solver::solve`]: the memoising
/// score oracle (whose internal pool holds the warm DP workspaces) and
/// the run options. One context per instance per run — contexts are
/// never shared between instances, so batch results stay deterministic
/// regardless of thread count.
pub struct SolveCtx<'a> {
    /// Shared-per-run memoising score oracle over the instance.
    pub oracle: ScoreOracle<'a>,
    /// The options of this run.
    pub opts: EngineOptions,
    /// The run's stop signal; solvers poll it at round boundaries and
    /// return their best-so-far (consistent) result when it trips.
    pub cancel: CancelToken,
    /// Span sink for phase/racer timelines; disabled (one branch per
    /// span site, no clock reads) unless [`SolveCtx::set_trace`] was
    /// called. Tracing is observational only — results are
    /// bit-identical with it on or off (test-enforced).
    pub trace: TraceHandle,
}

impl<'a> SolveCtx<'a> {
    /// A fresh context for `inst` (empty caches, empty workspace pool,
    /// never cancelled).
    pub fn new(inst: &'a Instance, opts: EngineOptions) -> Self {
        SolveCtx::with_cancel(inst, opts, CancelToken::never())
    }

    /// [`SolveCtx::new`] with a live cancellation token.
    pub fn with_cancel(inst: &'a Instance, opts: EngineOptions, cancel: CancelToken) -> Self {
        SolveCtx {
            oracle: ScoreOracle::with_workspace_reuse(inst, opts.reuse_workspaces),
            opts,
            cancel,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attach a trace handle to this context (and its oracle, so
    /// DP-layer phases share the sink without signature changes).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.oracle.set_trace(trace.clone());
        self.trace = trace;
    }

    /// The instance this context solves.
    pub fn instance(&self) -> &'a Instance {
        self.oracle.instance()
    }
}

/// What a solver hands back: the consistent match set plus whatever
/// work counters the algorithm naturally tracks (zero where a solver
/// has no notion of rounds or attempts).
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The consistent match set.
    pub matches: MatchSet,
    /// Committed improvement rounds (improvement family; 0 elsewhere).
    pub rounds: usize,
    /// Candidate attempts evaluated (improvement family; summed over
    /// racers for the portfolio; 0 elsewhere).
    pub attempts: usize,
    /// The racer that produced `matches` (portfolio only).
    pub winner: Option<&'static str>,
    /// Whether the run stopped early on its [`CancelToken`]; the match
    /// set is then the solver's best-so-far (still consistent).
    pub cancelled: bool,
    /// Per-racer telemetry (portfolio only; empty elsewhere).
    pub racers: Vec<RacerReport>,
    /// The solver the shape router picked (`auto` runs and routed
    /// portfolio races only; `None` elsewhere).
    pub routed_by: Option<&'static str>,
}

impl SolveOutcome {
    /// An outcome carrying only a match set.
    pub fn from_matches(matches: MatchSet) -> Self {
        SolveOutcome {
            matches,
            rounds: 0,
            attempts: 0,
            winner: None,
            cancelled: false,
            racers: Vec::new(),
            routed_by: None,
        }
    }
}

/// The uniform solver interface. Implementations must be deterministic
/// (identical results for any thread count) and return a consistent
/// match set; the context's oracle is scratch plus memoisation only
/// and never changes results.
pub trait Solver: Send + Sync {
    /// `Err(reason)` when this solver cannot run on `inst` — the
    /// 1-CSR reduction needs a single M fragment, the exhaustive
    /// solver refuses oversized instances. The registry turns a
    /// failure into [`EngineError::Unsupported`]; the portfolio skips
    /// the racer.
    fn supports(&self, _inst: &Instance, _opts: &EngineOptions) -> Result<(), String> {
        Ok(())
    }

    /// Solve `inst` through the injected context.
    fn solve(&self, inst: &Instance, ctx: &mut SolveCtx<'_>) -> SolveOutcome;
}

/// Uniform telemetry for one engine run, serialisable for
/// `fragalign solve --report json` and the solver-matrix experiment.
#[derive(Clone, Debug, Serialize)]
pub struct SolveReport {
    /// Registered solver name.
    pub solver: String,
    /// Total score of the returned match set.
    pub score: Score,
    /// Number of matches returned.
    pub matches: usize,
    /// Committed improvement rounds (0 for one-shot solvers).
    pub rounds: usize,
    /// Attempts evaluated (improvement family; summed over racers
    /// for the portfolio; 0 for one-shot solvers).
    pub attempts: usize,
    /// DP fills served through the run's oracle(s), nested oracles
    /// included.
    pub dp_fills: u64,
    /// Workspace buffer growth events — the allocations proxy.
    pub dp_reallocs: u64,
    /// Interval tables computed.
    pub table_misses: u64,
    /// Site-pair scores computed.
    pub pair_misses: u64,
    /// Wall-clock seconds of the solve call.
    pub wall_secs: f64,
    /// The racer that won (portfolio runs only).
    pub winner: Option<String>,
    /// Whether the run stopped early on its cancellation token (the
    /// result is then the solver's best-so-far).
    pub cancelled: bool,
    /// Per-racer telemetry (portfolio runs only; empty elsewhere).
    pub racers: Vec<RacerReport>,
    /// The solver the shape router picked: the delegate on `auto`
    /// runs, the first-dispatched member on routed portfolio races
    /// (`null` elsewhere).
    pub routed_by: Option<String>,
}

/// One portfolio racer's slice of a [`SolveReport`]: what it scored,
/// whether (and why) it was cancelled, and how long it ran. Budget and
/// bound cancellations land here, making the race observable.
#[derive(Clone, Debug, Serialize)]
pub struct RacerReport {
    /// Registered solver name of the racer.
    pub name: String,
    /// Score of the racer's (possibly partial) result.
    pub score: Score,
    /// `None` when the racer ran to completion; otherwise the
    /// [`CancelCause`] name (`"deadline"`, `"work-cap"`, `"outraced"`,
    /// …) it stopped for.
    pub cancelled: Option<String>,
    /// Committed improvement rounds inside this racer (0 for one-shot
    /// racers).
    pub rounds: usize,
    /// Candidate attempts the racer evaluated (0 for one-shot racers).
    pub attempts: usize,
    /// Wall-clock seconds the racer ran.
    pub wall_secs: f64,
}

/// A finished engine run: the solution and its telemetry.
#[derive(Clone, Debug)]
pub struct SolveRun {
    /// The consistent match set the solver returned.
    pub matches: MatchSet,
    /// Its total score (duplicated from the report for convenience).
    pub score: Score,
    /// The uniform telemetry record.
    pub report: SolveReport,
}

/// Why the engine refused to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// No registered solver has the requested name.
    UnknownSolver {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, in registry order.
        known: Vec<&'static str>,
        /// The registered name closest to the typo, when one is close
        /// enough to be a plausible intent (edit distance ≤ 2).
        suggestion: Option<&'static str>,
    },
    /// The solver exists but cannot run on this instance.
    Unsupported {
        /// The registered solver name.
        solver: &'static str,
        /// The solver's own explanation.
        reason: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownSolver {
                name,
                known,
                suggestion,
            } => {
                write!(
                    f,
                    "unknown solver '{name}' (registered: {})",
                    known.join("|")
                )?;
                match suggestion {
                    Some(s) => write!(f, " — did you mean '{s}'?"),
                    None => Ok(()),
                }
            }
            EngineError::Unsupported { solver, reason } => {
                write!(f, "solver '{solver}' cannot run here: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}
