//! Name → solver-factory registry: the single source of truth the
//! CLI, the batch pipeline, the solver-matrix experiment, and the
//! README solver table all read. Registering a solver here is the
//! whole integration: every front end picks it up.

use super::solvers::{BorderMatching, Chain, Exact, FourApprox, Greedy, Improve, OneCsr};
use super::{
    CancelToken, EngineError, EngineOptions, Portfolio, SolveCtx, SolveOutcome, SolveReport,
    SolveRun, Solver, TraceHandle,
};
use crate::MethodSet;
use fragalign_align::DpWorkspace;
use fragalign_model::Instance;
use std::sync::OnceLock;
use std::time::Instant;

type Factory = fn() -> Box<dyn Solver>;

/// One registered solver: the public name, paper metadata for docs
/// and reports, and the factory.
pub struct SolverSpec {
    /// Registered name (the CLI's `--algo` value).
    pub name: &'static str,
    /// Which paper artifact the solver implements.
    pub paper: &'static str,
    /// Proven approximation ratio, as prose.
    pub ratio: &'static str,
    /// Whether the default [`Portfolio`] races this solver. The
    /// exhaustive solver sits out (worst-case factorial work) and the
    /// portfolio cannot race itself.
    pub in_portfolio: bool,
    factory: Factory,
}

impl SolverSpec {
    /// Instantiate the solver.
    pub fn build(&self) -> Box<dyn Solver> {
        (self.factory)()
    }
}

/// The name → factory registry. Order matters: it is the portfolio's
/// tie-break and every front end's display order.
pub struct SolverRegistry {
    entries: Vec<SolverSpec>,
}

impl SolverRegistry {
    /// Every solver this workspace ships, in canonical order
    /// (strongest guarantees first, so portfolio ties resolve to the
    /// best-understood algorithm).
    pub fn builtin() -> SolverRegistry {
        let entries = vec![
            SolverSpec {
                name: "csr",
                paper: "CSR_Improve (§4.4, Theorem 6)",
                ratio: "3 + ε",
                in_portfolio: true,
                factory: || Box::new(Improve(MethodSet::All)),
            },
            SolverSpec {
                name: "full",
                paper: "Full_Improve (§4.2, Theorem 4)",
                ratio: "3 + ε (Full CSR)",
                in_portfolio: true,
                factory: || Box::new(Improve(MethodSet::FullOnly)),
            },
            SolverSpec {
                name: "border",
                paper: "Border_Improve (§4.3, Theorem 5)",
                ratio: "3 + ε (Border CSR)",
                in_portfolio: true,
                factory: || Box::new(Improve(MethodSet::BorderOnly)),
            },
            SolverSpec {
                name: "four",
                paper: "factor-4 algorithm (Theorem 3, Corollary 1)",
                ratio: "4",
                in_portfolio: true,
                factory: || Box::new(FourApprox),
            },
            SolverSpec {
                name: "one-csr",
                paper: "1-CSR → ISP reduction solved with TPA (§3.4)",
                ratio: "2 (single-M instances)",
                in_portfolio: true,
                factory: || Box::new(OneCsr),
            },
            SolverSpec {
                name: "matching",
                paper: "bipartite-matching 2-approx (Lemma 9)",
                ratio: "2 (Border CSR)",
                in_portfolio: true,
                factory: || Box::new(BorderMatching),
            },
            SolverSpec {
                name: "greedy",
                paper: "the greedy baseline the introduction warns about",
                ratio: "unbounded",
                in_portfolio: true,
                factory: || Box::new(Greedy),
            },
            SolverSpec {
                name: "chain",
                paper: "anchor chaining: minimizers + LIS + windowed DP (engineering tier)",
                ratio: "unbounded (heuristic; built for instances exact cannot touch)",
                in_portfolio: true,
                factory: || Box::new(Chain),
            },
            SolverSpec {
                name: "exact",
                paper: "exhaustive conjecture-pair search",
                ratio: "1 (optimum; small instances only)",
                in_portfolio: false,
                factory: || Box::new(Exact),
            },
            SolverSpec {
                name: "portfolio",
                paper: "races every solver above, keeps the best",
                ratio: "min over members",
                in_portfolio: false,
                factory: || Box::new(Portfolio::new()),
            },
            SolverSpec {
                name: "auto",
                paper: "shape router fitted by exp_router (engine tier)",
                ratio: "inherits the routed solver's",
                in_portfolio: false,
                factory: || Box::new(super::Auto::new()),
            },
        ];
        SolverRegistry { entries }
    }

    /// The process-wide registry (built on first use).
    pub fn global() -> &'static SolverRegistry {
        static GLOBAL: OnceLock<SolverRegistry> = OnceLock::new();
        GLOBAL.get_or_init(SolverRegistry::builtin)
    }

    /// Every entry, in canonical order.
    pub fn specs(&self) -> &[SolverSpec] {
        &self.entries
    }

    /// Every registered name, in canonical order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|s| s.name).collect()
    }

    /// Position of `name` in the canonical order.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|s| s.name == name)
    }

    /// Look a solver up by name. The error carries every registered
    /// name plus a did-you-mean suggestion for near-miss typos, so
    /// front ends (CLI, batch, the HTTP service's 400 body) stay
    /// friendly without re-deriving the hint.
    pub fn spec(&self, name: &str) -> Result<&SolverSpec, EngineError> {
        self.entries
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| EngineError::UnknownSolver {
                name: name.to_owned(),
                known: self.names(),
                suggestion: self.suggest(name),
            })
    }

    /// The registered name closest to `name` by edit distance, when
    /// close enough (≤ 2 edits) to be a plausible typo. Ties resolve
    /// to the earlier registry entry, keeping the hint deterministic.
    pub fn suggest(&self, name: &str) -> Option<&'static str> {
        self.entries
            .iter()
            .map(|s| (edit_distance(name, s.name), s.name))
            .filter(|(d, _)| *d <= 2)
            .min_by_key(|(d, _)| *d)
            .map(|(_, n)| n)
    }

    /// Run the named solver on `inst` with a throwaway workspace.
    pub fn solve(
        &self,
        name: &str,
        inst: &Instance,
        opts: EngineOptions,
    ) -> Result<SolveRun, EngineError> {
        let mut ws = DpWorkspace::new();
        self.solve_with_workspace(name, inst, opts, &mut ws)
    }

    /// Run the named solver on `inst`, lending `ws` to the run's
    /// oracle pool (and taking it back, warmer, afterwards — the batch
    /// loop threads one workspace per worker through here). The
    /// workspace is scratch only: it never changes results.
    pub fn solve_with_workspace(
        &self,
        name: &str,
        inst: &Instance,
        opts: EngineOptions,
        ws: &mut DpWorkspace,
    ) -> Result<SolveRun, EngineError> {
        self.solve_cancellable(name, inst, opts, ws, CancelToken::never())
    }

    /// [`SolverRegistry::solve_with_workspace`] with a live stop
    /// signal: solvers poll `cancel` at round boundaries and hand back
    /// their best-so-far consistent result (flagged in the report)
    /// when it trips. When [`EngineOptions::threads`] is non-zero, the
    /// solve executes on a dedicated pool of that width; results are
    /// bit-identical at any width.
    pub fn solve_cancellable(
        &self,
        name: &str,
        inst: &Instance,
        opts: EngineOptions,
        ws: &mut DpWorkspace,
        cancel: CancelToken,
    ) -> Result<SolveRun, EngineError> {
        self.solve_traced(name, inst, opts, ws, cancel, TraceHandle::disabled())
    }

    /// [`SolverRegistry::solve_cancellable`] recording phase/racer
    /// spans through `trace`. Tracing is observational only: the
    /// solve's result and report counters are bit-identical whether
    /// the handle is enabled or disabled (the trace suite enforces
    /// this).
    pub fn solve_traced(
        &self,
        name: &str,
        inst: &Instance,
        opts: EngineOptions,
        ws: &mut DpWorkspace,
        cancel: CancelToken,
        trace: TraceHandle,
    ) -> Result<SolveRun, EngineError> {
        let spec = self.spec(name)?;
        let solver = spec.build();
        solver
            .supports(inst, &opts)
            .map_err(|reason| EngineError::Unsupported {
                solver: spec.name,
                reason,
            })?;
        let mut ctx = SolveCtx::with_cancel(inst, opts, cancel);
        if trace.is_enabled() {
            ctx.set_trace(trace);
        }
        if opts.reuse_workspaces {
            ctx.oracle.adopt_workspace(std::mem::take(ws));
        }
        let mut solve_span = ctx.trace.span_labeled("solve", spec.name);
        let start = Instant::now();
        let out = if opts.threads > 0 {
            let solver = &solver;
            let ctx = &mut ctx;
            fragalign_par::with_threads(opts.threads, move || solver.solve(inst, ctx)).0
        } else {
            solver.solve(inst, &mut ctx)
        };
        let wall_secs = start.elapsed().as_secs_f64();
        solve_span.set_args(out.matches.total_score(), out.attempts as i64);
        drop(solve_span);
        if opts.reuse_workspaces {
            *ws = ctx.oracle.reclaim_workspace();
        }
        Ok(self.finish_run(spec, out, &ctx, wall_secs))
    }

    /// Assemble the uniform report from an outcome and its context.
    fn finish_run(
        &self,
        spec: &SolverSpec,
        out: SolveOutcome,
        ctx: &SolveCtx<'_>,
        wall_secs: f64,
    ) -> SolveRun {
        let stats = ctx.oracle.stats.snapshot();
        let score = out.matches.total_score();
        SolveRun {
            score,
            report: SolveReport {
                solver: spec.name.to_owned(),
                score,
                matches: out.matches.len(),
                rounds: out.rounds,
                attempts: out.attempts,
                dp_fills: stats.dp_fills,
                dp_reallocs: stats.dp_reallocs,
                table_misses: stats.table_misses,
                pair_misses: stats.pair_misses,
                wall_secs,
                winner: out.winner.map(str::to_owned),
                cancelled: out.cancelled,
                racers: out.racers,
                routed_by: out.routed_by.map(str::to_owned),
            },
            matches: out.matches,
        }
    }

    /// The README solver table, generated from the registry so docs
    /// cannot drift from code (`tests/engine_registry.rs` pins the
    /// README to this exact string).
    pub fn markdown_table(&self) -> String {
        let mut out = String::from(
            "| solver | paper artifact | approximation ratio |\n| --- | --- | --- |\n",
        );
        for s in &self.entries {
            out.push_str(&format!("| `{}` | {} | {} |\n", s.name, s.paper, s.ratio));
        }
        out
    }
}

/// Levenshtein distance over bytes (solver names are ASCII); one
/// rolling row, O(|a|·|b|) time.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = diag + usize::from(ca != cb);
            diag = row[j + 1];
            row[j + 1] = sub.min(diag + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::instance::paper_example;

    #[test]
    fn every_name_resolves_and_builds() {
        let reg = SolverRegistry::global();
        assert!(reg.names().len() >= 9);
        for name in reg.names() {
            let spec = reg.spec(name).unwrap();
            assert_eq!(spec.name, name);
            let _ = spec.build();
        }
        assert!(matches!(
            reg.spec("simulated-annealing"),
            Err(EngineError::UnknownSolver { .. })
        ));
    }

    #[test]
    fn unknown_solver_suggests_near_misses() {
        let reg = SolverRegistry::global();
        let err = reg.spec("greddy").map(|s| s.name).unwrap_err();
        assert!(matches!(
            &err,
            EngineError::UnknownSolver {
                suggestion: Some("greedy"),
                ..
            }
        ));
        assert!(err.to_string().contains("did you mean 'greedy'?"));
        // Nothing is within two edits of this; no hint offered.
        let far = reg.spec("simulated-annealing").map(|s| s.name).unwrap_err();
        assert!(matches!(
            far,
            EngineError::UnknownSolver {
                suggestion: None,
                ..
            }
        ));
        assert_eq!(edit_distance("csr", "one-csr"), 4);
        assert_eq!(edit_distance("", "csr"), 3);
        assert_eq!(reg.suggest("cse"), Some("csr"));
    }

    #[test]
    fn solve_reports_telemetry() {
        let reg = SolverRegistry::global();
        let inst = paper_example();
        let run = reg
            .solve("csr", &inst, EngineOptions::default())
            .expect("csr runs everywhere");
        assert_eq!(run.score, 11);
        assert_eq!(run.report.solver, "csr");
        assert_eq!(run.report.score, 11);
        assert!(run.report.rounds > 0);
        assert!(run.report.attempts > 0);
        assert!(run.report.dp_fills > 0);
        assert!(run.report.wall_secs >= 0.0);
        assert!(run.report.winner.is_none());
    }

    #[test]
    fn unsupported_solvers_error_cleanly() {
        let reg = SolverRegistry::global();
        let inst = paper_example(); // two M fragments
        let err = reg
            .solve("one-csr", &inst, EngineOptions::default())
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Unsupported {
                solver: "one-csr",
                ..
            }
        ));
        assert!(err.to_string().contains("one M fragment"));
    }

    #[test]
    fn markdown_table_has_one_row_per_solver() {
        let reg = SolverRegistry::global();
        let table = reg.markdown_table();
        assert_eq!(table.lines().count(), 2 + reg.specs().len());
        for name in reg.names() {
            assert!(table.contains(&format!("| `{name}` |")), "{name}");
        }
    }
}
