//! Cooperative cancellation for solver runs.
//!
//! A [`CancelToken`] is the engine's stop signal: solvers receive one
//! through [`SolveCtx`](crate::SolveCtx) and poll it at round
//! boundaries (the improvement family checks between improvement
//! rounds; one-shot solvers check on entry). A token can trip for four
//! reasons:
//!
//! * an explicit [`cancel`](CancelToken::cancel) call,
//! * a wall-clock **deadline** (latency budgets; inherently
//!   timing-dependent, so results under deadline cancellation are
//!   best-effort),
//! * a **work cap** on [`charge`](CancelToken::charge)d work units —
//!   the deterministic budget: the improvement driver charges one unit
//!   per evaluated attempt, so a capped run always stops at the same
//!   round on every machine and thread count,
//! * a cancelled **parent**: tokens form a tree (the portfolio holds
//!   the root, each racer a child), and cancelling a parent cancels
//!   the whole subtree.
//!
//! The default token is [`CancelToken::never`]: a zero-allocation
//! no-op, so uncancellable call paths pay nothing.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// Someone called [`CancelToken::cancel`].
    Requested,
    /// The wall-clock deadline passed.
    Deadline,
    /// More work was [`charge`](CancelToken::charge)d than the cap.
    WorkCap,
    /// A competing racer made this run unable to win (the portfolio's
    /// shared best-score bound).
    Outraced,
    /// An ancestor token was cancelled.
    Parent,
}

impl CancelCause {
    /// Stable lowercase name, used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            CancelCause::Requested => "requested",
            CancelCause::Deadline => "deadline",
            CancelCause::WorkCap => "work-cap",
            CancelCause::Outraced => "outraced",
            CancelCause::Parent => "parent",
        }
    }
}

const FLAG_LIVE: u8 = 0;

fn encode(cause: CancelCause) -> u8 {
    match cause {
        CancelCause::Requested => 1,
        CancelCause::Deadline => 2,
        CancelCause::WorkCap => 3,
        CancelCause::Outraced => 4,
        CancelCause::Parent => 5,
    }
}

fn decode(flag: u8) -> CancelCause {
    match flag {
        1 => CancelCause::Requested,
        2 => CancelCause::Deadline,
        3 => CancelCause::WorkCap,
        4 => CancelCause::Outraced,
        _ => CancelCause::Parent,
    }
}

#[derive(Debug)]
struct Inner {
    /// `FLAG_LIVE`, or the encoded [`CancelCause`] that tripped first.
    flag: AtomicU8,
    deadline: Option<Instant>,
    work_cap: Option<u64>,
    work: AtomicU64,
    parent: Option<CancelToken>,
}

/// A cloneable, thread-safe stop signal (see module docs). Clones
/// share state: cancelling one cancels them all.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// The inert token: never cancelled, free to clone and poll.
    /// [`cancel`](CancelToken::cancel) on it is a no-op.
    pub fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A live token with no limits — trips only via
    /// [`cancel`](CancelToken::cancel) (or a cancelled parent).
    pub fn new() -> CancelToken {
        CancelToken::with_limits(None, None)
    }

    /// A live token tripping at `deadline` and/or after `work_cap`
    /// charged units.
    pub fn with_limits(deadline: Option<Instant>, work_cap: Option<u64>) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicU8::new(FLAG_LIVE),
                deadline,
                work_cap,
                work: AtomicU64::new(0),
                parent: None,
            })),
        }
    }

    /// A live token tripping `budget` from now.
    pub fn with_budget(budget: Duration) -> CancelToken {
        CancelToken::with_limits(Some(Instant::now() + budget), None)
    }

    /// A live child of `self` with its own limits: it trips on its own
    /// limits *or* when `self` is cancelled. Works on a `never` parent
    /// too (the child simply has no parent edge).
    pub fn child_with_limits(
        &self,
        deadline: Option<Instant>,
        work_cap: Option<u64>,
    ) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicU8::new(FLAG_LIVE),
                deadline,
                work_cap,
                work: AtomicU64::new(0),
                parent: self.inner.is_some().then(|| self.clone()),
            })),
        }
    }

    /// A live, unlimited child of `self`.
    pub fn child(&self) -> CancelToken {
        self.child_with_limits(None, None)
    }

    /// Trip the token with [`CancelCause::Requested`]. No-op on a
    /// `never` token.
    pub fn cancel(&self) {
        self.cancel_with(CancelCause::Requested);
    }

    /// Trip the token with an explicit cause; the first cause sticks.
    pub fn cancel_with(&self, cause: CancelCause) {
        if let Some(inner) = &self.inner {
            let _ = inner.flag.compare_exchange(
                FLAG_LIVE,
                encode(cause),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
    }

    /// Record `units` of work against the cap (and every ancestor's).
    pub fn charge(&self, units: u64) {
        let mut cur = self;
        while let Some(inner) = &cur.inner {
            inner.work.fetch_add(units, Ordering::Relaxed);
            match &inner.parent {
                Some(parent) => cur = parent,
                None => break,
            }
        }
    }

    /// Work units charged so far (0 for a `never` token).
    pub fn work_done(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.work.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Whether the token has tripped (any cause, own or inherited).
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }

    /// The cause the token tripped for, or `None` while it is live.
    /// The own work cap outranks everything, then the explicit flag,
    /// then the deadline, then a cancelled ancestor. Work-cap-first is
    /// deliberate: it is the one cause that trips at the same point on
    /// every machine, and a racing explicit trip (e.g. the portfolio's
    /// `Outraced` broadcast landing just after a capped run already
    /// stopped) must not rewrite the report's deterministic cause into
    /// a timing-dependent one.
    pub fn cause(&self) -> Option<CancelCause> {
        let inner = self.inner.as_ref()?;
        if let Some(cap) = inner.work_cap {
            if inner.work.load(Ordering::Relaxed) > cap {
                return Some(CancelCause::WorkCap);
            }
        }
        let flag = inner.flag.load(Ordering::Relaxed);
        if flag != FLAG_LIVE {
            return Some(decode(flag));
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Some(CancelCause::Deadline);
            }
        }
        if inner.parent.as_ref().is_some_and(|p| p.is_cancelled()) {
            return Some(CancelCause::Parent);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_trips() {
        let t = CancelToken::never();
        t.cancel();
        t.charge(1_000_000);
        assert!(!t.is_cancelled());
        assert_eq!(t.cause(), None);
        assert_eq!(t.work_done(), 0);
    }

    #[test]
    fn explicit_cancel_sticks_first_cause() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel_with(CancelCause::Outraced);
        t.cancel(); // later causes do not overwrite
        assert_eq!(t.cause(), Some(CancelCause::Outraced));
        assert_eq!(t.cause().unwrap().name(), "outraced");
    }

    #[test]
    fn work_cap_trips_deterministically() {
        let t = CancelToken::with_limits(None, Some(10));
        t.charge(10);
        assert!(!t.is_cancelled(), "cap is inclusive");
        t.charge(1);
        assert_eq!(t.cause(), Some(CancelCause::WorkCap));
    }

    #[test]
    fn deadline_trips() {
        let t = CancelToken::with_limits(Some(Instant::now() - Duration::from_millis(1)), None);
        assert_eq!(t.cause(), Some(CancelCause::Deadline));
        let far = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn children_inherit_parent_cancellation() {
        let parent = CancelToken::new();
        let child = parent.child_with_limits(None, Some(5));
        let grandchild = child.child();
        assert!(!grandchild.is_cancelled());
        parent.cancel();
        assert_eq!(child.cause(), Some(CancelCause::Parent));
        assert_eq!(grandchild.cause(), Some(CancelCause::Parent));
        // Own causes beat inherited ones.
        let sibling = parent.child();
        sibling.cancel_with(CancelCause::Outraced);
        assert_eq!(sibling.cause(), Some(CancelCause::Outraced));
    }

    #[test]
    fn charges_propagate_to_ancestors() {
        let parent = CancelToken::with_limits(None, Some(100));
        let a = parent.child();
        let b = parent.child();
        a.charge(60);
        b.charge(60);
        assert_eq!(parent.work_done(), 120);
        assert_eq!(parent.cause(), Some(CancelCause::WorkCap));
        // Children trip through the parent edge.
        assert_eq!(a.cause(), Some(CancelCause::Parent));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }
}
