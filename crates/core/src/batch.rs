//! Batch solving pipeline.
//!
//! The simulator (and any real scaffolding service) produces many
//! small instances at once; solving them one at a time leaves workers
//! idle and re-allocates DP buffers per score. [`solve_batch`] is a
//! thin loop over the [`SolverRegistry`](crate::SolverRegistry): it
//! resolves the solver name once, then maps the instances over
//! [`fragalign_par::par_map_ordered_init`] with one warm
//! [`DpWorkspace`] per worker and one *shared-nothing* solve context
//! per instance — no cache line is shared between instances, so
//! results are deterministic regardless of thread count and identical
//! to per-instance sequential solves. Any registered solver batches,
//! including `one-csr`, `exact`, and `portfolio`.

use crate::engine::{
    CancelToken, EngineError, EngineOptions, SolveReport, SolverRegistry, TraceHandle,
};
use fragalign_align::DpWorkspace;
use fragalign_model::{Instance, MatchSet, Score};
use fragalign_par::par_map_ordered_init;

/// Options for a batch run: which registered solver, plus the engine
/// knobs every solve shares.
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// Registered solver name (see [`SolverRegistry::names`]).
    pub solver: String,
    /// Engine knobs (scaling, workspace reuse, exact limits).
    pub engine: EngineOptions,
}

impl BatchOptions {
    /// Options for the named solver with engine defaults (workspace
    /// reuse on, unscaled).
    pub fn new(solver: impl Into<String>) -> Self {
        BatchOptions {
            solver: solver.into(),
            engine: EngineOptions::default(),
        }
    }
}

impl Default for BatchOptions {
    /// CSR_Improve, engine defaults.
    fn default() -> Self {
        BatchOptions::new("csr")
    }
}

/// One solved instance of a batch.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSolution {
    /// The consistent match set the solver returned.
    pub matches: MatchSet,
    /// Its total score.
    pub score: Score,
}

/// Solve one instance with a caller-owned workspace. The workspace is
/// scratch only: it seeds the run's oracle pool and never changes
/// results. Every oracle-driven solver borrows it (`csr`/`full`/
/// `border`, `four`, `greedy`, `matching`, `one-csr`); `exact` runs
/// oracle-free and `portfolio` racers pool their own workspaces, so
/// for those two the knob is inert — allocation counts, never
/// results, are at stake either way.
pub fn solve_single(
    inst: &Instance,
    opts: &BatchOptions,
    ws: &mut DpWorkspace,
) -> Result<BatchSolution, EngineError> {
    solve_single_report(inst, opts, ws).map(|(solution, _)| solution)
}

/// [`solve_single`] keeping the engine's telemetry record.
pub fn solve_single_report(
    inst: &Instance,
    opts: &BatchOptions,
    ws: &mut DpWorkspace,
) -> Result<(BatchSolution, SolveReport), EngineError> {
    solve_single_traced(inst, opts, ws, TraceHandle::disabled())
}

/// [`solve_single_report`] recording phase/racer spans through
/// `trace` (the CLI's `--trace` flag and the service's `?trace=1`
/// debug knob route through here). Tracing is observational only:
/// results are bit-identical with any handle.
pub fn solve_single_traced(
    inst: &Instance,
    opts: &BatchOptions,
    ws: &mut DpWorkspace,
    trace: TraceHandle,
) -> Result<(BatchSolution, SolveReport), EngineError> {
    let run = SolverRegistry::global().solve_traced(
        &opts.solver,
        inst,
        opts.engine,
        ws,
        CancelToken::never(),
        trace,
    )?;
    Ok((
        BatchSolution {
            matches: run.matches,
            score: run.score,
        },
        run.report,
    ))
}

/// Solve every instance of a batch on the current rayon pool.
///
/// Results come back in input order; each instance gets its own solve
/// context (shared-nothing) and each worker keeps one warm workspace
/// for the instances it happens to process, so the output is
/// byte-identical for 1 worker, N workers, or a plain sequential loop
/// of [`solve_single`]. Fails fast on an unknown solver name; an
/// instance a solver cannot handle (e.g. `one-csr` on a multi-M
/// instance) surfaces as the first per-instance error.
pub fn solve_batch(
    instances: &[Instance],
    opts: &BatchOptions,
) -> Result<Vec<BatchSolution>, EngineError> {
    let reports = solve_batch_reports(instances, opts)?;
    Ok(reports.into_iter().map(|(solution, _)| solution).collect())
}

/// [`solve_batch`] keeping each instance's telemetry record.
pub fn solve_batch_reports(
    instances: &[Instance],
    opts: &BatchOptions,
) -> Result<Vec<(BatchSolution, SolveReport)>, EngineError> {
    // Resolve once so an unknown name fails before any work runs.
    SolverRegistry::global().spec(&opts.solver)?;
    let mut opts = opts.clone();
    // A thread request applies to the whole batch: install one pool
    // here and strip the knob from the per-instance options so each
    // solve does not rebuild it. Nested parallelism (a parallel solver
    // inside the parallel batch) runs inline on its worker either way.
    let threads = std::mem::take(&mut opts.engine.threads);
    let run = move || {
        let results = par_map_ordered_init(
            (0..instances.len()).collect(),
            DpWorkspace::new,
            move |ws, idx| solve_single_report(&instances[idx], &opts, ws),
        );
        results.into_iter().collect()
    };
    if threads > 0 {
        fragalign_par::with_threads(threads, run).0
    } else {
        run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::check_consistency;
    use fragalign_model::instance::paper_example;

    #[test]
    fn unknown_solver_fails_before_solving() {
        let insts = [paper_example()];
        let err = solve_batch(&insts, &BatchOptions::new("simulated-annealing")).unwrap_err();
        assert!(matches!(err, EngineError::UnknownSolver { .. }));
    }

    #[test]
    fn batch_matches_individual_solves() {
        let insts: Vec<Instance> = (0..3).map(|_| paper_example()).collect();
        for name in ["csr", "four", "greedy", "portfolio"] {
            let opts = BatchOptions::new(name);
            let batch = solve_batch(&insts, &opts).unwrap();
            assert_eq!(batch.len(), 3);
            for (inst, sol) in insts.iter().zip(&batch) {
                check_consistency(inst, &sol.matches).unwrap();
                let mut fresh = DpWorkspace::new();
                let single = solve_single(inst, &opts, &mut fresh).unwrap();
                assert_eq!(sol, &single, "{name}");
            }
        }
        // The improvement family reaches the paper optimum.
        let csr = solve_batch(&insts, &BatchOptions::new("csr")).unwrap();
        assert!(csr.iter().all(|s| s.score == 11));
    }

    #[test]
    fn workspace_reuse_does_not_change_results() {
        let insts: Vec<Instance> = (0..2).map(|_| paper_example()).collect();
        for name in ["csr", "four", "greedy", "matching"] {
            let mut baseline_opts = BatchOptions::new(name);
            baseline_opts.engine.reuse_workspaces = false;
            let baseline = solve_batch(&insts, &baseline_opts).unwrap();
            let reused = solve_batch(&insts, &BatchOptions::new(name)).unwrap();
            assert_eq!(baseline, reused, "{name}");
        }
    }

    #[test]
    fn unsupported_instances_surface_as_errors() {
        let insts = [paper_example()]; // two M fragments
        let err = solve_batch(&insts, &BatchOptions::new("one-csr")).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported { .. }));
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = solve_batch(&[], &BatchOptions::default()).unwrap();
        assert!(out.is_empty());
    }
}
