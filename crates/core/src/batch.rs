//! Batch solving pipeline.
//!
//! The simulator (and any real scaffolding service) produces many
//! small instances at once; solving them one at a time leaves workers
//! idle and re-allocates DP buffers per score. [`solve_batch`] runs a
//! slice of instances through [`fragalign_par::par_map_ordered_init`]
//! with one warm [`DpWorkspace`] per worker and one *shared-nothing*
//! [`ScoreOracle`] per instance: no cache line is shared between
//! instances, so results are deterministic regardless of thread count
//! and identical to per-instance sequential solves.

use fragalign_align::{DpWorkspace, ScoreOracle};
use fragalign_model::{Instance, MatchSet, Score};
use fragalign_par::par_map_ordered_init;

/// Which solver a batch runs — mirrors the CLI's `--algo` values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchAlgo {
    /// CSR_Improve (§4.4): all improvement methods, ratio 3 + ε.
    #[default]
    Csr,
    /// Full_Improve (§4.2): method I1 only.
    Full,
    /// Border_Improve (§4.3): methods I2/I3 only.
    Border,
    /// The Corollary 1 factor-4 algorithm.
    Four,
    /// The greedy baseline.
    Greedy,
    /// Border CSR 2-approximation via matching (Lemma 9).
    Matching,
}

impl std::str::FromStr for BatchAlgo {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "csr" => BatchAlgo::Csr,
            "full" => BatchAlgo::Full,
            "border" => BatchAlgo::Border,
            "four" => BatchAlgo::Four,
            "greedy" => BatchAlgo::Greedy,
            "matching" => BatchAlgo::Matching,
            other => return Err(format!("unknown algorithm '{other}'")),
        })
    }
}

impl std::fmt::Display for BatchAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BatchAlgo::Csr => "csr",
            BatchAlgo::Full => "full",
            BatchAlgo::Border => "border",
            BatchAlgo::Four => "four",
            BatchAlgo::Greedy => "greedy",
            BatchAlgo::Matching => "matching",
        })
    }
}

/// Options for a batch run.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// The solver to run on every instance.
    pub algo: BatchAlgo,
    /// Enable the §4.1 scaling step (improvement algorithms only).
    pub scaling: bool,
    /// Reuse DP workspaces across fills and instances (default).
    /// `false` restores the per-call-allocation baseline that
    /// `exp_throughput` measures against. Only the improvement family
    /// ([`BatchAlgo::Csr`]/[`BatchAlgo::Full`]/[`BatchAlgo::Border`])
    /// accepts an external oracle today, so the knob and the worker
    /// workspace are inert for [`BatchAlgo::Four`],
    /// [`BatchAlgo::Greedy`] (internal oracle, reuse always on) and
    /// [`BatchAlgo::Matching`].
    pub reuse_workspaces: bool,
}

impl BatchOptions {
    /// Options for `algo` with workspace reuse on.
    pub fn new(algo: BatchAlgo) -> Self {
        BatchOptions {
            algo,
            scaling: false,
            reuse_workspaces: true,
        }
    }
}

impl Default for BatchOptions {
    /// CSR_Improve, unscaled, workspace reuse on.
    fn default() -> Self {
        BatchOptions::new(BatchAlgo::default())
    }
}

/// One solved instance of a batch.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSolution {
    /// The consistent match set the solver returned.
    pub matches: MatchSet,
    /// Its total score.
    pub score: Score,
}

/// Solve one instance with a caller-owned workspace. The workspace is
/// scratch only: it never changes results, just skips allocations —
/// and only the improvement family actually borrows it (see
/// [`BatchOptions::reuse_workspaces`]).
pub fn solve_single(inst: &Instance, opts: &BatchOptions, ws: &mut DpWorkspace) -> BatchSolution {
    let matches = match opts.algo {
        BatchAlgo::Csr | BatchAlgo::Full | BatchAlgo::Border => {
            let methods = match opts.algo {
                BatchAlgo::Csr => crate::MethodSet::All,
                BatchAlgo::Full => crate::MethodSet::FullOnly,
                _ => crate::MethodSet::BorderOnly,
            };
            let oracle = ScoreOracle::with_workspace_reuse(inst, opts.reuse_workspaces);
            if opts.reuse_workspaces {
                // Lend the worker's warm buffers to this instance's
                // oracle, and take them back (warmer) afterwards.
                oracle.adopt_workspace(std::mem::take(ws));
            }
            let result = crate::improve::improve_with_oracle(
                &oracle,
                crate::ImproveConfig {
                    methods,
                    scaling: opts.scaling,
                    ..Default::default()
                },
                MatchSet::new(),
            );
            if opts.reuse_workspaces {
                *ws = oracle.reclaim_workspace();
            }
            result.matches
        }
        BatchAlgo::Four => crate::solve_four_approx(inst),
        BatchAlgo::Greedy => crate::solve_greedy(inst),
        BatchAlgo::Matching => crate::border_matching_2approx(inst),
    };
    BatchSolution {
        score: matches.total_score(),
        matches,
    }
}

/// Solve every instance of a batch on the current rayon pool.
///
/// Results come back in input order; each instance gets its own
/// oracle (shared-nothing) and each worker keeps one warm workspace
/// for the instances it happens to process, so the output is
/// byte-identical for 1 worker, N workers, or a plain sequential loop
/// of [`solve_single`].
pub fn solve_batch(instances: &[Instance], opts: &BatchOptions) -> Vec<BatchSolution> {
    let opts = *opts;
    par_map_ordered_init(
        (0..instances.len()).collect(),
        DpWorkspace::new,
        move |ws, idx| solve_single(&instances[idx], &opts, ws),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::check_consistency;
    use fragalign_model::instance::paper_example;
    use std::str::FromStr;

    #[test]
    fn algo_round_trips_through_strings() {
        for name in ["csr", "full", "border", "four", "greedy", "matching"] {
            let algo = BatchAlgo::from_str(name).unwrap();
            assert_eq!(algo.to_string(), name);
        }
        assert!(BatchAlgo::from_str("simulated-annealing").is_err());
    }

    #[test]
    fn batch_matches_individual_solves() {
        let insts: Vec<Instance> = (0..3).map(|_| paper_example()).collect();
        for algo in [BatchAlgo::Csr, BatchAlgo::Four, BatchAlgo::Greedy] {
            let opts = BatchOptions::new(algo);
            let batch = solve_batch(&insts, &opts);
            assert_eq!(batch.len(), 3);
            for (inst, sol) in insts.iter().zip(&batch) {
                check_consistency(inst, &sol.matches).unwrap();
                let mut fresh = DpWorkspace::new();
                let single = solve_single(inst, &opts, &mut fresh);
                assert_eq!(sol, &single, "{algo}");
            }
        }
        // The improvement family reaches the paper optimum.
        let csr = solve_batch(&insts, &BatchOptions::new(BatchAlgo::Csr));
        assert!(csr.iter().all(|s| s.score == 11));
    }

    #[test]
    fn workspace_reuse_does_not_change_results() {
        let insts: Vec<Instance> = (0..2).map(|_| paper_example()).collect();
        let mut baseline_opts = BatchOptions::new(BatchAlgo::Csr);
        baseline_opts.reuse_workspaces = false;
        let baseline = solve_batch(&insts, &baseline_opts);
        let reused = solve_batch(&insts, &BatchOptions::new(BatchAlgo::Csr));
        assert_eq!(baseline, reused);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = solve_batch(&[], &BatchOptions::default());
        assert!(out.is_empty());
    }
}
