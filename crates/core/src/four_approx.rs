//! The factor-4 CSR algorithm (Theorem 3 + Corollary 1).
//!
//! `A'` runs the 1-CSR algorithm twice — on `(H, M′)` and `(M, H′)`,
//! where `F′` concatenates all fragments of `F` into a single word —
//! and keeps the better result. Theorem 3 shows
//! `Opt(H, M′) + Opt(M, H′) ≥ Opt(H, M)`, so a ratio-2 1-CSR solver
//! (TPA, §3.4) yields ratio 4.
//!
//! A 1-CSR match may span the boundaries of the concatenated
//! fragments; to map it back to the original instance we materialise
//! the layout (the alignment traceback laid over the concatenation)
//! and re-derive matches with Definition 2, which splits spanning
//! matches into staircases and plugs while preserving the score
//! (Remark 1).

use fragalign_align::dp::align_words;
use fragalign_align::{DpWorkspace, OracleStatsSnapshot, ScoreOracle};
use fragalign_model::conjecture::PairAssembler;
use fragalign_model::symbol::reverse_word;
use fragalign_model::{FragId, Instance, Match, MatchSet, Site, Species};

/// Map a concat coordinate to `(original fragment, index within it)`.
fn concat_coord(lens: &[usize], pos: usize) -> (usize, usize) {
    let mut off = 0;
    for (i, &l) in lens.iter().enumerate() {
        if pos < off + l {
            return (i, pos - off);
        }
        off += l;
    }
    panic!("position {pos} beyond concatenation");
}

/// Solve `(H, concat(M))` with 1-CSR/TPA and translate the solution
/// back into the original instance. `swap` = solve `(M, concat(H))`
/// instead. The caller-owned workspace seeds the inner concat
/// oracle's pool (scratch only: never changes results); the inner
/// oracle's counters are folded into `stats` so end-to-end telemetry
/// sees the real fill work.
fn one_sided(
    inst: &Instance,
    swap: bool,
    reuse: bool,
    ws: &mut DpWorkspace,
    stats: &mut OracleStatsSnapshot,
) -> MatchSet {
    let base = if swap { inst.swapped() } else { inst.clone() };
    let lens: Vec<usize> = base.m.iter().map(|f| f.len()).collect();
    let concat = base.concat_species(Species::M);
    let concat_inst = Instance {
        h: base.h.clone(),
        m: vec![concat],
        sigma: base.sigma.clone(),
        alphabet: base.alphabet.clone(),
    };
    let inner = ScoreOracle::with_workspace_reuse(&concat_inst, reuse);
    if reuse {
        inner.adopt_workspace(std::mem::take(ws));
    }
    let sol = crate::one_csr::solve_one_csr_with_oracle(&inner);
    if reuse {
        *ws = inner.reclaim_workspace();
    }
    *stats += inner.stats.snapshot();

    // Lay the solution over the original fragments of `base`:
    // the M row is the concatenation in order; each selected H
    // fragment aligns inside its interval.
    let mut selected: Vec<&Match> = sol.as_slice().iter().collect();
    selected.sort_by_key(|m| m.m.lo);
    let mut asm = PairAssembler::new();
    let mut cursor = 0usize; // concat position
    let total: usize = lens.iter().sum();
    let emit_m = |asm: &mut PairAssembler, pos: usize| {
        let (mf, mi) = concat_coord(&lens, pos);
        asm.push(None, Some((FragId::m(mf), mi, false)));
    };
    for mat in selected {
        let (d, e) = (mat.m.lo, mat.m.hi);
        while cursor < d {
            emit_m(&mut asm, cursor);
            cursor += 1;
        }
        let h_frag = mat.h.frag;
        let flip = mat.orient.is_reversed();
        let h_word = {
            let w = &base.fragment(h_frag).regions;
            if flip {
                reverse_word(w)
            } else {
                w.clone()
            }
        };
        let m_word: Vec<_> = (d..e)
            .map(|p| {
                let (mf, mi) = concat_coord(&lens, p);
                base.fragment(FragId::m(mf)).regions[mi]
            })
            .collect();
        let (_, cols) = align_words(&base.sigma, &h_word, &m_word);
        let h_len = base.frag_len(h_frag);
        for (uo, vo) in cols {
            let h_cell = uo.map(|o| {
                let idx = if flip { h_len - 1 - o } else { o };
                (h_frag, idx, flip)
            });
            let m_cell = vo.map(|o| {
                let (mf, mi) = concat_coord(&lens, d + o);
                (FragId::m(mf), mi, false)
            });
            asm.push(h_cell, m_cell);
        }
        cursor = e;
    }
    while cursor < total {
        emit_m(&mut asm, cursor);
        cursor += 1;
    }
    // Unselected H fragments trail at the end.
    for f in base.frag_ids(Species::H) {
        if asm.contains(f) {
            continue;
        }
        for i in 0..base.frag_len(f) {
            asm.push(Some((f, i, false)), None);
        }
    }
    let pair = asm.finish();
    debug_assert!(pair.validate(&base).is_ok(), "{:?}", pair.validate(&base));
    let derived = pair.derive_matches(&base);

    if !swap {
        return derived;
    }
    // Swap species back: a match on the swapped instance pairs
    // (swapped-H = original M, swapped-M = original H).
    let mut out = MatchSet::new();
    for (_, m) in derived.iter() {
        let h = Site::new(FragId::h(m.m.frag.index), m.m.lo, m.m.hi);
        let mm = Site::new(FragId::m(m.h.frag.index), m.h.lo, m.h.hi);
        out.push(Match::new(h, mm, m.orient, m.score));
    }
    out
}

/// The Corollary 1 algorithm: ratio 4 for general CSR.
pub fn solve_four_approx(inst: &Instance) -> MatchSet {
    let oracle = ScoreOracle::new(inst);
    solve_four_approx_with_oracle(&oracle)
}

/// [`solve_four_approx`] with a caller-provided oracle. The two
/// concatenation sides build their own oracles over derived instances
/// (the tables key on different fragments), but they borrow the
/// caller's pooled workspace — so batch workspace reuse reaches the
/// factor-4 solver — and fold their counters back into the caller's
/// stats. Bit-identical to [`solve_four_approx`].
pub fn solve_four_approx_with_oracle(oracle: &ScoreOracle<'_>) -> MatchSet {
    let inst = oracle.instance();
    let reuse = oracle.workspace_reuse();
    let mut ws = if reuse {
        oracle.reclaim_workspace()
    } else {
        DpWorkspace::new()
    };
    let mut stats = OracleStatsSnapshot::default();
    let a = one_sided(inst, false, reuse, &mut ws, &mut stats);
    let b = one_sided(inst, true, reuse, &mut ws, &mut stats);
    if reuse {
        oracle.adopt_workspace(ws);
    }
    oracle.stats.absorb(&stats);
    if a.total_score() >= b.total_score() {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::check_consistency;
    use fragalign_model::instance::paper_example;

    #[test]
    fn paper_example_four_approx() {
        let inst = paper_example();
        let sol = solve_four_approx(&inst);
        check_consistency(&inst, &sol).unwrap();
        // The optimum is 11; factor 4 guarantees ≥ ⌈11/4⌉ = 3. In
        // practice the concatenation sides find much more.
        assert!(sol.total_score() >= 3, "got {}", sol.total_score());
        assert!(sol.total_score() <= 11);
    }

    #[test]
    fn both_sides_consistent() {
        let inst = paper_example();
        for swap in [false, true] {
            let mut ws = DpWorkspace::new();
            let mut stats = OracleStatsSnapshot::default();
            let sol = one_sided(&inst, swap, true, &mut ws, &mut stats);
            check_consistency(&inst, &sol).unwrap_or_else(|e| panic!("swap={swap}: {e}"));
            assert!(stats.dp_fills > 0, "swap={swap}: inner fills not counted");
        }
    }

    #[test]
    fn external_oracle_matches_internal_and_counts_fills() {
        let inst = paper_example();
        let internal = solve_four_approx(&inst);
        for reuse in [true, false] {
            let oracle = ScoreOracle::with_workspace_reuse(&inst, reuse);
            let external = solve_four_approx_with_oracle(&oracle);
            assert_eq!(internal, external, "reuse={reuse}");
            assert!(
                oracle.stats.snapshot().dp_fills > 0,
                "reuse={reuse}: inner oracle fills must be absorbed"
            );
        }
    }

    #[test]
    fn concat_coord_maps_offsets() {
        let lens = vec![2, 3, 1];
        assert_eq!(concat_coord(&lens, 0), (0, 0));
        assert_eq!(concat_coord(&lens, 1), (0, 1));
        assert_eq!(concat_coord(&lens, 2), (1, 0));
        assert_eq!(concat_coord(&lens, 4), (1, 2));
        assert_eq!(concat_coord(&lens, 5), (2, 0));
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn concat_coord_bounds() {
        concat_coord(&[2, 2], 4);
    }
}
