//! Iterative improvement algorithms (§4 of the paper).
//!
//! The solution is maintained as a consistent set of matches; the
//! algorithm repeatedly makes *improvement attempts* — each discards
//! some matches and creates new ones, using the TPA subroutine to
//! refill freed sites — and commits attempts with positive gain until
//! none exists.
//!
//! * **Full_Improve** (§4.2, Theorem 4): method [`I1`] only — plug a
//!   fragment into a target site, TPA the leftovers. Ratio 3 + ε for
//!   Full CSR.
//! * **Border_Improve** (§4.3, Theorem 5): methods I2/I3 — make
//!   staircase (border) matches, breaking and re-forming 2-islands.
//!   Ratio 3 + ε for Border CSR.
//! * **CSR_Improve** (§4.4, Theorem 6): all methods, with I2/I3
//!   extended by TPA runs on the prepared containers. Ratio 3 + ε.
//!
//! Implementation notes (DESIGN.md D1–D4): attempts are applied to a
//! clone of the current match set and committed only when the (scaled)
//! total score strictly increases, so consistency and monotonicity are
//! invariants rather than proof obligations; candidate attempts are
//! evaluated in parallel with rayon; the Chandra–Halldórsson scaling
//! step (§4.1) optionally truncates scores to multiples of `X/k²`,
//! bounding the number of rounds by `4k²`.
//!
//! [`I1`]: Attempt::I1

mod driver;
mod enumerate;
mod ops;

pub use driver::{
    border_improve, csr_improve, full_improve, improve, improve_with_oracle,
    improve_with_oracle_ctl, ImproveConfig, ImproveResult,
};
pub use enumerate::{enumerate_attempts, Attempt, Budget, I2Bundle};
pub use ops::{
    apply_attempt, detach_fragment, make_border, plug_full, prepare_site, tpa_fill, trunc_total,
    ApplyError, CannotPrepare,
};

/// Which improvement methods the driver enumerates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodSet {
    /// I1 only (Full CSR, §4.2).
    FullOnly,
    /// I2 and I3 only (Border CSR, §4.3).
    BorderOnly,
    /// All methods (general CSR, §4.4).
    All,
}
