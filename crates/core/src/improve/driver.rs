//! The improvement loop: enumerate → evaluate (in parallel) → commit.

use super::enumerate::{enumerate_attempts, Budget};
use super::ops::{apply_attempt, trunc_total};
use super::MethodSet;
use crate::cancel::CancelToken;
use fragalign_align::ScoreOracle;
use fragalign_model::{check_consistency, Instance, MatchSet, Score};
use rayon::prelude::*;

/// Configuration of the iterative improvement driver.
#[derive(Clone, Copy, Debug)]
pub struct ImproveConfig {
    /// Which improvement methods run.
    pub methods: MethodSet,
    /// Enable the §4.1 scaling step: truncate match scores to
    /// multiples of `X/k²` where `X` is the 4-approximation score,
    /// bounding the number of rounds by `4k²`. `None` runs unscaled
    /// (exact gains, potentially more rounds).
    pub scaling: bool,
    /// Hard cap on improvement rounds (0 = automatic).
    pub max_rounds: usize,
    /// Maximum I1 target-site length.
    pub site_cap: usize,
    /// Maximum border-site length.
    pub border_cap: usize,
    /// Plug candidates per I1 target.
    pub plugs_per_target: usize,
    /// Border bundles per fragment pair.
    pub borders_per_pair: usize,
    /// Evaluate attempts with rayon.
    pub parallel: bool,
    /// Commit the best attempt of the round (`true`, default) or the
    /// first positive one (`false`) — ablation D1.
    pub commit_best: bool,
}

impl Default for ImproveConfig {
    fn default() -> Self {
        ImproveConfig {
            methods: MethodSet::All,
            scaling: false,
            max_rounds: 0,
            site_cap: 64,
            border_cap: 64,
            plugs_per_target: 2,
            borders_per_pair: 4,
            parallel: true,
            commit_best: true,
        }
    }
}

/// Outcome of an improvement run.
#[derive(Clone, Debug)]
pub struct ImproveResult {
    /// The final consistent match set.
    pub matches: MatchSet,
    /// Its true (untruncated) total score.
    pub score: Score,
    /// Number of committed improvements.
    pub rounds: usize,
    /// Number of attempts evaluated over all rounds.
    pub attempts_evaluated: usize,
    /// The scaling quantum used (1 = unscaled).
    pub quantum: Score,
    /// Whether the run stopped early on its cancellation token;
    /// `matches` is then the best committed state so far (the loop is
    /// anytime: every round boundary holds a consistent solution).
    pub cancelled: bool,
}

/// Run iterative improvement from `initial` (the paper starts from the
/// empty set; seeding with a 4-approximation is a supported variant).
pub fn improve(inst: &Instance, config: ImproveConfig, initial: MatchSet) -> ImproveResult {
    let oracle = ScoreOracle::new(inst);
    improve_with_oracle(&oracle, config, initial)
}

/// [`improve`] with a caller-provided oracle (reuses DP caches across
/// runs; used by benches and the ablation experiments).
pub fn improve_with_oracle(
    oracle: &ScoreOracle<'_>,
    config: ImproveConfig,
    initial: MatchSet,
) -> ImproveResult {
    improve_with_oracle_ctl(oracle, config, initial, &CancelToken::never())
}

/// [`improve_with_oracle`] under a live [`CancelToken`]: the loop
/// polls the token at every round boundary and charges one work unit
/// per evaluated attempt, so work-capped tokens stop the run at a
/// deterministic round. On cancellation the current committed state —
/// always a consistent match set — is returned with
/// [`ImproveResult::cancelled`] set.
pub fn improve_with_oracle_ctl(
    oracle: &ScoreOracle<'_>,
    config: ImproveConfig,
    initial: MatchSet,
    ctl: &CancelToken,
) -> ImproveResult {
    let inst = oracle.instance();
    let k = inst.match_count_bound() as Score;
    let quantum = if config.scaling {
        // X: score of the factor-4 algorithm (Corollary 1); the optimum
        // is at most 4X, each improvement gains ≥ X/k², so at most 4k²
        // rounds occur.
        let x = crate::four_approx::solve_four_approx(inst)
            .total_score()
            .max(initial.total_score());
        (x / (k * k)).max(1)
    } else {
        1
    };
    let auto_rounds = if config.scaling {
        (4 * k * k + k) as usize
    } else {
        10_000
    };
    let max_rounds = if config.max_rounds == 0 {
        auto_rounds
    } else {
        config.max_rounds
    };
    let budget = Budget {
        site_cap: config.site_cap,
        border_cap: config.border_cap,
        plugs_per_target: config.plugs_per_target,
        borders_per_pair: config.borders_per_pair,
    };

    let mut current = initial;
    let mut cur_trunc = trunc_total(&current, quantum);
    let mut rounds = 0;
    let mut attempts_evaluated = 0;
    let mut cancelled = false;

    // The oracle carries the trace handle, so the round loop spans
    // without a signature change; each committed round records its
    // gain and attempt count in the span args.
    let trace = oracle.trace().clone();

    while rounds < max_rounds {
        if ctl.is_cancelled() {
            cancelled = true;
            break;
        }
        let mut round_span = trace.span("improve_round");
        let candidates = enumerate_attempts(oracle, &current, config.methods, budget);
        attempts_evaluated += candidates.len();
        ctl.charge(candidates.len() as u64);
        if candidates.is_empty() {
            break;
        }

        let evaluate =
            |(idx, attempt): (usize, &super::Attempt)| -> Option<(Score, usize, MatchSet)> {
                let mut clone = current.clone();
                apply_attempt(&mut clone, attempt, oracle, quantum).ok()?;
                let gain = trunc_total(&clone, quantum) - cur_trunc;
                (gain > 0).then_some((gain, idx, clone))
            };

        // Deterministic winner: maximum gain, ties to the lowest index.
        let best = if config.parallel {
            candidates
                .par_iter()
                .enumerate()
                .filter_map(evaluate)
                .reduce_with(pick)
        } else if config.commit_best {
            candidates
                .iter()
                .enumerate()
                .filter_map(evaluate)
                .reduce(pick)
        } else {
            candidates.iter().enumerate().filter_map(evaluate).next()
        };

        round_span.set_args(
            best.as_ref().map_or(0, |(gain, _, _)| *gain),
            candidates.len() as i64,
        );
        drop(round_span);
        let Some((_, idx, next)) = best else { break };
        if cfg!(debug_assertions) {
            if let Err(e) = check_consistency(inst, &next) {
                panic!(
                    "improvement produced an inconsistent solution: {e}\n\
                     attempt: {:?}\nbefore: {:?}\nafter: {:?}",
                    candidates[idx], current, next
                );
            }
        }
        debug_assert!(trunc_total(&next, quantum) > cur_trunc);
        current = next;
        cur_trunc = trunc_total(&current, quantum);
        rounds += 1;
    }

    let score = current.total_score();
    ImproveResult {
        matches: current,
        score,
        rounds,
        attempts_evaluated,
        quantum,
        cancelled,
    }
}

/// Deterministic preference: larger gain first, then lower index.
fn pick(a: (Score, usize, MatchSet), b: (Score, usize, MatchSet)) -> (Score, usize, MatchSet) {
    if (b.0, std::cmp::Reverse(b.1)) > (a.0, std::cmp::Reverse(a.1)) {
        b
    } else {
        a
    }
}

/// Full_Improve (§4.2, Theorem 4): method I1 only, from the empty set.
pub fn full_improve(inst: &Instance, scaling: bool) -> ImproveResult {
    improve(
        inst,
        ImproveConfig {
            methods: MethodSet::FullOnly,
            scaling,
            ..Default::default()
        },
        MatchSet::new(),
    )
}

/// Border_Improve (§4.3, Theorem 5): methods I2/I3 only.
pub fn border_improve(inst: &Instance, scaling: bool) -> ImproveResult {
    improve(
        inst,
        ImproveConfig {
            methods: MethodSet::BorderOnly,
            scaling,
            ..Default::default()
        },
        MatchSet::new(),
    )
}

/// CSR_Improve (§4.4, Theorem 6): all methods.
pub fn csr_improve(inst: &Instance, scaling: bool) -> ImproveResult {
    improve(
        inst,
        ImproveConfig {
            methods: MethodSet::All,
            scaling,
            ..Default::default()
        },
        MatchSet::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::instance::paper_example;

    #[test]
    fn paper_example_reaches_optimum_11() {
        let inst = paper_example();
        let result = csr_improve(&inst, false);
        check_consistency(&inst, &result.matches).unwrap();
        assert_eq!(result.score, 11, "matches: {:?}", result.matches);
    }

    #[test]
    fn full_improve_is_consistent_and_positive() {
        let inst = paper_example();
        let result = full_improve(&inst, false);
        check_consistency(&inst, &result.matches).unwrap();
        // Full matches alone reach σ(a,s)+σ(c,u)+σ(d,*)-style scores;
        // at least the two heavy plugs must be found.
        assert!(result.score >= 9, "got {}", result.score);
    }

    #[test]
    fn border_improve_is_consistent() {
        let inst = paper_example();
        let result = border_improve(&inst, false);
        check_consistency(&inst, &result.matches).unwrap();
        assert!(result.score > 0);
    }

    #[test]
    fn scaling_bounds_rounds() {
        let inst = paper_example();
        let k = inst.match_count_bound() as i64;
        let result = csr_improve(&inst, true);
        assert!(result.rounds <= (4 * k * k + k) as usize);
        assert!(result.quantum >= 1);
        check_consistency(&inst, &result.matches).unwrap();
    }

    #[test]
    fn sequential_matches_parallel() {
        let inst = paper_example();
        let par = csr_improve(&inst, false);
        let seq = improve(
            &inst,
            ImproveConfig {
                parallel: false,
                ..Default::default()
            },
            fragalign_model::MatchSet::new(),
        );
        assert_eq!(par.score, seq.score);
    }

    #[test]
    fn first_positive_commit_policy_terminates() {
        let inst = paper_example();
        let res = improve(
            &inst,
            ImproveConfig {
                parallel: false,
                commit_best: false,
                ..Default::default()
            },
            fragalign_model::MatchSet::new(),
        );
        check_consistency(&inst, &res.matches).unwrap();
        assert!(res.score > 0);
    }
}
