//! Primitive solution operations: site preparation, plugging,
//! detaching, and the TPA(B, S) subroutine of §4.2.

use fragalign_align::ScoreOracle;
use fragalign_isp::{solve_tpa, Interval, IspInstance};
use fragalign_model::{FragId, Instance, Match, MatchSet, Orient, Score, Site, SiteClass, Species};
use std::collections::HashSet;

/// A site could not be prepared because it is hidden by a matched site
/// (Definition 5: only non-hidden sites are preparable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CannotPrepare {
    /// The site that could not be prepared.
    pub site: Site,
}

impl std::fmt::Display for CannotPrepare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "site {:?} is hidden by the current solution", self.site)
    }
}

impl std::error::Error for CannotPrepare {}

/// Why an attempt could not be applied to the current solution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyError {
    /// A container site was hidden and could not be prepared.
    Prepare(CannotPrepare),
    /// The attempt's border match would close a cycle of border
    /// matches (consistency rule: border matches form simple paths),
    /// which no conjecture pair can realise.
    WouldCloseBorderCycle {
        /// H-side fragment of the rejected border match.
        h: FragId,
        /// M-side fragment of the rejected border match.
        m: FragId,
    },
}

impl From<CannotPrepare> for ApplyError {
    fn from(e: CannotPrepare) -> Self {
        ApplyError::Prepare(e)
    }
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::Prepare(e) => e.fmt(f),
            ApplyError::WouldCloseBorderCycle { h, m } => {
                write!(f, "border match {h:?}~{m:?} would close a border cycle")
            }
        }
    }
}

impl std::error::Error for ApplyError {}

/// Whether fragments `a` and `b` are already connected by a path of
/// border matches in `set`. Creating one more border match between
/// them would then violate the forest invariant (check_consistency
/// rule 5), so [`apply_attempt`] refuses such attempts up front.
fn border_connected(set: &MatchSet, inst: &Instance, a: FragId, b: FragId) -> bool {
    let mut index: std::collections::HashMap<FragId, usize> =
        std::collections::HashMap::from([(a, 0), (b, 1)]);
    for (_, m) in set.iter() {
        for f in [m.h.frag, m.m.frag] {
            let next = index.len();
            index.entry(f).or_insert(next);
        }
    }
    let mut dsu = fragalign_model::Dsu::new(index.len());
    for (_, m) in set.iter() {
        let kind = m.kind(inst.frag_len(m.h.frag), inst.frag_len(m.m.frag));
        if matches!(kind, Some(fragalign_model::MatchKind::Border { .. })) {
            dsu.union(index[&m.h.frag], index[&m.m.frag]);
        }
    }
    dsu.find(0) == dsu.find(1)
}

/// Truncate a score to a multiple of `quantum` (§4.1 scaling); a
/// quantum of 1 (or 0) is the identity.
#[inline]
pub fn trunc(score: Score, quantum: Score) -> Score {
    if quantum <= 1 {
        score
    } else {
        score.div_euclid(quantum) * quantum
    }
}

/// Truncated total score of a match set.
pub fn trunc_total(set: &MatchSet, quantum: Score) -> Score {
    set.iter().map(|(_, m)| trunc(m.score, quantum)).sum()
}

/// Truncated contribution `Cb(f, S)`.
pub fn cb_trunc(set: &MatchSet, frag: FragId, quantum: Score) -> Score {
    set.iter()
        .filter(|(_, m)| m.site_on(frag).is_some())
        .map(|(_, m)| trunc(m.score, quantum))
        .sum()
}

/// Order two opposite-species sites as (H site, M site).
fn hm(a: Site, b: Site) -> (Site, Site) {
    debug_assert_ne!(a.frag.species, b.frag.species);
    if a.frag.species == Species::H {
        (a, b)
    } else {
        (b, a)
    }
}

/// Shrink one side of a match to `piece` (the part surviving a
/// preparation cut), rescoring through the oracle. Returns `None` when
/// the shrunken match is no longer structurally realisable, in which
/// case the caller removes it entirely (the paper's Fig. 9(b)
/// "preparation detaches g from f1" case).
fn try_shrink(oracle: &ScoreOracle<'_>, mat: &Match, on: FragId, piece: Site) -> Option<Match> {
    let inst = oracle.instance();
    let (h, m) = if mat.h.frag == on {
        (piece, mat.m)
    } else {
        (mat.h, piece)
    };
    let candidate_kind = Match {
        h,
        m,
        orient: mat.orient,
        score: 0,
    }
    .kind(inst.frag_len(h.frag), inst.frag_len(m.frag))?;
    match candidate_kind {
        fragalign_model::MatchKind::Full { .. } => {
            let (score, orient) = oracle.ms(h, m);
            Some(Match::new(h, m, orient, score))
        }
        fragalign_model::MatchKind::Border { h_end, m_end } => {
            // Staircase condition forces the orientation.
            let orient = if h_end != m_end {
                Orient::Same
            } else {
                Orient::Reversed
            };
            let score = oracle.ms_oriented(h, m, orient);
            Some(Match::new(h, m, orient, score))
        }
    }
}

/// Prepare a site (§4.2): make `site` free of matches so something can
/// be plugged there. Matches whose site on the fragment is contained
/// in `site` are removed; partially overlapping matches are restricted
/// to the surviving piece and rescored, or removed when the restricted
/// match would be structurally invalid. Fails iff `site` is hidden.
///
/// Returns the sites freed on *other* fragments by removed matches
/// (excluding freed full sites — the corresponding fragments are
/// simply unmatched now and re-enter TPA as jobs).
pub fn prepare_site(
    set: &mut MatchSet,
    site: Site,
    oracle: &ScoreOracle<'_>,
) -> Result<Vec<Site>, CannotPrepare> {
    let inst = oracle.instance();
    let mut removals: Vec<usize> = Vec::new();
    let mut rewrites: Vec<(usize, Match)> = Vec::new();
    let mut freed: Vec<Site> = Vec::new();
    for (id, m) in set.iter() {
        let Some(my) = m.site_on(site.frag) else {
            continue;
        };
        if !my.overlaps(&site) {
            continue;
        }
        if site.hidden_by(&my) {
            return Err(CannotPrepare { site });
        }
        let other = m.other_site(site.frag).expect("cross-species match");
        if my.contained_in(&site) {
            removals.push(id);
            if !other.is_full(inst.frag_len(other.frag)) {
                freed.push(other);
            }
            continue;
        }
        let pieces = my.minus(&site);
        debug_assert_eq!(pieces.len(), 1, "non-hidden overlap leaves one piece");
        match try_shrink(oracle, m, site.frag, pieces[0]) {
            Some(new_match) => rewrites.push((id, new_match)),
            None => {
                removals.push(id);
                if !other.is_full(inst.frag_len(other.frag)) {
                    freed.push(other);
                }
            }
        }
    }
    for (id, new_match) in rewrites {
        *set.get_mut(id).expect("id valid") = new_match;
    }
    set.remove_many(&removals);
    Ok(freed)
}

/// Remove every match touching `frag`, returning the sites freed on
/// other fragments (non-full sites only, as in [`prepare_site`]).
pub fn detach_fragment(set: &mut MatchSet, frag: FragId, oracle: &ScoreOracle<'_>) -> Vec<Site> {
    let inst = oracle.instance();
    let ids = set.matches_on(frag);
    let mut freed = Vec::new();
    for &id in &ids {
        let m = &set.as_slice()[id];
        let other = m.other_site(frag).expect("cross-species match");
        if !other.is_full(inst.frag_len(other.frag)) {
            freed.push(other);
        }
    }
    set.remove_many(&ids);
    freed
}

/// Create the full match plugging `plug` (whole fragment) into
/// `container_site`, scored by the oracle with free orientation.
pub fn plug_full(set: &mut MatchSet, plug: FragId, container_site: Site, oracle: &ScoreOracle<'_>) {
    let inst = oracle.instance();
    let full = Site::full(plug, inst.frag_len(plug));
    let (h, m) = hm(full, container_site);
    let (score, orient) = oracle.ms(h, m);
    set.push(Match::new(h, m, orient, score));
}

/// Create a border (staircase) match between two border sites; the
/// orientation is forced by the ends.
pub fn make_border(set: &mut MatchSet, a: Site, b: Site, oracle: &ScoreOracle<'_>) {
    let inst = oracle.instance();
    let (h, m) = hm(a, b);
    let h_end = match h.classify(inst.frag_len(h.frag)) {
        SiteClass::Border(e) => e,
        c => panic!("make_border on non-border H site ({c:?})"),
    };
    let m_end = match m.classify(inst.frag_len(m.frag)) {
        SiteClass::Border(e) => e,
        c => panic!("make_border on non-border M site ({c:?})"),
    };
    let orient = if h_end != m_end {
        Orient::Same
    } else {
        Orient::Reversed
    };
    let score = oracle.ms_oriented(h, m, orient);
    set.push(Match::new(h, m, orient, score));
}

/// The TPA(B, S) subroutine of §4.2: refill the free `zones` with full
/// matches chosen by the two-phase interval-selection algorithm.
///
/// * `zones` — disjoint sites, all on fragments of one species; they
///   are sanitised against the current solution (portions already
///   matched are subtracted) so callers can pass freed sites
///   optimistically.
/// * `exclude` — fragments that must not be used as plugs (e.g. the
///   fragment just plugged by the surrounding improvement attempt).
/// * profits are `MS(f, zone interval) − Cb(f, S)` (both truncated
///   under `quantum`), exactly the profit function of §4.2.
///
/// Selected candidates detach their fragment from its old matches and
/// plug it into the chosen interval.
pub fn tpa_fill(
    set: &mut MatchSet,
    zones: &[Site],
    exclude: &HashSet<FragId>,
    oracle: &ScoreOracle<'_>,
    quantum: Score,
) {
    let inst = oracle.instance();
    if zones.is_empty() {
        return;
    }
    let zone_species = zones[0].frag.species;
    debug_assert!(zones.iter().all(|z| z.frag.species == zone_species));

    // Sanitise: subtract currently matched sites from each zone.
    let by_frag = set.sites_by_fragment();
    let mut clean: Vec<Site> = Vec::new();
    for &z in zones {
        let mut pieces = vec![z];
        if let Some(sites) = by_frag.get(&z.frag) {
            for &(_, s) in sites {
                let mut next = Vec::new();
                for p in pieces {
                    next.extend(p.minus(&s));
                }
                pieces = next;
            }
        }
        clean.extend(pieces);
    }
    // Merge duplicates/overlaps between passed zones defensively.
    clean.sort_by_key(|s| (s.frag, s.lo, s.hi));
    clean.dedup();
    if clean.is_empty() {
        return;
    }

    let plug_species = zone_species.other();
    let jobs: Vec<FragId> = inst
        .frag_ids(plug_species)
        .filter(|f| !exclude.contains(f))
        .collect();
    if jobs.is_empty() {
        return;
    }

    // ISP instance: zone k occupies coordinates [base_k, base_k + len).
    let mut bases = Vec::with_capacity(clean.len());
    let mut cursor: i64 = 0;
    for z in &clean {
        bases.push(cursor);
        cursor += z.len() as i64 + 1; // +1 gap: intervals cannot span zones
    }
    let mut isp = IspInstance::new(jobs.len());
    // tag encodes (zone index, d, e) densely.
    let mut tags: Vec<(usize, usize, usize)> = Vec::new();
    for (ji, &f) in jobs.iter().enumerate() {
        let cb = cb_trunc(set, f, quantum);
        for (zi, z) in clean.iter().enumerate() {
            let table = oracle.interval_table(f, z.frag);
            for d in z.lo..z.hi {
                for e in (d + 1)..=z.hi {
                    let (ms, _) = table.get(d, e);
                    let profit = trunc(ms, quantum) - cb;
                    if profit > 0 {
                        let tag = tags.len();
                        tags.push((zi, d, e));
                        isp.push(
                            ji,
                            Interval::new(
                                bases[zi] + (d - z.lo) as i64,
                                bases[zi] + (e - z.lo) as i64,
                            ),
                            profit,
                            tag,
                        );
                    }
                }
            }
        }
    }
    let selection = solve_tpa(&isp);
    for c in &selection.chosen {
        let (zi, d, e) = tags[c.tag];
        let f = jobs[c.job];
        detach_fragment(set, f, oracle);
        plug_full(set, f, Site::new(clean[zi].frag, d, e), oracle);
    }
}

/// Collect freed sites into per-species zone lists.
pub fn split_freed_by_species(freed: &[Site]) -> (Vec<Site>, Vec<Site>) {
    let mut h = Vec::new();
    let mut m = Vec::new();
    for &s in freed {
        match s.frag.species {
            Species::H => h.push(s),
            Species::M => m.push(s),
        }
    }
    (h, m)
}

/// Apply one improvement attempt to `set`. On success `set` holds the
/// attempt's result; the caller decides whether to commit by comparing
/// (truncated) total scores. Errors leave `set` in an unspecified
/// state — always apply to a clone.
pub fn apply_attempt(
    set: &mut MatchSet,
    attempt: &super::Attempt,
    oracle: &ScoreOracle<'_>,
    quantum: Score,
) -> Result<(), ApplyError> {
    // Transactional: preparation and the border-cycle guard can fail
    // partway through a multi-step attempt, so mutate a scratch copy
    // and commit only on success — `set` is untouched on `Err`.
    let mut work = set.clone();
    apply_attempt_steps(&mut work, attempt, oracle, quantum)?;
    *set = work;
    Ok(())
}

fn apply_attempt_steps(
    set: &mut MatchSet,
    attempt: &super::Attempt,
    oracle: &ScoreOracle<'_>,
    quantum: Score,
) -> Result<(), ApplyError> {
    use super::Attempt;
    match attempt {
        Attempt::I1 {
            plug,
            target,
            container,
        } => {
            let freed1 = prepare_site(set, *container, oracle)?;
            let freed2 = detach_fragment(set, *plug, oracle);
            plug_full(set, *plug, *target, oracle);
            let exclude: HashSet<FragId> = [*plug].into_iter().collect();
            // Step 3: TPA on the container leftovers.
            tpa_fill(set, &container.minus(target), &exclude, oracle, quantum);
            // Step 4 (+D6 extension): TPA on sites freed by preparation
            // and by detaching the plug, grouped per species.
            let (zh, zm) = split_freed_by_species(
                &freed1
                    .iter()
                    .chain(freed2.iter())
                    .copied()
                    .collect::<Vec<_>>(),
            );
            tpa_fill(set, &zm, &exclude, oracle, quantum);
            tpa_fill(set, &zh, &exclude, oracle, quantum);
            Ok(())
        }
        Attempt::I2 {
            h_site,
            m_site,
            h_container,
            m_container,
        } => {
            let freed_h = prepare_site(set, *h_container, oracle)?;
            let freed_m = prepare_site(set, *m_container, oracle)?;
            if border_connected(set, oracle.instance(), h_site.frag, m_site.frag) {
                return Err(ApplyError::WouldCloseBorderCycle {
                    h: h_site.frag,
                    m: m_site.frag,
                });
            }
            make_border(set, *h_site, *m_site, oracle);
            let exclude: HashSet<FragId> = [h_site.frag, m_site.frag].into_iter().collect();
            // M-side zones: container leftovers on the M fragment plus
            // freed M sites; then symmetrically for H.
            let (fh, fm) = split_freed_by_species(
                &freed_h
                    .iter()
                    .chain(freed_m.iter())
                    .copied()
                    .collect::<Vec<_>>(),
            );
            let mut zones_m = m_container.minus(m_site);
            zones_m.extend(fm);
            tpa_fill(set, &zones_m, &exclude, oracle, quantum);
            let mut zones_h = h_container.minus(h_site);
            zones_h.extend(fh);
            tpa_fill(set, &zones_h, &exclude, oracle, quantum);
            Ok(())
        }
        Attempt::I3 { first, second } => {
            // Two coordinated I2 bundles (break a 2-island, re-match
            // both multiple fragments to new partners).
            let mut freed_all: Vec<Site> = Vec::new();
            for b in [first, second] {
                freed_all.extend(prepare_site(set, b.h_container, oracle)?);
                freed_all.extend(prepare_site(set, b.m_container, oracle)?);
            }
            for b in [first, second] {
                // Re-check per bundle: the first border changes border
                // connectivity for the second.
                if border_connected(set, oracle.instance(), b.h_site.frag, b.m_site.frag) {
                    return Err(ApplyError::WouldCloseBorderCycle {
                        h: b.h_site.frag,
                        m: b.m_site.frag,
                    });
                }
                make_border(set, b.h_site, b.m_site, oracle);
            }
            let exclude: HashSet<FragId> = [
                first.h_site.frag,
                first.m_site.frag,
                second.h_site.frag,
                second.m_site.frag,
            ]
            .into_iter()
            .collect();
            let (fh, fm) = split_freed_by_species(&freed_all);
            let mut zones_m: Vec<Site> = Vec::new();
            let mut zones_h: Vec<Site> = Vec::new();
            for b in [first, second] {
                zones_m.extend(b.m_container.minus(&b.m_site));
                zones_h.extend(b.h_container.minus(&b.h_site));
            }
            zones_m.extend(fm);
            zones_h.extend(fh);
            tpa_fill(set, &zones_m, &exclude, oracle, quantum);
            tpa_fill(set, &zones_h, &exclude, oracle, quantum);
            Ok(())
        }
    }
}
