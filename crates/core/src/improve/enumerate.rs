//! Candidate improvement attempts.
//!
//! The paper quantifies improvement methods over all sites `f(i, j)`;
//! we enumerate a polynomially bounded candidate set that contains the
//! attempt shapes the §4 analysis uses (DESIGN.md decision D3):
//!
//! * **I1(f, ḡ, ĝ)** — target sites `ḡ` range over all non-hidden
//!   sites up to a length cap; the container `ĝ` is either `ḡ` itself
//!   or its maximal extension over currently free positions (the
//!   analogue of `zone(ḡ)`). Plug fragments are pruned to the most
//!   profitable few per target.
//! * **I2(f̄₁, ḡ₁, …)** — border sites are prefixes/suffixes below a
//!   length cap; the orientation is forced by the end combination; the
//!   best few bundles per fragment pair are kept.
//! * **I3** — pairs of I2 bundles that re-match the two multiple
//!   fragments of an existing border match to new partners.

use super::MethodSet;
use fragalign_align::ScoreOracle;
use fragalign_model::{FragId, MatchSet, Score, Site, SiteClass, Species};
use std::collections::HashMap;

/// One I2-style border-match creation: the two border sites and their
/// prepared containers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct I2Bundle {
    /// Border site on the H fragment.
    pub h_site: Site,
    /// Container prepared around `h_site`.
    pub h_container: Site,
    /// Border site on the M fragment.
    pub m_site: Site,
    /// Container prepared around `m_site`.
    pub m_container: Site,
}

/// An improvement attempt (methods I1/I2/I3 of §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attempt {
    /// Plug `plug` wholly into `target`; prepare `container ⊇ target`
    /// and TPA the difference (§4.2).
    I1 {
        /// Fragment plugged in as a full match.
        plug: FragId,
        /// Site receiving the plug.
        target: Site,
        /// Prepared surrounding site (`zone(target)`).
        container: Site,
    },
    /// Make one border match (§4.3/§4.4).
    I2 {
        /// Border site on the H fragment.
        h_site: Site,
        /// Border site on the M fragment.
        m_site: Site,
        /// Container prepared around `h_site`.
        h_container: Site,
        /// Container prepared around `m_site`.
        m_container: Site,
    },
    /// Break a 2-island and re-match both multiple fragments (§4.3).
    I3 {
        /// Re-match of the island's H fragment.
        first: I2Bundle,
        /// Re-match of the island's M fragment.
        second: I2Bundle,
    },
}

/// Enumeration budget knobs (defaults in `ImproveConfig`).
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum length of an I1 target site.
    pub site_cap: usize,
    /// Maximum length of a border site.
    pub border_cap: usize,
    /// Plug candidates kept per I1 target.
    pub plugs_per_target: usize,
    /// I2 bundles kept per (H fragment, M fragment) pair.
    pub borders_per_pair: usize,
}

/// Positions of `frag` covered by matched sites, as a sorted list of
/// disjoint sites.
fn covered(by_frag: &HashMap<FragId, Vec<(usize, Site)>>, frag: FragId) -> Vec<Site> {
    by_frag
        .get(&frag)
        .map(|v| v.iter().map(|&(_, s)| s).collect())
        .unwrap_or_default()
}

/// Maximal extension of `site` over positions not covered by any
/// matched site (the canonical container, DESIGN.md D3).
fn free_extension(cov: &[Site], frag_len: usize, site: Site) -> Site {
    let mut lo = site.lo;
    let mut hi = site.hi;
    // Grow left while position lo-1 is free of sites disjoint from `site`.
    'left: while lo > 0 {
        let p = lo - 1;
        for c in cov {
            if c.lo <= p && p < c.hi && !c.overlaps(&site) {
                break 'left;
            }
        }
        lo -= 1;
    }
    'right: while hi < frag_len {
        let p = hi;
        for c in cov {
            if c.lo <= p && p < c.hi && !c.overlaps(&site) {
                break 'right;
            }
        }
        hi += 1;
    }
    Site::new(site.frag, lo, hi)
}

/// Whether `site` is hidden by one of the covered sites.
fn is_hidden(cov: &[Site], site: Site) -> bool {
    cov.iter().any(|c| site.hidden_by(c))
}

/// Enumerate candidate attempts for the current solution.
pub fn enumerate_attempts(
    oracle: &ScoreOracle<'_>,
    set: &MatchSet,
    methods: MethodSet,
    budget: Budget,
) -> Vec<Attempt> {
    let inst = oracle.instance();
    let by_frag = set.sites_by_fragment();
    let mut out = Vec::new();

    if matches!(methods, MethodSet::FullOnly | MethodSet::All) {
        // ---- I1 -----------------------------------------------------
        for g in inst.all_frag_ids() {
            let g_len = inst.frag_len(g);
            let cov = covered(&by_frag, g);
            let plugs: Vec<FragId> = inst.frag_ids(g.species.other()).collect();
            for lo in 0..g_len {
                for hi in (lo + 1)..=(g_len.min(lo + budget.site_cap)) {
                    let target = Site::new(g, lo, hi);
                    if is_hidden(&cov, target) {
                        continue;
                    }
                    // Rank plug candidates by optimistic profit.
                    let mut ranked: Vec<(Score, FragId)> = plugs
                        .iter()
                        .filter_map(|&f| {
                            let (ms, _) = oracle.ms_full_vs_interval(f, g, lo, hi);
                            let profit = ms - set.contribution(f);
                            (profit > 0).then_some((profit, f))
                        })
                        .collect();
                    ranked.sort_by_key(|&(p, f)| (std::cmp::Reverse(p), f));
                    ranked.truncate(budget.plugs_per_target);
                    if ranked.is_empty() {
                        continue;
                    }
                    let ext = free_extension(&cov, g_len, target);
                    for &(_, f) in &ranked {
                        out.push(Attempt::I1 {
                            plug: f,
                            target,
                            container: target,
                        });
                        if ext != target {
                            out.push(Attempt::I1 {
                                plug: f,
                                target,
                                container: ext,
                            });
                        }
                    }
                }
            }
        }
    }

    if matches!(methods, MethodSet::BorderOnly | MethodSet::All) {
        // ---- I2 -----------------------------------------------------
        let mut bundles: Vec<(Score, I2Bundle)> = Vec::new();
        for h in inst.frag_ids(Species::H) {
            let h_len = inst.frag_len(h);
            if h_len < 2 {
                continue; // no strict border sites
            }
            let h_cov = covered(&by_frag, h);
            for m in inst.frag_ids(Species::M) {
                let m_len = inst.frag_len(m);
                if m_len < 2 {
                    continue;
                }
                let m_cov = covered(&by_frag, m);
                let mut pair_best: Vec<(Score, I2Bundle)> = Vec::new();
                for a in 1..h_len.min(budget.border_cap + 1) {
                    for h_site in [Site::new(h, 0, a), Site::new(h, h_len - a, h_len)] {
                        if is_hidden(&h_cov, h_site) {
                            continue;
                        }
                        for b in 1..m_len.min(budget.border_cap + 1) {
                            for m_site in [Site::new(m, 0, b), Site::new(m, m_len - b, m_len)] {
                                if is_hidden(&m_cov, m_site) {
                                    continue;
                                }
                                let (SiteClass::Border(he), SiteClass::Border(me)) =
                                    (h_site.classify(h_len), m_site.classify(m_len))
                                else {
                                    continue;
                                };
                                let orient = if he != me {
                                    fragalign_model::Orient::Same
                                } else {
                                    fragalign_model::Orient::Reversed
                                };
                                let score = oracle.ms_oriented(h_site, m_site, orient);
                                if score <= 0 {
                                    continue;
                                }
                                let bundle = I2Bundle {
                                    h_site,
                                    h_container: free_extension(&h_cov, h_len, h_site),
                                    m_site,
                                    m_container: free_extension(&m_cov, m_len, m_site),
                                };
                                pair_best.push((score, bundle));
                            }
                        }
                    }
                }
                pair_best.sort_by_key(|&(s, b)| (std::cmp::Reverse(s), b.h_site, b.m_site));
                pair_best.truncate(budget.borders_per_pair);
                bundles.extend(pair_best);
            }
        }
        for &(_, b) in &bundles {
            out.push(Attempt::I2 {
                h_site: b.h_site,
                m_site: b.m_site,
                h_container: b.h_container,
                m_container: b.m_container,
            });
        }

        // ---- I3 -----------------------------------------------------
        // For every existing border match (f1 ~ g1), combine the best
        // replacement bundles: f1 with a new M partner, g1 with a new H
        // partner.
        for (_, mat) in set.iter() {
            let h_len = inst.frag_len(mat.h.frag);
            let m_len = inst.frag_len(mat.m.frag);
            let Some(fragalign_model::MatchKind::Border { .. }) = mat.kind(h_len, m_len) else {
                continue;
            };
            let (f1, g1) = (mat.h.frag, mat.m.frag);
            let mut for_f1: Vec<(Score, I2Bundle)> = bundles
                .iter()
                .filter(|(_, b)| b.h_site.frag == f1 && b.m_site.frag != g1)
                .copied()
                .collect();
            let mut for_g1: Vec<(Score, I2Bundle)> = bundles
                .iter()
                .filter(|(_, b)| b.m_site.frag == g1 && b.h_site.frag != f1)
                .copied()
                .collect();
            for_f1.sort_by_key(|&(s, b)| (std::cmp::Reverse(s), b.h_site, b.m_site));
            for_g1.sort_by_key(|&(s, b)| (std::cmp::Reverse(s), b.h_site, b.m_site));
            for_f1.truncate(2);
            for_g1.truncate(2);
            for &(_, b1) in &for_f1 {
                for &(_, b2) in &for_g1 {
                    // The bundles must not collide on fragments.
                    if b1.m_site.frag == b2.m_site.frag || b1.h_site.frag == b2.h_site.frag {
                        continue;
                    }
                    out.push(Attempt::I3 {
                        first: b1,
                        second: b2,
                    });
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::instance::paper_example;
    use fragalign_model::{Match, Orient};

    fn budget() -> Budget {
        Budget {
            site_cap: 64,
            border_cap: 64,
            plugs_per_target: 2,
            borders_per_pair: 4,
        }
    }

    #[test]
    fn empty_solution_has_candidates() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        let set = MatchSet::new();
        let all = enumerate_attempts(&oracle, &set, MethodSet::All, budget());
        assert!(!all.is_empty());
        assert!(all.iter().any(|a| matches!(a, Attempt::I1 { .. })));
        assert!(all.iter().any(|a| matches!(a, Attempt::I2 { .. })));
        // No I3 without an existing border match.
        assert!(!all.iter().any(|a| matches!(a, Attempt::I3 { .. })));
    }

    #[test]
    fn method_sets_filter_attempts() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        let set = MatchSet::new();
        let full = enumerate_attempts(&oracle, &set, MethodSet::FullOnly, budget());
        assert!(full.iter().all(|a| matches!(a, Attempt::I1 { .. })));
        let border = enumerate_attempts(&oracle, &set, MethodSet::BorderOnly, budget());
        assert!(border.iter().all(|a| !matches!(a, Attempt::I1 { .. })));
    }

    #[test]
    fn i3_generated_for_existing_border_match() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        // h1 suffix ⟨c⟩ ~ m2 prefix ⟨u⟩ staircase (σ(c,u)=5).
        let set = MatchSet::from_matches(vec![Match::new(
            Site::new(FragId::h(0), 2, 3),
            Site::new(FragId::m(1), 0, 1),
            Orient::Same,
            5,
        )]);
        let all = enumerate_attempts(&oracle, &set, MethodSet::All, budget());
        // I3 requires replacement partners on both sides; with only two
        // M fragments and σ(b, t^R) > 0 there is at least a candidate
        // for f1 = h1 with m1. g1 = m2 needs a different H fragment —
        // h2 has length 1, no border sites, so no I3 emerges here.
        assert!(all.iter().any(|a| matches!(a, Attempt::I2 { .. })));
        // Targets hidden by the staircase are not enumerated.
        for a in &all {
            if let Attempt::I1 { target, .. } = a {
                assert!(
                    !target.hidden_by(&Site::new(FragId::h(0), 2, 3)),
                    "hidden target enumerated"
                );
            }
        }
    }

    #[test]
    fn free_extension_respects_existing_matches() {
        let inst = paper_example();
        let _ = inst;
        let f = FragId::h(0);
        let cov = vec![Site::new(f, 0, 1)];
        // Extending ⟨c⟩ = [2,3) within a length-3 fragment stops at the
        // covered prefix [0,1).
        let ext = free_extension(&cov, 3, Site::new(f, 2, 3));
        assert_eq!(ext, Site::new(f, 1, 3));
        // A site overlapping the covered one extends through it (the
        // preparation will cut the overlapped match anyway).
        let ext2 = free_extension(&cov, 3, Site::new(f, 0, 2));
        assert_eq!(ext2, Site::new(f, 0, 3));
    }
}
