//! Greedy CSR heuristic.
//!
//! The paper's introduction motivates approximation algorithms by
//! observing that for any greedy heuristic one can construct data that
//! fools it (a consequence of MAX-SNP hardness). This module provides
//! that baseline: repeatedly add the highest-scoring single match
//! (full plug or staircase) that keeps the solution consistent, until
//! no positive addition exists. `exp_ratio` measures how far it falls
//! behind the §4 algorithms and the exact optimum.

use fragalign_align::ScoreOracle;
use fragalign_model::{
    check_consistency, FragId, Instance, Match, MatchSet, Orient, Site, SiteClass, Species,
};

/// Candidate single-match additions given the current solution.
fn candidates(oracle: &ScoreOracle<'_>, set: &MatchSet) -> Vec<Match> {
    let inst = oracle.instance();
    let by_frag = set.sites_by_fragment();
    let free_sites = |g: FragId| -> Vec<Site> {
        let len = inst.frag_len(g);
        let mut pieces = vec![Site::full(g, len)];
        if let Some(cov) = by_frag.get(&g) {
            for &(_, s) in cov {
                let mut next = Vec::new();
                for p in pieces {
                    next.extend(p.minus(&s));
                }
                pieces = next;
            }
        }
        pieces
    };
    let mut out = Vec::new();
    // Full plugs: an unmatched fragment into a free interval.
    for g in inst.all_frag_ids() {
        for zone in free_sites(g) {
            for f in inst.frag_ids(g.species.other()) {
                if by_frag.contains_key(&f) {
                    continue; // plugged fragments must be free
                }
                let table = oracle.interval_table(f, g);
                for d in zone.lo..zone.hi {
                    for e in (d + 1)..=zone.hi {
                        let (score, orient) = table.get(d, e);
                        if score <= 0 {
                            continue;
                        }
                        let full = Site::full(f, inst.frag_len(f));
                        let site = Site::new(g, d, e);
                        let (h, m) = if f.species == Species::H {
                            (full, site)
                        } else {
                            (site, full)
                        };
                        out.push(Match::new(h, m, orient, score));
                    }
                }
            }
        }
    }
    // Staircases: free border sites on both sides, orientation forced.
    for h in inst.frag_ids(Species::H) {
        let h_len = inst.frag_len(h);
        for m in inst.frag_ids(Species::M) {
            let m_len = inst.frag_len(m);
            if h_len < 2 || m_len < 2 {
                continue;
            }
            for a in 1..h_len {
                for h_site in [Site::new(h, 0, a), Site::new(h, h_len - a, h_len)] {
                    for b in 1..m_len {
                        for m_site in [Site::new(m, 0, b), Site::new(m, m_len - b, m_len)] {
                            let (SiteClass::Border(he), SiteClass::Border(me)) =
                                (h_site.classify(h_len), m_site.classify(m_len))
                            else {
                                continue;
                            };
                            let orient = if he != me {
                                Orient::Same
                            } else {
                                Orient::Reversed
                            };
                            let score = oracle.ms_oriented(h_site, m_site, orient);
                            if score > 0 {
                                out.push(Match::new(h_site, m_site, orient, score));
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Greedy: best-scoring feasible addition until none improves.
pub fn solve_greedy(inst: &Instance) -> MatchSet {
    let oracle = ScoreOracle::new(inst);
    solve_greedy_with_oracle(&oracle)
}

/// [`solve_greedy`] with a caller-provided oracle, so batch runs share
/// one warm workspace pool per worker instead of allocating fresh DP
/// buffers per instance. The oracle is scratch plus memoisation only:
/// results are bit-identical to [`solve_greedy`].
pub fn solve_greedy_with_oracle(oracle: &ScoreOracle<'_>) -> MatchSet {
    let inst = oracle.instance();
    let mut set = MatchSet::new();
    loop {
        let mut cands = candidates(oracle, &set);
        cands.sort_by_key(|m| (std::cmp::Reverse(m.score), m.h, m.m));
        let mut added = false;
        for c in cands {
            let mut tentative = set.clone();
            tentative.push(c);
            if check_consistency(inst, &tentative).is_ok() {
                set = tentative;
                added = true;
                break;
            }
        }
        if !added {
            return set;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::instance::paper_example;

    #[test]
    fn greedy_is_consistent_and_positive() {
        let inst = paper_example();
        let sol = solve_greedy(&inst);
        check_consistency(&inst, &sol).unwrap();
        // Greedy is fooled here (the paper's point): among the
        // score-5 candidates it plugs *all of h1* into m2's ⟨u⟩,
        // consuming h1 and leaving only σ(d,t)=2 — total 7, while the
        // optimum is 11.
        assert_eq!(sol.total_score(), 7, "got {}", sol.total_score());
    }

    #[test]
    fn greedy_terminates_on_empty_sigma() {
        let mut b = fragalign_model::InstanceBuilder::new();
        b.h_frag("h", &["a", "b"]);
        b.m_frag("m", &["x", "y"]);
        let inst = b.build();
        let sol = solve_greedy(&inst);
        assert_eq!(sol.len(), 0);
    }
}
