//! Exhaustive CSR optimum for small instances.
//!
//! A conjecture pair is a permutation + orientation choice for each
//! species, followed by an optimal alignment of the two laid
//! concatenations (the padding choice is exactly the `P_score` DP).
//! The search space is `(k_H!·2^k_H) × (k_M!·2^k_M)`; rayon spreads
//! the H arrangements across cores. Used by `exp_ratio` to measure the
//! empirical approximation ratios against Theorems 4–6.

use fragalign_align::dp::{align_words, p_score};
use fragalign_model::conjecture::PairAssembler;
use fragalign_model::symbol::reverse_word;
use fragalign_model::{FragId, Fragment, Instance, MatchSet, Score, Species, Sym};
use rayon::prelude::*;

/// Safety limits for the exhaustive search.
#[derive(Clone, Copy, Debug)]
pub struct ExactLimits {
    /// Maximum fragments per species.
    pub max_frags: usize,
    /// Maximum total regions (DP size guard).
    pub max_regions: usize,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits {
            max_frags: 5,
            max_regions: 80,
        }
    }
}

impl ExactLimits {
    /// `Err(reason)` when `inst` exceeds these limits — the predicate
    /// behind [`solve_exact`]'s panic, split out so the engine layer
    /// (and the portfolio racer) can skip oversized instances instead
    /// of crashing.
    pub fn check(&self, inst: &Instance) -> Result<(), String> {
        if inst.h.len() > self.max_frags || inst.m.len() > self.max_frags {
            return Err(format!(
                "exact solver limited to {} fragments per species (instance has {} H, {} M)",
                self.max_frags,
                inst.h.len(),
                inst.m.len()
            ));
        }
        if inst.total_regions() > self.max_regions {
            return Err(format!(
                "exact solver limited to {} total regions (instance has {})",
                self.max_regions,
                inst.total_regions()
            ));
        }
        Ok(())
    }
}

/// One species arrangement: fragment order and per-fragment flips.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arrangement {
    /// Fragment indices in layout order.
    pub order: Vec<usize>,
    /// Reversal flag per position of `order`.
    pub flips: Vec<bool>,
}

/// The exhaustive optimum: score and the winning arrangements.
#[derive(Clone, Debug)]
pub struct ExactSolution {
    /// The optimum conjecture-pair score.
    pub score: Score,
    /// H-side arrangement achieving it.
    pub h_arrangement: Arrangement,
    /// M-side arrangement achieving it.
    pub m_arrangement: Arrangement,
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut out);
    out
}

/// All arrangements of `frags`: permutations × orientation masks,
/// paired with the laid concatenation they spell.
fn arrangements(frags: &[Fragment]) -> Vec<(Arrangement, Vec<Sym>)> {
    let n = frags.len();
    let mut out = Vec::new();
    for order in permutations(n) {
        for mask in 0u32..(1 << n) {
            let flips: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            let mut word = Vec::new();
            for (pos, &fi) in order.iter().enumerate() {
                if flips[pos] {
                    word.extend(reverse_word(&frags[fi].regions));
                } else {
                    word.extend_from_slice(&frags[fi].regions);
                }
            }
            out.push((
                Arrangement {
                    order: order.clone(),
                    flips,
                },
                word,
            ));
        }
    }
    out
}

/// Compute the exact CSR optimum. Panics when the instance exceeds
/// `limits`.
pub fn solve_exact(inst: &Instance, limits: ExactLimits) -> ExactSolution {
    if let Err(reason) = limits.check(inst) {
        panic!("{reason}");
    }
    let hs = arrangements(&inst.h);
    let ms = arrangements(&inst.m);
    let best = hs
        .par_iter()
        .map(|(ha, hw)| {
            let mut local_best: Option<(Score, &Arrangement, &Arrangement)> = None;
            for (ma, mw) in &ms {
                let s = p_score(&inst.sigma, hw, mw);
                if local_best.map(|(b, _, _)| s > b).unwrap_or(true) {
                    local_best = Some((s, ha, ma));
                }
            }
            local_best.expect("at least one arrangement")
        })
        .reduce_with(|a, b| if b.0 > a.0 { b } else { a })
        .expect("at least one H arrangement");
    ExactSolution {
        score: best.0,
        h_arrangement: best.1.clone(),
        m_arrangement: best.2.clone(),
    }
}

/// Spell the laid concatenation of an arrangement, plus the cell
/// (fragment, original region index, laid reversed) behind each
/// concatenation position.
fn lay_arrangement(
    frags: &[Fragment],
    arr: &Arrangement,
    species: Species,
) -> (Vec<Sym>, Vec<(FragId, usize, bool)>) {
    let mut word = Vec::new();
    let mut cells = Vec::new();
    for (pos, &fi) in arr.order.iter().enumerate() {
        let f = &frags[fi];
        let flip = arr.flips[pos];
        let id = match species {
            Species::H => FragId::h(fi),
            Species::M => FragId::m(fi),
        };
        if flip {
            word.extend(reverse_word(&f.regions));
            cells.extend((0..f.len()).rev().map(|i| (id, i, true)));
        } else {
            word.extend_from_slice(&f.regions);
            cells.extend((0..f.len()).map(|i| (id, i, false)));
        }
    }
    (word, cells)
}

/// Materialise the optimum as a consistent [`MatchSet`]: lay both
/// winning arrangements out, trace back one optimal alignment of the
/// two concatenations, and derive matches with Definition 2. By
/// Remark 1 the derived set scores exactly `sol.score`, so the
/// exhaustive solver plugs into the engine layer like every
/// approximation algorithm instead of reporting an arrangement-only
/// score.
pub fn exact_matches(inst: &Instance, sol: &ExactSolution) -> MatchSet {
    let (hw, hc) = lay_arrangement(&inst.h, &sol.h_arrangement, Species::H);
    let (mw, mc) = lay_arrangement(&inst.m, &sol.m_arrangement, Species::M);
    if hw.is_empty() || mw.is_empty() {
        return MatchSet::new();
    }
    let (score, cols) = align_words(&inst.sigma, &hw, &mw);
    debug_assert_eq!(score, sol.score, "alignment must realise the optimum");
    let mut asm = PairAssembler::new();
    for (uo, vo) in cols {
        asm.push(uo.map(|o| hc[o]), vo.map(|o| mc[o]));
    }
    let pair = asm.finish();
    debug_assert!(pair.validate(inst).is_ok(), "{:?}", pair.validate(inst));
    let derived = pair.derive_matches(inst);
    debug_assert_eq!(derived.total_score(), sol.score, "Remark 1");
    derived
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::check_consistency;
    use fragalign_model::instance::paper_example;

    #[test]
    fn paper_example_optimum_is_11() {
        // "...which yields the score σ(a,s)+σ(c,u)+σ(d^R,v) = 11".
        let inst = paper_example();
        let sol = solve_exact(&inst, ExactLimits::default());
        assert_eq!(sol.score, 11);
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(0).len(), 1);
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
    }

    #[test]
    fn exact_matches_realise_the_optimum() {
        let inst = paper_example();
        let sol = solve_exact(&inst, ExactLimits::default());
        let matches = exact_matches(&inst, &sol);
        check_consistency(&inst, &matches).unwrap();
        assert_eq!(matches.total_score(), sol.score);
    }

    #[test]
    fn limits_check_reports_reasons() {
        let inst = paper_example();
        assert!(ExactLimits::default().check(&inst).is_ok());
        let tight = ExactLimits {
            max_frags: 1,
            max_regions: 80,
        };
        assert!(tight.check(&inst).unwrap_err().contains("fragments"));
        let tiny = ExactLimits {
            max_frags: 5,
            max_regions: 1,
        };
        assert!(tiny.check(&inst).unwrap_err().contains("regions"));
    }

    #[test]
    fn empty_species_is_fine() {
        let mut b = fragalign_model::InstanceBuilder::new();
        b.h_frag("h", &["a"]);
        let inst = b.build();
        let sol = solve_exact(&inst, ExactLimits::default());
        assert_eq!(sol.score, 0);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn limits_enforced() {
        let mut b = fragalign_model::InstanceBuilder::new();
        for i in 0..7 {
            b.h_frag(&format!("h{i}"), &["a"]);
        }
        b.m_frag("m", &["a"]);
        let inst = b.build();
        solve_exact(&inst, ExactLimits::default());
    }
}
