//! # fragalign-core
//!
//! The paper's contribution: solvers for the *Consensus Sequence
//! Reconstruction* (CSR) problem.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`engine`] | solver trait + registry + telemetry + racing portfolio (infrastructure, not paper) |
//! | [`batch`] | multi-instance pipeline over the registry (infrastructure, not paper) |
//! | [`greedy`] | the greedy heuristic the introduction warns about |
//! | [`one_csr`] | 1-CSR → ISP reduction (§3.4) solved with TPA |
//! | [`four_approx`] | Theorem 3 + Corollary 1: the factor-4 algorithm |
//! | [`improve`] | §4: Full/Border/General iterative improvement, 3+ε |
//! | [`border_matching`] | Lemma 9: Border CSR 2-approx via matching |
//! | [`exact`] | exhaustive optimum for small instances (ratio measurements) |
//! | [`ucsr`] | Lemma 1 / Theorem 1: the UCSR reduction φ₀, φ₁ |
//! | [`csop`] | Theorem 2: CSoP and the 3-MIS hardness reduction |
//!
//! All solvers return consistent [`fragalign_model::MatchSet`]s; every
//! solution can be turned into an explicit two-row layout with
//! [`fragalign_model::LayoutBuilder`] and the DP aligner.

pub mod batch;
pub mod border_matching;
pub mod cancel;
pub mod csop;
pub mod engine;
pub mod exact;
pub mod four_approx;
pub mod greedy;
pub mod improve;
pub mod one_csr;
pub mod stats;
pub mod ucsr;

/// The tracing layer, re-exported whole so downstream crates use
/// `fragalign_core::obs::{TraceSink, TraceHandle, ...}` without a
/// direct `fragalign-obs` dependency.
pub use fragalign_obs as obs;

pub use batch::{
    solve_batch, solve_batch_reports, solve_single, solve_single_report, solve_single_traced,
    BatchOptions, BatchSolution,
};
pub use border_matching::{border_matching_2approx, border_matching_2approx_with_oracle};
pub use cancel::{CancelCause, CancelToken};
pub use engine::{
    Auto, EngineError, EngineOptions, InstanceFeatures, Portfolio, PortfolioConfig, RacerBudget,
    RacerReport, Router, RouterRule, SolveCtx, SolveOutcome, SolveReport, SolveRun, Solver,
    SolverRegistry, SolverSpec, TraceHandle, TraceLog, TraceSink,
};
pub use exact::{exact_matches, solve_exact, ExactLimits};
pub use four_approx::{solve_four_approx, solve_four_approx_with_oracle};
pub use greedy::{solve_greedy, solve_greedy_with_oracle};
pub use improve::{
    border_improve, csr_improve, full_improve, ImproveConfig, ImproveResult, MethodSet,
};
pub use one_csr::{solve_one_csr, solve_one_csr_with_oracle};
pub use stats::{solution_stats, SolutionStats};
