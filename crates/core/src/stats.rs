//! Solution statistics and reports.
//!
//! Downstream users of a scaffolder want more than a score: how many
//! islands formed, how much of each genome is anchored, how large the
//! islands are. This module summarises a consistent solution the way
//! assembly tools report scaffold statistics.

use fragalign_model::{check_consistency, Inconsistency, Instance, MatchKind, MatchSet, Species};

/// Summary of a consistent CSR solution.
#[derive(Clone, Debug, PartialEq)]
pub struct SolutionStats {
    /// Total score `Score(S)`.
    pub score: i64,
    /// Number of matches.
    pub matches: usize,
    /// Full (plug) matches.
    pub full_matches: usize,
    /// Border (staircase) matches.
    pub border_matches: usize,
    /// Number of islands.
    pub islands: usize,
    /// Fragments per island, descending ("scaffold sizes").
    pub island_sizes: Vec<usize>,
    /// Fragments with at least one match, per species.
    pub anchored_h: usize,
    /// Fragments with at least one match, M side.
    pub anchored_m: usize,
    /// Fraction of H regions covered by matched sites.
    pub h_coverage: f64,
    /// Fraction of M regions covered by matched sites.
    pub m_coverage: f64,
    /// Size of the largest island ("N-best scaffold").
    pub largest_island: usize,
}

/// Compute statistics; fails iff the solution is inconsistent.
pub fn solution_stats(inst: &Instance, s: &MatchSet) -> Result<SolutionStats, Inconsistency> {
    let report = check_consistency(inst, s)?;
    let mut island_sizes: Vec<usize> = report.islands.iter().map(|i| i.fragments.len()).collect();
    island_sizes.sort_unstable_by(|a, b| b.cmp(a));

    let mut full_matches = 0;
    let mut border_matches = 0;
    for (id, _) in s.iter() {
        match report.kinds[id] {
            MatchKind::Full { .. } => full_matches += 1,
            MatchKind::Border { .. } => border_matches += 1,
        }
    }

    let anchored = |species: Species| -> usize {
        inst.frag_ids(species)
            .filter(|&f| s.iter().any(|(_, m)| m.site_on(f).is_some()))
            .count()
    };
    let coverage = |species: Species| -> f64 {
        let total: usize = inst.frag_ids(species).map(|f| inst.frag_len(f)).sum();
        if total == 0 {
            return 1.0;
        }
        let covered: usize = s
            .iter()
            .filter_map(|(_, m)| m.site_on_species(species))
            .map(|site| site.len())
            .sum();
        covered as f64 / total as f64
    };

    Ok(SolutionStats {
        score: s.total_score(),
        matches: s.len(),
        full_matches,
        border_matches,
        islands: report.islands.len(),
        largest_island: island_sizes.first().copied().unwrap_or(0),
        island_sizes,
        anchored_h: anchored(Species::H),
        anchored_m: anchored(Species::M),
        h_coverage: coverage(Species::H),
        m_coverage: coverage(Species::M),
    })
}

impl std::fmt::Display for SolutionStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "score            : {}", self.score)?;
        writeln!(
            f,
            "matches          : {} ({} full, {} border)",
            self.matches, self.full_matches, self.border_matches
        )?;
        writeln!(
            f,
            "islands          : {} (largest {} fragments; sizes {:?})",
            self.islands, self.largest_island, self.island_sizes
        )?;
        writeln!(f, "anchored H frags : {}", self.anchored_h)?;
        writeln!(f, "anchored M frags : {}", self.anchored_m)?;
        writeln!(
            f,
            "region coverage  : H {:.1}%, M {:.1}%",
            self.h_coverage * 100.0,
            self.m_coverage * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr_improve;
    use fragalign_model::instance::paper_example;

    #[test]
    fn stats_of_the_paper_optimum() {
        let inst = paper_example();
        let res = csr_improve(&inst, false);
        let stats = solution_stats(&inst, &res.matches).unwrap();
        assert_eq!(stats.score, 11);
        assert!(stats.matches >= 2);
        assert_eq!(stats.full_matches + stats.border_matches, stats.matches);
        assert!(stats.islands >= 1);
        assert!(stats.h_coverage > 0.5);
        assert!(stats.island_sizes.iter().sum::<usize>() >= stats.largest_island);
        let rendered = stats.to_string();
        assert!(rendered.contains("score"));
    }

    #[test]
    fn empty_solution_stats() {
        let inst = paper_example();
        let stats = solution_stats(&inst, &fragalign_model::MatchSet::new()).unwrap();
        assert_eq!(stats.score, 0);
        assert_eq!(stats.islands, 0);
        assert_eq!(stats.anchored_h, 0);
        assert_eq!(stats.h_coverage, 0.0);
    }
}
