//! Consistent Subsets of Pairs (CSoP) and the Theorem 2 hardness
//! reduction.
//!
//! CSoP is the restriction of UCSR where `M = ⟨a₁ … a₂ₙ⟩` and `H`
//! consists of 2-letter fragments whose index pairs partition
//! `[1, 2n]`. A feasible solution is `U ⊆ [1, 2n]` such that whenever
//! both elements of a pair are chosen, no other chosen element lies
//! strictly between them (the pair's letters must stay adjacent in the
//! common subsequence); the goal is to maximise `|U|`.
//!
//! Theorem 2 reduces 3-MIS to CSoP: a 3-regular graph on `2n` nodes
//! (with no edge between consecutively numbered nodes) maps to a CSoP
//! instance over `10n` elements whose optimum is exactly `5n + |W*|`,
//! `W*` a maximum independent set. Both instance translation and the
//! solution maps are implemented and verified.

use fragalign_graph::Graph;

/// A CSoP instance: pairs `(i, j)` with `i < j` partitioning
/// `0..2·pairs.len()` (0-based internally).
#[derive(Clone, Debug)]
pub struct CsopInstance {
    /// The element pairs; a partition of `0..universe()`.
    pub pairs: Vec<(usize, usize)>,
}

impl CsopInstance {
    /// Number of elements.
    pub fn universe(&self) -> usize {
        2 * self.pairs.len()
    }

    /// Check the partition property.
    pub fn validate_instance(&self) -> Result<(), String> {
        let n = self.universe();
        let mut seen = vec![false; n];
        for &(i, j) in &self.pairs {
            if i >= j {
                return Err(format!("pair ({i}, {j}) not increasing"));
            }
            for x in [i, j] {
                if x >= n {
                    return Err(format!("element {x} out of range"));
                }
                if seen[x] {
                    return Err(format!("element {x} in two pairs"));
                }
                seen[x] = true;
            }
        }
        Ok(())
    }

    /// Whether `U` (sorted or not) is feasible: pairs fully inside `U`
    /// have no chosen element strictly between them.
    pub fn is_feasible(&self, u: &[usize]) -> bool {
        let mut chosen = vec![false; self.universe()];
        for &x in u {
            if x >= self.universe() || chosen[x] {
                return false;
            }
            chosen[x] = true;
        }
        for &(i, j) in &self.pairs {
            if chosen[i] && chosen[j] && (i + 1..j).any(|l| chosen[l]) {
                return false;
            }
        }
        true
    }

    /// Exact maximum-cardinality feasible subset.
    ///
    /// Structure: in any feasible `U`, the pairs with *both* elements
    /// chosen ("D-pairs") span pairwise disjoint intervals with no
    /// other chosen element inside; any other pair contributes at most
    /// one element, and exactly one whenever one of its elements lies
    /// outside every D-interval. So the optimum is
    ///
    /// ```text
    /// max over antichains D of disjoint pair-intervals:
    ///     2|D| + |{k ∉ D : i_k or j_k outside every D-interior}|
    /// ```
    ///
    /// and it suffices to search over antichains (DFS over pairs
    /// sorted by left endpoint), evaluating each leaf in `O(pairs)`.
    /// This makes Theorem 2 verification on small cubic graphs
    /// practical where naive per-element branching is not.
    pub fn solve_exact(&self) -> Vec<usize> {
        let n = self.universe();
        assert!(n <= 1 << 16, "exact CSoP capped at 2^16 elements, got {n}");
        let mut order: Vec<(usize, usize)> = self.pairs.clone();
        order.sort_unstable();

        struct Ctx<'a> {
            all: &'a [(usize, usize)],
            order: &'a [(usize, usize)],
            best_value: usize,
            best_d: Vec<(usize, usize)>,
        }
        fn evaluate(all: &[(usize, usize)], d: &[(usize, usize)]) -> usize {
            // d is sorted by left endpoint and disjoint.
            let inside = |x: usize| d.iter().any(|&(a, b)| a < x && x < b);
            let mut value = 2 * d.len();
            for &(i, j) in all {
                if d.contains(&(i, j)) {
                    continue;
                }
                if !inside(i) || !inside(j) {
                    value += 1;
                }
            }
            value
        }
        fn rec(ctx: &mut Ctx<'_>, k: usize, d: &mut Vec<(usize, usize)>, last_end: usize) {
            // Evaluate the current antichain (every prefix is a leaf).
            let value = evaluate(ctx.all, d);
            if value > ctx.best_value {
                ctx.best_value = value;
                ctx.best_d = d.clone();
            }
            for next in k..ctx.order.len() {
                let (i, j) = ctx.order[next];
                if !d.is_empty() && i <= last_end {
                    continue; // closed intervals must be disjoint
                }
                d.push((i, j));
                rec(ctx, next + 1, d, j);
                d.pop();
            }
        }
        let mut ctx = Ctx {
            all: &self.pairs,
            order: &order,
            best_value: 0,
            best_d: Vec::new(),
        };
        rec(&mut ctx, 0, &mut Vec::new(), 0);

        // Materialise U from the winning D: both elements of D-pairs,
        // plus one free element of every other pair when available.
        let d = ctx.best_d;
        let inside = |x: usize| d.iter().any(|&(a, b)| a < x && x < b);
        let mut u = Vec::new();
        for &(i, j) in &d {
            u.push(i);
            u.push(j);
        }
        for &(i, j) in &self.pairs {
            if d.contains(&(i, j)) {
                continue;
            }
            if !inside(i) {
                u.push(i);
            } else if !inside(j) {
                u.push(j);
            }
        }
        u.sort_unstable();
        debug_assert_eq!(u.len(), ctx.best_value);
        debug_assert!(self.is_feasible(&u));
        u
    }

    /// Normalise a solution (proof of Theorem 2): every feasible `U`
    /// converts into an equally large `U'` intersecting every pair.
    pub fn normalize(&self, u: &[usize]) -> Vec<usize> {
        let mut chosen = vec![false; self.universe()];
        for &x in u {
            chosen[x] = true;
        }
        loop {
            let missing = self
                .pairs
                .iter()
                .enumerate()
                .find(|(_, &(i, j))| !chosen[i] && !chosen[j]);
            let Some((_, &(i, _j))) = missing else { break };
            // Try to insert i; if a fully chosen pair (i', j') spans i,
            // swap i for its left endpoint (the proof's exchange).
            let spanning = self
                .pairs
                .iter()
                .find(|&&(a, b)| chosen[a] && chosen[b] && a < i && i < b)
                .copied();
            match spanning {
                None => chosen[i] = true,
                Some((a, _)) => {
                    chosen[a] = false;
                    chosen[i] = true;
                }
            }
        }
        let out: Vec<usize> = (0..self.universe()).filter(|&x| chosen[x]).collect();
        debug_assert!(self.is_feasible(&out));
        debug_assert!(out.len() >= u.len());
        out
    }
}

/// The Theorem 2 instance translation: a 3-regular graph on `2n` nodes
/// (node labels 0-based; no edge `{i, i+1}`) becomes a CSoP instance
/// over `10n` elements. Node `i` (1-based `i'`) owns elements
/// `5i'−5 … 5i'−1` (0-based); the node pair is `(5i'−5, 5i'−1)` and
/// each edge `{i', j'}` with `A[i', b] = j'`, `A[j', c] = i'` becomes
/// the pair `(5i'−b−1, 5j'−c−1)` in 0-based terms.
pub fn reduce_mis_to_csop(g: &Graph) -> CsopInstance {
    assert!(
        g.len().is_multiple_of(2),
        "Theorem 2 graphs have an even node count"
    );
    for i in 0..g.len().saturating_sub(1) {
        assert!(
            !g.has_edge(i, i + 1),
            "reduction requires no consecutive edge (apply dirac_relabel first)"
        );
    }
    let a = g.adjacency_matrix_3reg();
    let mut pairs = Vec::new();
    // Node pairs.
    for i in 1..=g.len() {
        pairs.push((5 * i - 5, 5 * i - 1));
    }
    // Edge pairs: b = 1-based column of j in A[i].
    for i in 1..=g.len() {
        for (col, &nb) in a[i - 1].iter().enumerate() {
            let j = nb + 1; // 1-based
            if j <= i {
                continue;
            }
            let b = col + 1;
            let c = a[j - 1]
                .iter()
                .position(|&x| x + 1 == i)
                .expect("edge is symmetric")
                + 1;
            pairs.push((5 * i - b - 1, 5 * j - c - 1));
        }
    }
    let inst = CsopInstance { pairs };
    inst.validate_instance()
        .expect("reduction emits a partition");
    inst
}

/// Map an independent set `W` to a feasible CSoP solution of size
/// `5n + |W|` (the constructive direction of the Theorem 2 proof).
pub fn mis_to_csop_solution(g: &Graph, w: &[usize]) -> Vec<usize> {
    let a = g.adjacency_matrix_3reg();
    let in_w = {
        let mut v = vec![false; g.len()];
        for &x in w {
            v[x] = true;
        }
        v
    };
    let mut out = Vec::new();
    // {5i : i node} (0-based: 5i'−1).
    for i in 1..=g.len() {
        out.push(5 * i - 1);
    }
    // {5·i(e) − b(e) : e edge}, i(e) an endpoint in W when possible.
    for i in 1..=g.len() {
        for (col, &nb) in a[i - 1].iter().enumerate() {
            let j = nb + 1;
            if j <= i {
                continue;
            }
            // The edge element must sit at an endpoint NOT in W:
            // for i ∈ W both node-pair elements {5i−5, 5i−1} are
            // chosen and an edge element 5i−b−1 would lie strictly
            // between them. W is independent, so some endpoint is
            // outside W.
            let (pi, pcol) = if !in_w[i - 1] {
                (i, col + 1)
            } else {
                debug_assert!(!in_w[j - 1], "W must be independent");
                let c = a[j - 1].iter().position(|&x| x + 1 == i).unwrap() + 1;
                (j, c)
            };
            out.push(5 * pi - pcol - 1);
        }
    }
    // {5i − 4 : i ∈ W} (0-based: 5i'−5).
    for i in 1..=g.len() {
        if in_w[i - 1] {
            out.push(5 * i - 5);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Extract an independent set from a *normal* CSoP solution:
/// `W = {i : both node-pair elements of i chosen}`.
pub fn csop_solution_to_mis(g: &Graph, u: &[usize]) -> Vec<usize> {
    let chosen: std::collections::HashSet<usize> = u.iter().copied().collect();
    (1..=g.len())
        .filter(|&i| chosen.contains(&(5 * i - 5)) && chosen.contains(&(5 * i - 1)))
        .map(|i| i - 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_graph::{dirac_relabel, is_independent_set, max_independent_set, random_regular};

    #[test]
    fn feasibility_semantics() {
        // pairs (0,3), (1,2): choosing {0,1,3} puts 1 inside (0,3).
        let inst = CsopInstance {
            pairs: vec![(0, 3), (1, 2)],
        };
        inst.validate_instance().unwrap();
        assert!(inst.is_feasible(&[0, 3]));
        assert!(inst.is_feasible(&[0, 1, 2]));
        assert!(!inst.is_feasible(&[0, 1, 3]));
        assert!(inst.is_feasible(&[1, 2]));
        // Both pairs fully chosen: (1,2) nests inside (0,3) — the
        // elements 1, 2 lie strictly between 0 and 3.
        assert!(!inst.is_feasible(&[0, 1, 2, 3]));
    }

    #[test]
    fn exact_solver_on_tiny_instance() {
        let inst = CsopInstance {
            pairs: vec![(0, 3), (1, 2)],
        };
        let u = inst.solve_exact();
        assert_eq!(u.len(), 3); // e.g. {0,1,2} or {1,2,3}
        assert!(inst.is_feasible(&u));
    }

    #[test]
    fn normalization_grows_or_keeps_size() {
        let inst = CsopInstance {
            pairs: vec![(0, 3), (1, 2), (4, 5)],
        };
        let norm = inst.normalize(&[]);
        // normal solutions intersect every pair
        for &(i, j) in &inst.pairs {
            assert!(norm.contains(&i) || norm.contains(&j));
        }
    }

    #[test]
    fn theorem2_correspondence_on_random_cubic_graphs() {
        for seed in 0..3u64 {
            let g0 = random_regular(10, 3, seed);
            let (g, _) = dirac_relabel(&g0, seed);
            let inst = reduce_mis_to_csop(&g);
            assert_eq!(inst.universe(), 5 * g.len());
            let w = max_independent_set(&g);
            let n = g.len() / 2;

            // Forward: W → feasible CSoP solution of size 5n + |W|.
            let u = mis_to_csop_solution(&g, &w);
            assert!(inst.is_feasible(&u), "seed {seed}");
            assert_eq!(u.len(), 5 * n + w.len(), "seed {seed}");

            // Exact CSoP equals 5n + |W*| (|U*| cannot exceed it).
            let u_star = inst.solve_exact();
            assert_eq!(u_star.len(), 5 * n + w.len(), "seed {seed}");

            // Backward: normalised optimum yields an independent set of
            // matching size.
            let norm = inst.normalize(&u_star);
            let w_back = csop_solution_to_mis(&g, &norm);
            assert!(is_independent_set(&g, &w_back), "seed {seed}");
            assert_eq!(norm.len(), 5 * n + w_back.len(), "seed {seed}");
            assert_eq!(w_back.len(), w.len(), "seed {seed}");
        }
    }
}
