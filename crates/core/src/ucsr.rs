//! Unambiguous CSR (§3.1) and the Lemma 1 reduction.
//!
//! UCSR restricts CSR so that `σ(a, b) = 0` for `a ≠ b` and every
//! letter occurs exactly once on each side; a solution is then a single
//! word `f ∈ Conj(H) ∩ Conj(M)` (built from *subsequences* of the
//! fragments) scoring `Σ σ'(letter)`.
//!
//! Lemma 1 gives polynomial maps `φ₀` (CSR instance → UCSR instance)
//! and `φ₁` (UCSR solution → CSR solution) such that solutions map
//! forward score-preservingly and backward losing at most a factor
//! `1 − ε`. Theorem 1 concludes that approximating UCSR is as hard as
//! approximating CSR.
//!
//! Integrality note: the proof scores replacement letters `σ(aᵢ, aⱼ)/s`;
//! we keep integer arithmetic by storing weights ×s, so the forward map
//! satisfies `Score_UCSR(φ(sol)) = s · Score_CSR(sol)` exactly.

use fragalign_model::symbol::reverse_word;
use fragalign_model::{Instance, RegionId, Score, Species, Sym};
use std::collections::HashMap;

/// A UCSR instance: fragments over a letter alphabet where each letter
/// occurs exactly once per side, plus the per-letter weight `σ'`.
#[derive(Clone, Debug, Default)]
pub struct UcsrInstance {
    /// H-side fragments.
    pub h: Vec<Vec<Sym>>,
    /// M-side fragments.
    pub m: Vec<Vec<Sym>>,
    /// Letter weights (×s in reduced instances; see module docs).
    pub weight: HashMap<RegionId, Score>,
}

impl UcsrInstance {
    /// Weight of one letter.
    pub fn w(&self, sym: Sym) -> Score {
        self.weight.get(&sym.id).copied().unwrap_or(0)
    }

    /// Validate that `f` is a common conjecture (a word obtainable from
    /// both sides by reversing fragments, taking subsequences and
    /// concatenating in some order) and return its score.
    pub fn validate(&self, f: &[Sym]) -> Result<Score, String> {
        // Letters must be distinct.
        let mut seen = std::collections::HashSet::new();
        for s in f {
            if !seen.insert(s.id) {
                return Err(format!("letter {} used twice", s.id));
            }
        }
        for (side, frags) in [("H", &self.h), ("M", &self.m)] {
            // Locate each region: fragment, position, stored orientation.
            let mut home: HashMap<RegionId, (usize, usize, bool)> = HashMap::new();
            for (fi, frag) in frags.iter().enumerate() {
                for (pos, s) in frag.iter().enumerate() {
                    if home.insert(s.id, (fi, pos, s.rev)).is_some() {
                        return Err(format!("{side}: region {} occurs twice", s.id));
                    }
                }
            }
            // Letters of f must group into contiguous runs per fragment,
            // each run monotone (a subsequence of the fragment or of its
            // reversal).
            let mut run_of: Vec<(usize, usize, bool)> = Vec::new(); // (frag, pos, rev rel. to stored)
            for s in f {
                let Some(&(fi, pos, stored_rev)) = home.get(&s.id) else {
                    return Err(format!("{side}: letter {} unknown", s.id));
                };
                run_of.push((fi, pos, s.rev != stored_rev));
            }
            let mut used: std::collections::HashSet<usize> = std::collections::HashSet::new();
            let mut idx = 0;
            while idx < run_of.len() {
                let (fi, _, _) = run_of[idx];
                if !used.insert(fi) {
                    return Err(format!("{side}: fragment {fi} split into two runs"));
                }
                let mut end = idx + 1;
                while end < run_of.len() && run_of[end].0 == fi {
                    end += 1;
                }
                let run = &run_of[idx..end];
                let fwd =
                    run.windows(2).all(|w| w[0].1 < w[1].1) && run.iter().all(|&(_, _, r)| !r);
                let rev = run.windows(2).all(|w| w[0].1 > w[1].1) && run.iter().all(|&(_, _, r)| r);
                if !(fwd || rev) {
                    return Err(format!("{side}: fragment {fi} letters out of order"));
                }
                idx = end;
            }
        }
        Ok(f.iter().map(|&s| self.w(s)).sum())
    }
}

/// The Lemma 1 reduction `φ₀` with the bookkeeping needed for the
/// solution maps.
#[derive(Clone, Debug)]
pub struct UcsrReduction {
    /// The reduced instance.
    pub ucsr: UcsrInstance,
    /// The replication factor `s = 2pK`, `p = ⌈1/ε⌉`.
    pub s: usize,
    /// Number of original letters `K`.
    pub k: usize,
    /// Original letters in index order (species, symbol as it occurs).
    pub letters: Vec<(Species, Sym)>,
    letter_index: HashMap<RegionId, usize>,
    /// Letter ids: `a_ids[(i, j, l)]` / `b_ids[...]` of the reduced
    /// alphabet (canonical `i ≤ j`).
    a_ids: HashMap<(usize, usize, usize), RegionId>,
    b_ids: HashMap<(usize, usize, usize), RegionId>,
}

impl UcsrReduction {
    /// Canonical key of a letter pair: the proof identifies
    /// `a^i_{j,l}` with `a^j_{i,l}` so that the letter occurs once in
    /// `H′` (inside `x^i`) and once in `M′` (inside `x^j`). The
    /// identification is therefore only meaningful for *cross-species*
    /// pairs; same-species pairs keep distinct (weight-0) letters, or
    /// the letter would occur twice on one side.
    fn key(&self, i: usize, j: usize) -> (usize, usize) {
        if self.letters[i].0 != self.letters[j].0 {
            (i.min(j), i.max(j))
        } else {
            (i, j)
        }
    }

    /// Reduced letter `a^i_{j,l}` (same-orientation pair letter).
    pub fn a(&self, i: usize, j: usize, l: usize) -> Sym {
        let (x, y) = self.key(i, j);
        Sym::fwd(self.a_ids[&(x, y, l)])
    }

    /// Reduced letter `b^i_{j,l}` (opposite-orientation pair letter).
    pub fn b(&self, i: usize, j: usize, l: usize) -> Sym {
        let (x, y) = self.key(i, j);
        Sym::fwd(self.b_ids[&(x, y, l)])
    }

    /// Index of an original region in the letter table.
    pub fn letter_of(&self, region: RegionId) -> Option<usize> {
        self.letter_index.get(&region).copied()
    }
}

/// σ evaluated on an (H letter, M letter) occurrence pair regardless of
/// argument order.
fn sigma_pair(inst: &Instance, x: (Species, Sym), y: (Species, Sym)) -> Score {
    match (x.0, y.0) {
        (Species::H, Species::M) => inst.sigma.score(x.1, y.1),
        (Species::M, Species::H) => inst.sigma.score(y.1, x.1),
        _ => 0, // same-species pairs never score
    }
}

/// `φ₀`: reduce a CSR instance to UCSR (Lemma 1). Requires every
/// region to occur exactly once across the instance (replicate
/// beforehand otherwise — our generators already satisfy this).
pub fn reduce_to_ucsr(inst: &Instance, eps: f64) -> UcsrReduction {
    assert!(eps > 0.0, "ε must be positive");
    // Letters: every occurrence of a region, tagged with its species.
    let mut letters: Vec<(Species, Sym)> = Vec::new();
    let mut letter_index = HashMap::new();
    for species in [Species::H, Species::M] {
        let frags = match species {
            Species::H => &inst.h,
            Species::M => &inst.m,
        };
        for f in frags {
            for &sym in &f.regions {
                let base = Sym::fwd(sym.id);
                assert!(
                    !letter_index.contains_key(&sym.id),
                    "reduction requires unique region occurrences"
                );
                letter_index.insert(sym.id, letters.len());
                letters.push((species, base));
            }
        }
    }
    let k = letters.len();
    let p = (1.0 / eps).ceil() as usize;
    let s = 2 * p * k.max(1);

    // Allocate reduced letter ids: cross-species pairs are identified
    // (one letter for {i, j}); same-species pairs get one letter per
    // ordered pair (see UcsrReduction::key).
    let mut next: RegionId = 0;
    let mut a_ids = HashMap::new();
    let mut b_ids = HashMap::new();
    let mut weight = HashMap::new();
    for i in 0..k {
        for j in 0..k {
            let key = if letters[i].0 != letters[j].0 {
                (i.min(j), i.max(j))
            } else {
                (i, j)
            };
            if a_ids.contains_key(&(key.0, key.1, 1)) {
                continue;
            }
            for l in 1..=s {
                let wa = sigma_pair(inst, letters[key.0], letters[key.1]);
                let wb = sigma_pair(
                    inst,
                    letters[key.0],
                    (letters[key.1].0, letters[key.1].1.reversed()),
                );
                a_ids.insert((key.0, key.1, l), next);
                weight.insert(next, wa);
                next += 1;
                b_ids.insert((key.0, key.1, l), next);
                weight.insert(next, wb);
                next += 1;
            }
        }
    }
    let red = UcsrReduction {
        ucsr: UcsrInstance::default(),
        s,
        k,
        letters,
        letter_index,
        a_ids,
        b_ids,
    };

    // x^i = w^i_1 … w^i_s with w^i_l = u^i_l v^i_l (a_i ∈ H) or
    // u^i_l (v^i_{s+1-l})^R (a_i ∈ M).
    let x_word = |i: usize| -> Vec<Sym> {
        let mut x = Vec::with_capacity(2 * red.k * red.s);
        for l in 1..=red.s {
            let u: Vec<Sym> = (0..red.k).map(|j| red.a(i, j, l)).collect();
            x.extend_from_slice(&u);
            match red.letters[i].0 {
                Species::H => {
                    let v: Vec<Sym> = (0..red.k).map(|j| red.b(i, j, l)).collect();
                    x.extend_from_slice(&v);
                }
                Species::M => {
                    let v: Vec<Sym> = (0..red.k).map(|j| red.b(i, j, red.s + 1 - l)).collect();
                    x.extend(reverse_word(&v));
                }
            }
        }
        x
    };

    // H' and M': replace each region occurrence with x^i (reversed when
    // the occurrence was reversed).
    let mut ucsr = UcsrInstance {
        weight,
        ..Default::default()
    };
    for species in [Species::H, Species::M] {
        let frags = match species {
            Species::H => &inst.h,
            Species::M => &inst.m,
        };
        let out = match species {
            Species::H => &mut ucsr.h,
            Species::M => &mut ucsr.m,
        };
        for f in frags {
            let mut word = Vec::new();
            for &sym in &f.regions {
                let i = red.letter_index[&sym.id];
                let x = x_word(i);
                if sym.rev {
                    word.extend(reverse_word(&x));
                } else {
                    word.extend(x);
                }
            }
            out.push(word);
        }
    }
    UcsrReduction { ucsr, ..red }
}

/// The forward solution map of Property 2: turn aligned CSR column
/// pairs `(c_t, d_t)` (H occurrence, M occurrence) into a UCSR word
/// `κ(c_1, d_1) … κ(c_L, d_L)` with
/// `Score_UCSR = s · Σ σ(c_t, d_t)`.
pub fn map_solution_forward(red: &UcsrReduction, pairs: &[(Sym, Sym)]) -> Vec<Sym> {
    let mut f = Vec::new();
    for &(c, d) in pairs {
        let i = red.letter_index[&c.id];
        let j = red.letter_index[&d.id];
        // κ(c, d) per the four orientation cases of the proof.
        let word: Vec<Sym> = match (c.rev, d.rev) {
            (false, false) => (1..=red.s).map(|l| red.a(i, j, l)).collect(),
            (true, true) => reverse_word(&(1..=red.s).map(|l| red.a(i, j, l)).collect::<Vec<_>>()),
            (false, true) => (1..=red.s).map(|l| red.b(i, j, l)).collect(),
            (true, false) => reverse_word(&(1..=red.s).map(|l| red.b(i, j, l)).collect::<Vec<_>>()),
        };
        f.extend(word);
    }
    f
}

/// The backward map `φ₁` of Property 3: extract, for every original
/// H-side letter run `yᵢ` of the UCSR solution, the heaviest reduced
/// letter and emit the corresponding original pair. Conflicting pairs
/// (an M letter claimed twice) are resolved by keeping the heavier —
/// the proof's normal-form argument guarantees the surviving score is
/// at least `(1 − ε) · Score_UCSR / s`.
pub fn map_solution_back(red: &UcsrReduction, inst: &Instance, f: &[Sym]) -> Vec<(Sym, Sym)> {
    // Group f into runs per H'-home fragment... each reduced letter
    // A/B{i,j,l} belongs to original letters i and j; its H-side home
    // is whichever of i, j is an H letter.
    let mut decode: HashMap<RegionId, (usize, usize, bool)> = HashMap::new();
    for (&(i, j, l), &id) in &red.a_ids {
        let _ = l;
        decode.insert(id, (i, j, false));
    }
    for (&(i, j, l), &id) in &red.b_ids {
        let _ = l;
        decode.insert(id, (i, j, true));
    }
    // Best (weight, j, flip) per H letter i.
    let mut best: HashMap<usize, (Score, usize, bool, bool)> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    for sym in f {
        let Some(&(x, y, is_b)) = decode.get(&sym.id) else {
            continue;
        };
        let (i, j) = if red.letters[x].0 == Species::H {
            (x, y)
        } else {
            (y, x)
        };
        if red.letters[i].0 != Species::H || red.letters[j].0 != Species::M {
            continue; // same-species letter, weight 0
        }
        let w = red.ucsr.w(*sym);
        if w <= 0 {
            continue;
        }
        if !best.contains_key(&i) {
            order.push(i);
        }
        let e = best.entry(i).or_insert((Score::MIN, 0, false, false));
        if w > e.0 {
            *e = (w, j, is_b, sym.rev);
        }
    }
    // Emit pairs, resolving M-letter conflicts by weight.
    let mut claimed: HashMap<usize, (Score, usize)> = HashMap::new(); // j -> (w, i)
    for &i in &order {
        let (w, j, _, _) = best[&i];
        match claimed.get(&j) {
            Some(&(cw, _)) if cw >= w => {}
            _ => {
                claimed.insert(j, (w, i));
            }
        }
    }
    let mut out = Vec::new();
    for &i in &order {
        let (w, j, is_b, rev) = best[&i];
        if claimed.get(&j) != Some(&(w, i)) {
            continue;
        }
        let c = if rev {
            red.letters[i].1.reversed()
        } else {
            red.letters[i].1
        };
        // Orientation of d: a-letters pair same orientation, b-letters
        // opposite (relative to c).
        let d_base = red.letters[j].1;
        let d = match (is_b, rev) {
            (false, r) => {
                if r {
                    d_base.reversed()
                } else {
                    d_base
                }
            }
            (true, r) => {
                if r {
                    d_base
                } else {
                    d_base.reversed()
                }
            }
        };
        debug_assert!(sigma_pair(inst, (Species::H, c), (Species::M, d)) >= 0);
        out.push((c, d));
    }
    out
}

/// CSR score of a pair list.
pub fn pairs_score(inst: &Instance, pairs: &[(Sym, Sym)]) -> Score {
    pairs.iter().map(|&(c, d)| inst.sigma.score(c, d)).sum()
}

/// Exact UCSR solver for *tiny* instances, by branch and bound over
/// the common word `f` built left to right. At each step the candidate
/// next letters are those that can extend the current per-side run
/// structure (contiguous runs per fragment, monotone within a run).
/// Used to close the Theorem 1 loop in tests: solving the reduced UCSR
/// instance exactly and mapping back must recover the CSR optimum
/// within `1 − ε`.
pub fn solve_ucsr_exact(inst: &UcsrInstance, cap: usize) -> Vec<Sym> {
    // Letter homes per side.
    #[derive(Clone, Copy)]
    struct Home {
        frag: usize,
        pos: usize,
        rev: bool,
    }
    let index_side = |frags: &[Vec<Sym>]| -> HashMap<RegionId, Home> {
        let mut map = HashMap::new();
        for (fi, frag) in frags.iter().enumerate() {
            for (pos, s) in frag.iter().enumerate() {
                map.insert(
                    s.id,
                    Home {
                        frag: fi,
                        pos,
                        rev: s.rev,
                    },
                );
            }
        }
        map
    };
    let h_home = index_side(&inst.h);
    let m_home = index_side(&inst.m);
    // Candidate letters: those present on both sides with positive
    // weight (zero-weight letters never help a maximal solution; they
    // only constrain it).
    let mut letters: Vec<RegionId> = inst
        .weight
        .iter()
        .filter(|&(id, &w)| w > 0 && h_home.contains_key(id) && m_home.contains_key(id))
        .map(|(&id, _)| id)
        .collect();
    letters.sort_unstable();
    assert!(
        letters.len() <= cap,
        "UCSR exact capped at {cap} letters, got {}",
        letters.len()
    );

    // Per-side run state: sequence of (frag, last pos, direction) and
    // a closed-fragment set.
    #[derive(Clone, Default)]
    struct SideState {
        current: Option<(usize, usize, Option<bool>)>, // frag, last pos, dir (None = single)
        closed: Vec<usize>,
    }
    fn can_extend(st: &SideState, home: Home, flip: bool) -> Option<SideState> {
        // letter used with orientation flip relative to stored: the
        // run direction must be consistent (fwd run uses stored
        // orientation, rev run flips).
        let mut next = st.clone();
        match st.current {
            Some((f, last, dir)) if f == home.frag => {
                let fwd = home.pos > last;
                let needed_dir = fwd;
                if let Some(d) = dir {
                    if d != needed_dir {
                        return None;
                    }
                }
                // Orientation: fwd run requires flip == false; rev run
                // requires flip == true.
                if fwd == flip {
                    return None;
                }
                next.current = Some((f, home.pos, Some(needed_dir)));
                Some(next)
            }
            _ => {
                if st.closed.contains(&home.frag) {
                    return None;
                }
                if let Some((f, _, _)) = st.current {
                    next.closed.push(f);
                }
                // First letter of a run fixes nothing yet except the
                // orientation consistency below (flip free for singles
                // — direction decided by the next letter; we encode
                // "single so far" with dir None and remember flip by
                // requiring the next letter to agree, which the fwd ==
                // flip check above does via positions).
                let dir = None;
                // For a single letter, flip must still be recorded:
                // approximate by storing pos and accepting both dirs,
                // but a flipped single letter can only be extended by a
                // descending continuation. We conservatively re-check
                // at extension time, so accept here.
                let _ = flip;
                next.current = Some((home.frag, home.pos, dir));
                Some(next)
            }
        }
    }

    struct Ctx<'a> {
        inst: &'a UcsrInstance,
        letters: &'a [RegionId],
        h_home: &'a HashMap<RegionId, Home>,
        m_home: &'a HashMap<RegionId, Home>,
        best: (Score, Vec<Sym>),
    }
    fn rec(
        ctx: &mut Ctx<'_>,
        used: &mut Vec<bool>,
        f: &mut Vec<Sym>,
        score: Score,
        h_st: &SideState,
        m_st: &SideState,
        remaining: Score,
    ) {
        if score > ctx.best.0 {
            // Final validation guards the conservative run encoding.
            if ctx.inst.validate(f).is_ok() {
                ctx.best = (score, f.clone());
            }
        }
        if score + remaining <= ctx.best.0 {
            return;
        }
        for (i, &id) in ctx.letters.iter().enumerate() {
            if used[i] {
                continue;
            }
            let w = ctx.inst.weight[&id];
            let (hh, mh) = (ctx.h_home[&id], ctx.m_home[&id]);
            for flip in [false, true] {
                let Some(h2) = can_extend(h_st, hh, flip != hh.rev) else {
                    continue;
                };
                let Some(m2) = can_extend(m_st, mh, flip != mh.rev) else {
                    continue;
                };
                used[i] = true;
                f.push(Sym { id, rev: flip });
                rec(ctx, used, f, score + w, &h2, &m2, remaining - w);
                f.pop();
                used[i] = false;
            }
        }
    }
    let total: Score = letters.iter().map(|id| inst.weight[id]).sum();
    let mut ctx = Ctx {
        inst,
        letters: &letters,
        h_home: &h_home,
        m_home: &m_home,
        best: (0, Vec::new()),
    };
    let n = letters.len();
    rec(
        &mut ctx,
        &mut vec![false; n],
        &mut Vec::new(),
        0,
        &SideState::default(),
        &SideState::default(),
        total,
    );
    ctx.best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::instance::paper_example;

    #[test]
    fn reduction_shapes() {
        let inst = paper_example();
        let red = reduce_to_ucsr(&inst, 1.0);
        assert_eq!(red.k, 8); // a,b,c,d,s,t,u,v
        assert_eq!(red.s, 2 * red.k); // p = 1
        assert_eq!(red.ucsr.h.len(), 2);
        assert_eq!(red.ucsr.m.len(), 2);
        // each fragment letter expands to 2Ks reduced letters
        assert_eq!(red.ucsr.h[0].len(), 3 * 2 * red.k * red.s);
    }

    #[test]
    fn forward_map_preserves_score_times_s() {
        let inst = paper_example();
        let red = reduce_to_ucsr(&inst, 1.0);
        // The optimum solution's aligned pairs (Fig. 4): (a,s), (c,u), (dR,v).
        let al = &inst.alphabet;
        let sym = |n: &str| Sym::fwd(al.get(n).unwrap());
        let pairs = vec![
            (sym("a"), sym("s")),
            (sym("c"), sym("u")),
            (sym("d").reversed(), sym("v")),
        ];
        assert_eq!(pairs_score(&inst, &pairs), 11);
        let f = map_solution_forward(&red, &pairs);
        let score = red
            .ucsr
            .validate(&f)
            .expect("forward map is a valid UCSR solution");
        assert_eq!(score, 11 * red.s as Score);
    }

    #[test]
    fn backward_map_recovers_pairs() {
        let inst = paper_example();
        let red = reduce_to_ucsr(&inst, 1.0);
        let al = &inst.alphabet;
        let sym = |n: &str| Sym::fwd(al.get(n).unwrap());
        let pairs = vec![
            (sym("a"), sym("s")),
            (sym("c"), sym("u")),
            (sym("d").reversed(), sym("v")),
        ];
        let f = map_solution_forward(&red, &pairs);
        let back = map_solution_back(&red, &inst, &f);
        let score = pairs_score(&inst, &back);
        // Property 3 with ε = 1 still recovers the full score here
        // because the runs are pure.
        assert_eq!(score, 11, "recovered pairs: {back:?}");
    }

    #[test]
    fn validate_rejects_split_runs() {
        let inst = paper_example();
        let red = reduce_to_ucsr(&inst, 1.0);
        let al = &inst.alphabet;
        let sym = |n: &str| Sym::fwd(al.get(n).unwrap());
        // a-run, then d-run, then back to a's fragment (b) — h1's
        // letters split into two runs.
        let pairs = vec![
            (sym("a"), sym("s")),
            (sym("d"), sym("t")),
            (sym("b"), sym("t").reversed()),
        ];
        let f = map_solution_forward(&red, &pairs);
        assert!(red.ucsr.validate(&f).is_err());
    }

    #[test]
    fn exact_ucsr_on_tiny_instance() {
        // H: ⟨x, y⟩; M: ⟨y, x⟩ — only one of the two letters fits a
        // common subsequence in the same orientation, but reversing one
        // fragment aligns both.
        let ucsr = UcsrInstance {
            h: vec![vec![Sym::fwd(0), Sym::fwd(1)]],
            m: vec![vec![Sym::fwd(1), Sym::fwd(0)]],
            weight: HashMap::from([(0, 5), (1, 4)]),
        };
        let f = solve_ucsr_exact(&ucsr, 16);
        let score = ucsr.validate(&f).unwrap();
        // Conj(H) = {⟨x,y⟩, ⟨y^R,x^R⟩} (plus subsequences); Conj(M) =
        // {⟨y,x⟩, ⟨x^R,y^R⟩}. No two-letter word is common to both
        // sides — reversing flips the symbols as well as the order —
        // so the optimum is the single heavier letter: 5.
        assert_eq!(score, 5, "f = {f:?}");
    }

    #[test]
    fn exact_ucsr_respects_run_contiguity() {
        // H: ⟨a⟩⟨b⟩ two fragments, M: ⟨a, b⟩ one fragment: fine, both.
        let ucsr = UcsrInstance {
            h: vec![vec![Sym::fwd(0)], vec![Sym::fwd(1)]],
            m: vec![vec![Sym::fwd(0), Sym::fwd(1)]],
            weight: HashMap::from([(0, 3), (1, 3)]),
        };
        let f = solve_ucsr_exact(&ucsr, 16);
        assert_eq!(ucsr.validate(&f).unwrap(), 6);
        // H: ⟨a, c⟩ and M: ⟨a, b, c⟩ with b in another H fragment:
        // taking a and c leaves b's M position strictly inside the run?
        // No — runs are about fragments, not positions: a, b, c all fit
        // (H run a..c in fragment 0 is not contiguous positions-wise
        // but subsequences allow gaps).
        let ucsr2 = UcsrInstance {
            h: vec![vec![Sym::fwd(0), Sym::fwd(2)], vec![Sym::fwd(1)]],
            m: vec![vec![Sym::fwd(0), Sym::fwd(1), Sym::fwd(2)]],
            weight: HashMap::from([(0, 3), (1, 10), (2, 3)]),
        };
        let f2 = solve_ucsr_exact(&ucsr2, 16);
        let s2 = ucsr2.validate(&f2).unwrap();
        // f = ⟨a, b, c⟩ splits H fragment 0 into two runs (a … c with
        // b's fragment between) — invalid. But ⟨a, b⟩ keeps one run
        // per fragment on both sides and scores 3 + 10 = 13, beating
        // b alone (10) and a,c (6).
        assert_eq!(s2, 13, "f = {f2:?}");
    }

    #[test]
    fn theorem1_loop_on_paper_example() {
        // Solve the reduced UCSR instance exactly and map back: the
        // recovered CSR score must be within (1 − ε) of the CSR
        // optimum (Theorem 1 with an exact "approximation").
        // The full reduction of the 8-letter example has 2·K²·s letters
        // — too many for brute force — so shrink to a 2+2-region
        // sub-instance.
        let mut b = fragalign_model::InstanceBuilder::new();
        b.h_frag("h1", &["a", "b"]);
        b.m_frag("m1", &["s", "t"]);
        b.score("a", "s", 4);
        b.score("b", "tR", 3);
        let inst = b.build();
        let eps = 1.0;
        let red = reduce_to_ucsr(&inst, eps);
        // Positive-weight common letters only: small enough to search.
        let f = solve_ucsr_exact(&red.ucsr, 64);
        let u_score = red.ucsr.validate(&f).unwrap();
        // CSR optimum: a–s (4) + b–t^R (3)? b–t^R needs t reversed
        // while s stays forward — m1 = ⟨s,t⟩ laid forward pairs (a,s),
        // (b,t): σ(b,t) = 0, so optimum is 4 + 0 or reversal 3: 4.
        let exact = crate::exact::solve_exact(&inst, crate::exact::ExactLimits::default());
        assert_eq!(exact.score, 4);
        assert!(
            u_score >= exact.score * red.s as i64,
            "UCSR optimum dominates the mapped CSR optimum: {u_score} vs {}",
            exact.score * red.s as i64
        );
        let back = map_solution_back(&red, &inst, &f);
        let back_score = pairs_score(&inst, &back);
        assert!(back_score as f64 >= (1.0 - eps) * exact.score as f64);
    }

    #[test]
    fn validate_rejects_duplicate_letter() {
        let ucsr = UcsrInstance {
            h: vec![vec![Sym::fwd(0)]],
            m: vec![vec![Sym::fwd(0)]],
            weight: HashMap::from([(0, 5)]),
        };
        assert!(ucsr.validate(&[Sym::fwd(0), Sym::fwd(0)]).is_err());
        assert_eq!(ucsr.validate(&[Sym::fwd(0)]).unwrap(), 5);
    }
}
