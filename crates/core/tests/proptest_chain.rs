//! Differential properties of the anchor-chaining tier: on every
//! small instance where the exhaustive solver can certify the
//! optimum, chaining must stay consistent, deterministic, and at or
//! below that optimum — a heuristic may lose score, never invent it.

use fragalign_core::{solve_exact, ExactLimits};
use fragalign_model::check_consistency;
use fragalign_sim::{generate, SimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chain score ≤ certified optimum, consistency holds, and two
    /// runs agree bit for bit, across randomly seeded instances small
    /// enough for `exact`.
    #[test]
    fn chain_never_beats_the_certified_optimum(
        seed in 0u64..500,
        regions in 6usize..=10,
        h_frags in 2usize..=3,
        m_frags in 2usize..=3,
    ) {
        let sim = generate(&SimConfig {
            regions,
            h_frags,
            m_frags,
            loss_rate: 0.1,
            shuffles: 1,
            spurious: 2,
            seed,
            ..SimConfig::default()
        });
        let inst = &sim.instance;
        let sol = fragalign_align::solve_chain(inst);
        let report = check_consistency(inst, &sol);
        prop_assert!(report.is_ok(), "chain broke consistency: {report:?}");
        let optimum = solve_exact(inst, ExactLimits::default()).score;
        prop_assert!(
            sol.total_score() <= optimum,
            "chain scored {} above the optimum {optimum} on seed {seed}",
            sol.total_score()
        );
        prop_assert_eq!(&sol, &fragalign_align::solve_chain(inst), "nondeterministic");
    }
}
