//! Failure-injection properties for the improvement primitives: no
//! sequence of attempts — profitable or not — may ever corrupt a
//! solution. The driver only commits improving attempts; these tests
//! apply *arbitrary* ones and require consistency to survive.

use fragalign_align::ScoreOracle;
use fragalign_core::improve::{apply_attempt, enumerate_attempts, prepare_site, Attempt, Budget};
use fragalign_core::MethodSet;
use fragalign_model::{check_consistency, MatchSet, Site};
use fragalign_sim::{generate, SimConfig};
use proptest::prelude::*;

fn budget() -> Budget {
    Budget {
        site_cap: 8,
        border_cap: 8,
        plugs_per_target: 2,
        borders_per_pair: 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Applying any enumerated attempt — in any order, regardless of
    /// gain — keeps the solution consistent and all match scores
    /// non-negative.
    #[test]
    fn arbitrary_attempt_sequences_preserve_consistency(
        seed in 0u64..500,
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6),
    ) {
        let sim = generate(&SimConfig {
            regions: 10,
            h_frags: 3,
            m_frags: 3,
            loss_rate: 0.1,
            shuffles: 1,
            spurious: 2,
            seed,
            ..SimConfig::default()
        });
        let inst = &sim.instance;
        let oracle = ScoreOracle::new(inst);
        let mut set = MatchSet::new();
        for pick in picks {
            let attempts = enumerate_attempts(&oracle, &set, MethodSet::All, budget());
            if attempts.is_empty() {
                break;
            }
            let attempt = attempts[pick.index(attempts.len())];
            let mut next = set.clone();
            if apply_attempt(&mut next, &attempt, &oracle, 1).is_ok() {
                let report = check_consistency(inst, &next);
                prop_assert!(
                    report.is_ok(),
                    "attempt {attempt:?} broke consistency: {report:?}"
                );
                prop_assert!(next.iter().all(|(_, m)| m.score >= 0));
                set = next;
            }
        }
    }

    /// After a successful prepare, the site is free of matches.
    #[test]
    fn prepare_frees_the_site(
        seed in 0u64..200,
        frag_pick in any::<prop::sample::Index>(),
        lo in 0usize..8,
        len in 1usize..4,
    ) {
        let sim = generate(&SimConfig {
            regions: 12,
            h_frags: 3,
            m_frags: 3,
            seed,
            ..SimConfig::default()
        });
        let inst = &sim.instance;
        // Start from a non-trivial solution.
        let mut set = fragalign_core::solve_four_approx(inst);
        let frags: Vec<_> = inst.all_frag_ids().collect();
        let frag = frags[frag_pick.index(frags.len())];
        let n = inst.frag_len(frag);
        if n == 0 {
            return Ok(());
        }
        let lo = lo % n;
        let hi = (lo + len).min(n);
        if lo >= hi {
            return Ok(());
        }
        let site = Site::new(frag, lo, hi);
        let oracle = ScoreOracle::new(inst);
        match prepare_site(&mut set, site, &oracle) {
            Err(_) => {} // hidden: preparation correctly refused
            Ok(_) => {
                // No remaining match may overlap the prepared site.
                for (_, m) in set.iter() {
                    if let Some(s) = m.site_on(frag) {
                        prop_assert!(!s.overlaps(&site), "{s:?} still overlaps {site:?}");
                    }
                }
                prop_assert!(check_consistency(inst, &set).is_ok());
            }
        }
    }

    /// The enumerator never proposes hidden targets or invalid
    /// containers.
    #[test]
    fn enumerated_attempts_are_well_formed(seed in 0u64..200) {
        let sim = generate(&SimConfig {
            regions: 10,
            h_frags: 3,
            m_frags: 3,
            seed,
            ..SimConfig::default()
        });
        let inst = &sim.instance;
        let oracle = ScoreOracle::new(inst);
        let set = fragalign_core::solve_four_approx(inst);
        for attempt in enumerate_attempts(&oracle, &set, MethodSet::All, budget()) {
            match attempt {
                Attempt::I1 { target, container, .. } => {
                    prop_assert!(target.contained_in(&container));
                }
                Attempt::I2 { h_site, h_container, m_site, m_container } => {
                    prop_assert!(h_site.contained_in(&h_container));
                    prop_assert!(m_site.contained_in(&m_container));
                    prop_assert!(h_site.len() < inst.frag_len(h_site.frag));
                    prop_assert!(m_site.len() < inst.frag_len(m_site.frag));
                }
                Attempt::I3 { first, second } => {
                    prop_assert!(first.h_site.frag != second.h_site.frag);
                    prop_assert!(first.m_site.frag != second.m_site.frag);
                }
            }
        }
    }
}
