//! Properties of the assignment-relaxation score upper bound.
//!
//! The portfolio's retirement board trusts `score_upper_bound`
//! blindly: a racer is cancelled the moment another racer reaches it.
//! An unsound bound therefore silently discards correct work, so the
//! bound is pinned from both sides — never below the certified
//! optimum of the exhaustive solver, never above the naive
//! min-mass × σ_max bound it replaced.

use fragalign_core::{solve_exact, ExactLimits};
use fragalign_sim::{generate, SimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Certified optimum ≤ assignment bound ≤ naive bound, across
    /// randomly seeded instances small enough for `exact`.
    #[test]
    fn assignment_bound_sound_and_no_looser_than_naive(
        seed in 0u64..500,
        regions in 6usize..=10,
        h_frags in 2usize..=3,
        m_frags in 2usize..=3,
        default_score in -2i64..=1,
    ) {
        let sim = generate(&SimConfig {
            regions,
            h_frags,
            m_frags,
            loss_rate: 0.1,
            shuffles: 1,
            spurious: 2,
            seed,
            ..SimConfig::default()
        });
        let mut inst = sim.instance;
        // Cover non-zero defaults too: every unlisted pair then scores
        // `default_score`, which both bounds must absorb.
        inst.sigma.default_score = default_score;
        let bound = inst.score_upper_bound();
        let naive = inst.score_upper_bound_naive();
        prop_assert!(
            bound <= naive,
            "assignment bound {bound} looser than naive {naive} on seed {seed}"
        );
        let optimum = solve_exact(&inst, ExactLimits::default()).score;
        prop_assert!(
            optimum <= bound,
            "bound {bound} below certified optimum {optimum} on seed {seed} — unsound"
        );
    }
}
