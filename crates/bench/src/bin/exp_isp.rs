//! Experiment T4: the Berman–DasGupta two-phase algorithm's ratio-2
//! guarantee and its runtime shape vs the greedy baseline.
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_isp
//! ```

use fragalign::isp::tpa::stack_total;
use fragalign::isp::{solve_exact, solve_greedy, solve_tpa};
use fragalign_bench::isp_instance;
use std::time::Instant;

fn main() {
    // --- guarantee sweep (small instances vs exact) ------------------
    let mut worst_tpa = 1.0f64;
    let mut worst_greedy = 1.0f64;
    let mut mean_tpa = 0.0;
    let mut mean_greedy = 0.0;
    let mut stack_violations = 0;
    let cases = 200;
    for seed in 0..cases {
        let inst = isp_instance(seed as u64 + 1, 4, 14, 40);
        let exact = solve_exact(&inst).profit();
        if exact == 0 {
            continue;
        }
        let tpa = solve_tpa(&inst);
        let greedy = solve_greedy(&inst).profit();
        let rt = exact as f64 / tpa.profit().max(1) as f64;
        let rg = exact as f64 / greedy.max(1) as f64;
        worst_tpa = worst_tpa.max(rt);
        worst_greedy = worst_greedy.max(rg);
        mean_tpa += rt;
        mean_greedy += rg;
        // The two-phase invariant: selection ≥ stack total.
        if tpa.profit() < stack_total(&inst) {
            stack_violations += 1;
        }
    }
    println!("T4: ISP two-phase algorithm vs exact over {cases} instances");
    println!(
        "{:<10} {:>10} {:>10} {:>14}",
        "algorithm", "mean", "worst", "paper bound"
    );
    println!(
        "{:<10} {:>10.3} {:>10.3} {:>14}",
        "tpa",
        mean_tpa / cases as f64,
        worst_tpa,
        "2"
    );
    println!(
        "{:<10} {:>10.3} {:>10.3} {:>14}",
        "greedy",
        mean_greedy / cases as f64,
        worst_greedy,
        "none"
    );
    println!("phase-1 stack invariant violations: {stack_violations} (must be 0)");
    assert_eq!(stack_violations, 0);
    assert!(
        worst_tpa <= 2.0 + 1e-9,
        "ratio-2 guarantee violated: {worst_tpa}"
    );

    // --- runtime shape ------------------------------------------------
    println!("\nruntime (n log n shape):");
    println!(
        "{:>10} {:>12} {:>12}",
        "candidates", "tpa (µs)", "greedy (µs)"
    );
    for cands in [1000usize, 4000, 16000, 64000] {
        let inst = isp_instance(99, cands / 10, cands, (cands * 4) as i64);
        let t0 = Instant::now();
        let tpa = solve_tpa(&inst);
        let t_tpa = t0.elapsed();
        let t0 = Instant::now();
        let greedy = solve_greedy(&inst);
        let t_greedy = t0.elapsed();
        println!(
            "{cands:>10} {:>12.0} {:>12.0}   (profits {} vs {})",
            t_tpa.as_secs_f64() * 1e6,
            t_greedy.as_secs_f64() * 1e6,
            tpa.profit(),
            greedy.profit()
        );
    }
}
