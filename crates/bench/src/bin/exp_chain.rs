//! Experiment: chain-then-DP vs the pure DP family on large `sim`
//! instances. The chaining tier exists to open region counts the DP
//! solvers cannot touch; this bin quantifies both sides of that trade
//! — throughput (instances/sec) and the score it gives up — and emits
//! machine-readable `BENCH_chain.json` so the speedup and the score
//! ratio are tracked as data across PRs.
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_chain            # full grid
//! cargo run --release -p fragalign-bench --bin exp_chain -- --smoke
//! ```
//!
//! In the full grid the chain solver must beat the best pure-DP rival
//! by at least 5x instances/sec (asserted); the smoke grid only
//! exercises the plumbing for CI.

use fragalign::align::DpWorkspace;
use fragalign::model::{Instance, Score};
use fragalign::prelude::*;
use fragalign::sim::gen_batch;
use serde::Serialize;
use std::time::Instant;

/// The chaining tier under test, then its pure-DP rivals: the
/// factor-4 algorithm and the greedy baseline, the one-shot solvers
/// that pay full DP over the whole concatenation.
const SOLVERS: &[&str] = &["chain", "four", "greedy"];

#[derive(Clone, Copy, Serialize)]
struct GridCell {
    regions: usize,
    h_frags: usize,
    m_frags: usize,
    instances: usize,
    seed: u64,
}

#[derive(Serialize)]
struct Row {
    solver: String,
    solved: usize,
    total_score: Score,
    /// `Σ score / Σ best rival score`; 1.0 for the best rival itself.
    score_ratio_vs_best_rival: f64,
    instances_per_sec: f64,
    wall_secs: f64,
    dp_fills: u64,
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    grid: Vec<GridCell>,
    rows: Vec<Row>,
    /// chain instances/sec over the best rival's instances/sec.
    speedup_vs_best_rival: f64,
}

fn grid_instances(grid: &[GridCell]) -> Vec<Instance> {
    let mut out = Vec::new();
    for cell in grid {
        out.extend(
            gen_batch(
                &SimConfig {
                    regions: cell.regions,
                    h_frags: cell.h_frags,
                    m_frags: cell.m_frags,
                    seed: cell.seed,
                    ..SimConfig::default()
                },
                cell.instances,
            )
            .into_iter()
            .map(|s| s.instance),
        );
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let grid: Vec<GridCell> = if smoke {
        vec![GridCell {
            regions: 48,
            h_frags: 4,
            m_frags: 4,
            instances: 2,
            seed: 6001,
        }]
    } else {
        // 4x-15x past the `ExactLimits` region gate. The greedy
        // baseline's cost explodes past ~600 regions (tens of seconds
        // per instance), which bounds the grid; chain stays in
        // milliseconds well beyond it.
        vec![
            GridCell {
                regions: 300,
                h_frags: 6,
                m_frags: 6,
                instances: 3,
                seed: 6002,
            },
            GridCell {
                regions: 600,
                h_frags: 8,
                m_frags: 8,
                instances: 2,
                seed: 6003,
            },
        ]
    };
    let instances = grid_instances(&grid);
    let registry = SolverRegistry::global();
    let opts = EngineOptions::default();
    println!(
        "exp_chain: {} solvers x {} instances (smoke={smoke})",
        SOLVERS.len(),
        instances.len()
    );

    struct Raw {
        name: &'static str,
        total_score: Score,
        solved: usize,
        wall_secs: f64,
        dp_fills: u64,
    }
    let mut raws: Vec<Raw> = Vec::new();
    for &name in SOLVERS {
        let mut ws = DpWorkspace::new();
        let mut total_score: Score = 0;
        let mut dp_fills = 0u64;
        let start = Instant::now();
        for inst in &instances {
            let run = registry
                .solve_with_workspace(name, inst, opts, &mut ws)
                .expect("every solver here supports every instance");
            total_score += run.score;
            dp_fills += run.report.dp_fills;
        }
        let wall_secs = start.elapsed().as_secs_f64();
        println!(
            "  {name:<6} total {total_score:>8} in {wall_secs:>8.3}s ({:.2} inst/s, {dp_fills} DP fills)",
            instances.len() as f64 / wall_secs.max(1e-9)
        );
        raws.push(Raw {
            name,
            total_score,
            solved: instances.len(),
            wall_secs,
            dp_fills,
        });
    }

    let best_rival_score = raws
        .iter()
        .filter(|r| r.name != "chain")
        .map(|r| r.total_score)
        .max()
        .expect("at least one rival");
    let rival_secs = |r: &Raw| r.solved as f64 / r.wall_secs.max(1e-9);
    let best_rival_rate = raws
        .iter()
        .filter(|r| r.name != "chain")
        .map(rival_secs)
        .fold(0.0f64, f64::max);
    let chain = raws.iter().find(|r| r.name == "chain").expect("chain ran");
    let speedup = rival_secs(chain) / best_rival_rate.max(1e-9);
    let ratio = chain.total_score as f64 / best_rival_score.max(1) as f64;
    println!("chain speedup vs best DP rival: {speedup:.1}x at score ratio {ratio:.3}");
    if !smoke {
        assert!(
            speedup >= 5.0,
            "chain must beat the pure DP family by >= 5x instances/sec (got {speedup:.1}x)"
        );
    }

    let rows: Vec<Row> = raws
        .iter()
        .map(|r| Row {
            solver: r.name.to_owned(),
            solved: r.solved,
            total_score: r.total_score,
            score_ratio_vs_best_rival: r.total_score as f64 / best_rival_score.max(1) as f64,
            instances_per_sec: rival_secs(r),
            wall_secs: r.wall_secs,
            dp_fills: r.dp_fills,
        })
        .collect();
    let report = Report {
        smoke,
        grid,
        rows,
        speedup_vs_best_rival: speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_chain.json", json).expect("write BENCH_chain.json");
    println!("wrote BENCH_chain.json");
}
