//! Experiment: batch-solving throughput and the workspace-reuse
//! ablation. Emits machine-readable `BENCH_throughput.json` so the
//! perf trajectory across PRs has data points.
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_throughput          # full run
//! cargo run --release -p fragalign-bench --bin exp_throughput -- --smoke
//! ```
//!
//! Three measurements, all on the ambient rayon pool — real threads
//! since the shim rebuild, so `instances/sec` here reflects whatever
//! parallelism the host offers (the dedicated thread-scaling story
//! lives in `exp_speedup` / `BENCH_speedup.json`). The reuse-vs-
//! baseline ratios stay meaningful because both modes run on the same
//! pool:
//!
//! 1. **pipeline stages** — generate a batch, solve it with the
//!    per-call-allocation baseline (`reuse_workspaces = false`), solve
//!    it again with pooled workspaces, and time each stage;
//! 2. **kernel ablation** — the same site-pair `MS` workload through
//!    three kernels: the pre-workspace allocating free function
//!    (`ms_words`: fresh rows + reversed-word vec per call, no
//!    shortcuts), the workspace kernel with a *fresh* workspace per
//!    call (scan/early-exit/banded routing, but every fill
//!    re-allocates), and the workspace kernel with one *warm*
//!    workspace. The first ratio is the end-to-end kernel win; the
//!    second isolates pure buffer reuse;
//! 3. **allocations proxy** — oracle `dp_fills` vs `dp_reallocs`
//!    (buffer growth events): the baseline grows buffers on ~every
//!    fill, the pooled workspace a bounded number of times.

use fragalign::align::{ms_words, DpWorkspace, ScoreOracle};
use fragalign::model::{Instance, Sym};
use fragalign::prelude::*;
use fragalign::sim::gen_batch;
use serde::Serialize;
use std::sync::atomic::Ordering;
use std::time::Instant;

#[derive(Serialize)]
struct Config {
    instances: usize,
    regions: usize,
    frags: usize,
    algo: String,
    kernel_repeats: usize,
    smoke: bool,
    /// Width of the ambient rayon pool the batch stages ran on.
    pool_threads: usize,
}

#[derive(Serialize)]
struct Stage {
    name: String,
    seconds: f64,
}

#[derive(Serialize)]
struct Kernel {
    site_pairs: usize,
    repeats: usize,
    /// Pre-workspace baseline: the allocating `ms_words` free function.
    seconds_free_fn: f64,
    /// Workspace kernel, fresh workspace per call (allocating).
    seconds_fresh_workspace: f64,
    /// Workspace kernel, one warm workspace (non-allocating).
    seconds_warm_workspace: f64,
    /// End-to-end kernel win: free function vs warm workspace.
    speedup_vs_free_fn: f64,
    /// Pure buffer-reuse effect: fresh vs warm workspace.
    speedup_vs_fresh_workspace: f64,
}

#[derive(Serialize)]
struct AllocProxy {
    baseline_dp_fills: u64,
    baseline_dp_reallocs: u64,
    reuse_dp_fills: u64,
    reuse_dp_reallocs: u64,
}

#[derive(Serialize)]
struct Report {
    config: Config,
    stages: Vec<Stage>,
    instances_per_sec_baseline: f64,
    instances_per_sec_reuse: f64,
    batch_speedup_reuse: f64,
    kernel: Kernel,
    alloc_proxy: AllocProxy,
}

/// All whole-fragment vs whole-fragment word pairs of a batch — the
/// shape of the oracle's site-pair workload. Each pair keeps the index
/// of the instance whose σ scores it.
fn site_pair_words(instances: &[Instance]) -> Vec<(usize, Vec<Sym>, Vec<Sym>)> {
    let mut out = Vec::new();
    for (idx, inst) in instances.iter().enumerate() {
        for h in &inst.h {
            for m in &inst.m {
                out.push((idx, h.regions.clone(), m.regions.clone()));
            }
        }
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_instances, regions, frags, kernel_repeats) = if smoke {
        (4, 12, 3, 20)
    } else {
        (32, 24, 4, 200)
    };
    let algo = "csr";

    println!("exp_throughput: batch pipeline ({n_instances} instances, {regions} regions, {frags} frags, algo {algo}, smoke={smoke})");

    // Stage 1: generate.
    let t0 = Instant::now();
    let sims = gen_batch(
        &SimConfig {
            regions,
            h_frags: frags,
            m_frags: frags,
            seed: 2002,
            ..SimConfig::default()
        },
        n_instances,
    );
    let gen_s = t0.elapsed().as_secs_f64();
    let instances: Vec<Instance> = sims.into_iter().map(|s| s.instance).collect();

    // Warm-up: one untimed solve so neither timed mode pays the
    // first-touch cost (page faults, branch history) for the other.
    let mut baseline_opts = BatchOptions::new(algo);
    baseline_opts.engine.reuse_workspaces = false;
    let _ = solve_batch(&instances[..n_instances.min(2)], &baseline_opts);

    // Stage 2: solve with the per-call-allocation baseline.
    let t0 = Instant::now();
    let baseline = solve_batch(&instances, &baseline_opts).expect("csr is registered");
    let solve_baseline_s = t0.elapsed().as_secs_f64();

    // Stage 3: solve with pooled workspaces.
    let reuse_opts = BatchOptions::new(algo);
    let t0 = Instant::now();
    let reused = solve_batch(&instances, &reuse_opts).expect("csr is registered");
    let solve_reuse_s = t0.elapsed().as_secs_f64();
    assert_eq!(baseline, reused, "workspace reuse must not change results");

    // Stage 4: verify (consistency over the whole batch).
    let t0 = Instant::now();
    for (inst, sol) in instances.iter().zip(&reused) {
        check_consistency(inst, &sol.matches).expect("batch solutions are consistent");
    }
    let verify_s = t0.elapsed().as_secs_f64();

    // Kernel ablation: the identical MS workload through three kernel
    // variants; all three must agree bit-for-bit.
    let pairs = site_pair_words(&instances);
    let t0 = Instant::now();
    let mut acc_free = 0i64;
    for _ in 0..kernel_repeats {
        for (idx, u, v) in &pairs {
            acc_free += ms_words(&instances[*idx].sigma, u, v).0;
        }
    }
    let kernel_free_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut acc_fresh = 0i64;
    for _ in 0..kernel_repeats {
        for (idx, u, v) in &pairs {
            acc_fresh += DpWorkspace::new().ms_words(&instances[*idx].sigma, u, v).0;
        }
    }
    let kernel_fresh_s = t0.elapsed().as_secs_f64();
    let mut ws = DpWorkspace::new();
    let t0 = Instant::now();
    let mut acc_warm = 0i64;
    for _ in 0..kernel_repeats {
        for (idx, u, v) in &pairs {
            acc_warm += ws.ms_words(&instances[*idx].sigma, u, v).0;
        }
    }
    let kernel_warm_s = t0.elapsed().as_secs_f64();
    assert_eq!(acc_free, acc_warm, "kernels must agree");
    assert_eq!(acc_fresh, acc_warm, "fresh/warm workspaces must agree");

    // Allocations proxy: fill every interval table of one instance
    // under both oracle modes.
    let probe = &instances[0];
    let fill_all = |oracle: &ScoreOracle<'_>| {
        for h in probe.frag_ids(Species::H) {
            for m in probe.frag_ids(Species::M) {
                let _ = oracle.interval_table(h, m);
                let _ = oracle.interval_table(m, h);
            }
        }
    };
    let oracle_baseline = ScoreOracle::with_workspace_reuse(probe, false);
    fill_all(&oracle_baseline);
    let oracle_reuse = ScoreOracle::with_workspace_reuse(probe, true);
    fill_all(&oracle_reuse);
    let alloc_proxy = AllocProxy {
        baseline_dp_fills: oracle_baseline.stats.dp_fills.load(Ordering::Relaxed),
        baseline_dp_reallocs: oracle_baseline.stats.dp_reallocs.load(Ordering::Relaxed),
        reuse_dp_fills: oracle_reuse.stats.dp_fills.load(Ordering::Relaxed),
        reuse_dp_reallocs: oracle_reuse.stats.dp_reallocs.load(Ordering::Relaxed),
    };

    let report = Report {
        config: Config {
            instances: n_instances,
            regions,
            frags,
            algo: algo.to_string(),
            kernel_repeats,
            smoke,
            pool_threads: fragalign::par::current_threads(),
        },
        stages: vec![
            Stage {
                name: "gen".into(),
                seconds: gen_s,
            },
            Stage {
                name: "solve_baseline".into(),
                seconds: solve_baseline_s,
            },
            Stage {
                name: "solve_reuse".into(),
                seconds: solve_reuse_s,
            },
            Stage {
                name: "verify".into(),
                seconds: verify_s,
            },
        ],
        instances_per_sec_baseline: n_instances as f64 / solve_baseline_s.max(1e-9),
        instances_per_sec_reuse: n_instances as f64 / solve_reuse_s.max(1e-9),
        batch_speedup_reuse: solve_baseline_s / solve_reuse_s.max(1e-9),
        kernel: Kernel {
            site_pairs: pairs.len(),
            repeats: kernel_repeats,
            seconds_free_fn: kernel_free_s,
            seconds_fresh_workspace: kernel_fresh_s,
            seconds_warm_workspace: kernel_warm_s,
            speedup_vs_free_fn: kernel_free_s / kernel_warm_s.max(1e-9),
            speedup_vs_fresh_workspace: kernel_fresh_s / kernel_warm_s.max(1e-9),
        },
        alloc_proxy,
    };

    println!(
        "stages: gen {:.3}s, solve(baseline) {:.3}s, solve(reuse) {:.3}s, verify {:.3}s",
        gen_s, solve_baseline_s, solve_reuse_s, verify_s
    );
    println!(
        "throughput: {:.1} inst/s baseline, {:.1} inst/s reuse ({:.2}x)",
        report.instances_per_sec_baseline,
        report.instances_per_sec_reuse,
        report.batch_speedup_reuse
    );
    println!(
        "kernel MS workload ({} pairs x {}): {:.3}s free fn, {:.3}s fresh ws, {:.3}s warm ws ({:.2}x vs free fn, {:.2}x vs fresh ws)",
        report.kernel.site_pairs,
        report.kernel.repeats,
        kernel_free_s,
        kernel_fresh_s,
        kernel_warm_s,
        report.kernel.speedup_vs_free_fn,
        report.kernel.speedup_vs_fresh_workspace
    );
    println!(
        "alloc proxy (one instance, all interval tables): baseline {} fills / {} reallocs; reuse {} fills / {} reallocs",
        report.alloc_proxy.baseline_dp_fills,
        report.alloc_proxy.baseline_dp_reallocs,
        report.alloc_proxy.reuse_dp_fills,
        report.alloc_proxy.reuse_dp_reallocs
    );

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_throughput.json", json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");
}
