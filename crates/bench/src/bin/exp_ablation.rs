//! Experiment T9: ablations of the design decisions in DESIGN.md.
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_ablation
//! ```
//!
//! * **D1** commit policy: best-of-round vs first-positive.
//! * **D2** oracle cache: hit rates during a solver run.
//! * **D3** container choice: targets only vs free extensions
//!   (site/border caps).
//! * **D4** scaling: rounds and score with/without §4.1 truncation.

use fragalign::align::ScoreOracle;
use fragalign::core::improve::{improve, improve_with_oracle};
use fragalign::prelude::*;
use fragalign_bench::sim_instance;
use std::sync::atomic::Ordering;
use std::time::Instant;

fn main() {
    let instances: Vec<_> = (0..4u64).map(|s| sim_instance(20, 4, 100 + s)).collect();

    println!(
        "T9/D1: commit policy (mean over {} instances)",
        instances.len()
    );
    for (name, commit_best) in [("best-of-round", true), ("first-positive", false)] {
        let mut score = 0;
        let mut rounds = 0;
        let mut ms = 0.0;
        for inst in &instances {
            let t0 = Instant::now();
            let res = improve(
                inst,
                ImproveConfig {
                    commit_best,
                    parallel: commit_best,
                    ..Default::default()
                },
                MatchSet::new(),
            );
            ms += t0.elapsed().as_secs_f64() * 1e3;
            score += res.score;
            rounds += res.rounds;
        }
        println!("  {name:<15} total score {score:>6}  rounds {rounds:>4}  time {ms:>8.1} ms");
    }

    println!("\nT9/D2: oracle cache behaviour during csr_improve");
    for inst in instances.iter().take(1) {
        let oracle = ScoreOracle::new(inst);
        let _ = improve_with_oracle(&oracle, ImproveConfig::default(), MatchSet::new());
        let th = oracle.stats.table_hits.load(Ordering::Relaxed);
        let tm = oracle.stats.table_misses.load(Ordering::Relaxed);
        let ph = oracle.stats.pair_hits.load(Ordering::Relaxed);
        let pm = oracle.stats.pair_misses.load(Ordering::Relaxed);
        println!(
            "  interval tables: {tm} built, {th} cache hits ({:.1}% hit rate)",
            100.0 * th as f64 / (th + tm).max(1) as f64
        );
        println!(
            "  site pairs:      {pm} computed, {ph} cache hits ({:.1}% hit rate)",
            100.0 * ph as f64 / (ph + pm).max(1) as f64
        );
    }

    println!("\nT9/D3: candidate-site budget");
    for (name, site_cap, border_cap) in [
        ("full caps", 64usize, 64usize),
        ("cap 4", 4, 4),
        ("cap 2", 2, 2),
    ] {
        let mut score = 0;
        let mut ms = 0.0;
        for inst in &instances {
            let t0 = Instant::now();
            let res = improve(
                inst,
                ImproveConfig {
                    site_cap,
                    border_cap,
                    ..Default::default()
                },
                MatchSet::new(),
            );
            ms += t0.elapsed().as_secs_f64() * 1e3;
            score += res.score;
        }
        println!("  {name:<12} total score {score:>6}  time {ms:>8.1} ms");
    }

    println!("\nT9/D4: Chandra–Halldórsson scaling (§4.1)");
    for (name, scaling) in [("unscaled", false), ("scaled", true)] {
        let mut score = 0;
        let mut rounds = 0;
        let mut quantum = 0;
        for inst in &instances {
            let res = csr_improve(inst, scaling);
            score += res.score;
            rounds += res.rounds;
            quantum = quantum.max(res.quantum);
        }
        println!("  {name:<10} total score {score:>6}  rounds {rounds:>4}  max quantum {quantum}");
    }
}
