//! Experiment: `fragalign-serve` under concurrent load. Spawns the
//! service in-process, drives K client threads over localhost with a
//! seeded, repeat-heavy workload (mixed solvers over a small instance
//! pool, so the sharded result cache sees real traffic), and emits
//! machine-readable `BENCH_service.json` so the serving layer has a
//! measured throughput trajectory from its first day.
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_service           # full run
//! cargo run --release -p fragalign-bench --bin exp_service -- --smoke
//! ```
//!
//! This concurrency is real on both axes now: the worker pool runs on
//! `std::thread` fed by the genuinely concurrent crossbeam shim, and
//! since the rayon shim rebuild each worker's solve can additionally
//! fan out over the real rayon pool (see shims/README.md and
//! `exp_speedup`), so requests/sec scales with whatever cores the
//! host offers. Each request is classified by the server's
//! `X-Fragalign-Cache` header; the hit/miss latency split is the
//! cache's measured win (the acceptance bar is hits ≥ 5× faster than
//! misses on this repeat-heavy workload).
//!
//! A second phase replays an identical hot-cache request sequence
//! under three connection disciplines — close-per-request,
//! keep-alive, pipelined — with bit-identical responses asserted
//! across arms. The acceptance bar (full runs only) is keep-alive
//! ≥ 2× close-per-request: the event-loop redesign makes persistent
//! connections nearly free, so per-request connect/teardown becomes
//! the dominant cost of the close discipline.

use fragalign::model::Instance;
use fragalign::serve::{client, ServeConfig, Server};
use fragalign::sim::{gen_batch, SimConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Config {
    clients: usize,
    requests_per_client: usize,
    unique_instances: usize,
    solvers: Vec<String>,
    regions: usize,
    frags: usize,
    workers: usize,
    queue_depth: usize,
    cache_mb: usize,
    seed: u64,
    smoke: bool,
}

/// Latency summary over one request class, exact (sorted vector, not
/// bucketed like the server's own histogram).
#[derive(Serialize)]
struct Latency {
    count: usize,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl Latency {
    fn from_micros(mut micros: Vec<u64>) -> Latency {
        micros.sort_unstable();
        let count = micros.len();
        let pick = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let idx = ((q * count as f64).ceil() as usize).clamp(1, count) - 1;
            micros[idx] as f64 / 1000.0
        };
        Latency {
            count,
            mean_ms: if count == 0 {
                0.0
            } else {
                micros.iter().sum::<u64>() as f64 / count as f64 / 1000.0
            },
            p50_ms: pick(0.50),
            p99_ms: pick(0.99),
        }
    }
}

/// One connection-discipline arm of the hot-cache comparison: the
/// same request sequence driven close-per-request, keep-alive, or
/// pipelined.
#[derive(Serialize)]
struct ConnectionArm {
    mode: String,
    requests: usize,
    wall_secs: f64,
    requests_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    config: Config,
    requests: usize,
    wall_secs: f64,
    requests_per_sec: f64,
    cache_hit_rate: f64,
    all: Latency,
    hits: Latency,
    misses: Latency,
    /// `misses.mean_ms / hits.mean_ms` — the cache's measured win.
    hit_speedup_mean: f64,
    /// Same ratio at the median.
    hit_speedup_p50: f64,
    /// The hot-cache connection-discipline comparison (one client,
    /// identical request sequence per arm).
    connection_arms: Vec<ConnectionArm>,
    /// keep-alive req/s over close-per-request req/s.
    keepalive_speedup: f64,
    /// pipelined req/s over close-per-request req/s.
    pipelined_speedup: f64,
    /// The server's own `/metrics` document at the end of the run.
    server_metrics: fragalign::serve::metrics::MetricsSnapshot,
}

/// Drive `sequence` through `exchange` once, timing the whole arm.
fn run_arm(mode: &str, requests: usize, exchange: impl FnOnce() -> usize) -> ConnectionArm {
    let t0 = Instant::now();
    let answered = exchange();
    let wall_secs = t0.elapsed().as_secs_f64();
    assert_eq!(answered, requests, "{mode}: arm lost responses");
    ConnectionArm {
        mode: mode.to_string(),
        requests,
        wall_secs,
        requests_per_sec: requests as f64 / wall_secs.max(1e-9),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, requests_per_client, unique_instances, regions, frags) = if smoke {
        (4, 30, 6, 12, 3)
    } else {
        (8, 200, 24, 24, 4)
    };
    let solvers = ["csr", "four", "greedy"];
    let seed = 4242u64;
    let cfg = ServeConfig {
        workers: 4,
        queue_depth: 256,
        cache_mb: 32,
        ..ServeConfig::default()
    };
    println!(
        "exp_service: {clients} clients x {requests_per_client} requests, {unique_instances} instances x {} solvers, {} workers (smoke={smoke})",
        solvers.len(),
        cfg.workers
    );

    // The request pool: every (instance, solver) pair, pre-serialised
    // so client threads spend their time on the wire, not in serde.
    let instances: Vec<Instance> = gen_batch(
        &SimConfig {
            regions,
            h_frags: frags,
            m_frags: frags,
            loss_rate: 0.15,
            shuffles: 2,
            spurious: 3,
            seed,
            ..SimConfig::default()
        },
        unique_instances,
    )
    .into_iter()
    .map(|s| s.instance)
    .collect();
    let bodies: Vec<String> = instances
        .iter()
        .flat_map(|inst| {
            let inst_json = serde_json::to_string(inst).expect("instance serialises");
            solvers
                .iter()
                .map(move |solver| format!("{{\"instance\":{inst_json},\"solver\":\"{solver}\"}}"))
        })
        .collect();

    let server = Server::start(cfg.clone()).expect("server starts");
    let addr = server.addr();

    // Each client draws its request sequence from the shared pool
    // with its own seeded stream — repeat-heavy by construction
    // (requests ≫ pool size), deterministic by seed.
    let run_start = Instant::now();
    let per_client: Vec<(Vec<u64>, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed + c as u64);
                    let mut hits = Vec::new();
                    let mut misses = Vec::new();
                    for _ in 0..requests_per_client {
                        let body = &bodies[rng.random_range(0..bodies.len())];
                        let t0 = Instant::now();
                        let resp = client::request(
                            addr,
                            "POST",
                            "/v1/solve",
                            Some(body),
                            Duration::from_secs(60),
                        )
                        .expect("solve answers");
                        let micros = t0.elapsed().as_micros() as u64;
                        assert_eq!(resp.status, 200, "{}", resp.body);
                        match resp.header("x-fragalign-cache") {
                            Some("hit") => hits.push(micros),
                            Some("miss") => misses.push(micros),
                            other => panic!("missing cache marker: {other:?}"),
                        }
                    }
                    (hits, misses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_secs = run_start.elapsed().as_secs_f64();

    let mut hit_micros = Vec::new();
    let mut miss_micros = Vec::new();
    for (hits, misses) in per_client {
        hit_micros.extend(hits);
        miss_micros.extend(misses);
    }
    let requests = hit_micros.len() + miss_micros.len();
    let cache_hit_rate = hit_micros.len() as f64 / requests as f64;
    let all = Latency::from_micros(
        hit_micros
            .iter()
            .chain(&miss_micros)
            .copied()
            .collect::<Vec<_>>(),
    );
    let hits = Latency::from_micros(hit_micros);
    let misses = Latency::from_micros(miss_micros);
    let hit_speedup_mean = misses.mean_ms / hits.mean_ms.max(1e-9);
    let hit_speedup_p50 = misses.p50_ms / hits.p50_ms.max(1e-9);

    // Phase 2: connection-discipline comparison on a fully warm cache
    // (every pool body was solved above), one client, identical
    // request sequence per arm, so the only variable is how many
    // sockets the requests ride on. The close arm pays a fresh
    // connect + teardown per request; keep-alive pays one; pipelining
    // additionally overlaps request writes with response reads.
    let arm_requests = if smoke { 60 } else { 600 };
    let probe: Vec<&String> = (0..arm_requests)
        .map(|i| &bodies[i % bodies.len()])
        .collect();
    for body in bodies.iter() {
        // Ensure genuinely warm: the random phase may have missed some.
        let resp = client::post(addr, "/v1/solve", body).expect("warm-up solve");
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    let mut reference_bodies: Vec<String> = Vec::new();
    let close_arm = run_arm("close", arm_requests, || {
        for body in &probe {
            let resp = client::post(addr, "/v1/solve", body).expect("close-arm solve");
            assert_eq!(resp.status, 200, "{}", resp.body);
            reference_bodies.push(resp.body);
        }
        reference_bodies.len()
    });
    let keepalive_arm = run_arm("keep-alive", arm_requests, || {
        let mut conn = client::Connection::open(addr).expect("keep-alive connect");
        let mut answered = 0;
        for (body, expected) in probe.iter().zip(&reference_bodies) {
            let resp = conn
                .request("POST", "/v1/solve", Some(body))
                .expect("keep-alive solve");
            assert_eq!(resp.status, 200, "{}", resp.body);
            assert_eq!(
                &resp.body, expected,
                "keep-alive response diverged from close-mode response"
            );
            answered += 1;
        }
        answered
    });
    let pipelined_arm = run_arm("pipelined", arm_requests, || {
        let mut conn = client::Connection::open(addr).expect("pipelined connect");
        let mut answered = 0;
        for batch in probe.chunks(8) {
            for body in batch {
                conn.send("POST", "/v1/solve", Some(body))
                    .expect("pipelined send");
            }
            for i in 0..batch.len() {
                let resp = conn.recv().expect("pipelined recv");
                assert_eq!(resp.status, 200, "{}", resp.body);
                assert_eq!(
                    &resp.body,
                    &reference_bodies[answered + i],
                    "pipelined response out of order or diverged"
                );
            }
            answered += batch.len();
        }
        answered
    });
    let keepalive_speedup = keepalive_arm.requests_per_sec / close_arm.requests_per_sec.max(1e-9);
    let pipelined_speedup = pipelined_arm.requests_per_sec / close_arm.requests_per_sec.max(1e-9);
    let connection_arms = vec![close_arm, keepalive_arm, pipelined_arm];

    let server_metrics = server.state().metrics();
    server.shutdown();
    assert!(
        server_metrics.keepalive_reuse > 0,
        "the persistent arms must register keep-alive reuse"
    );

    assert!(
        server_metrics.rejected_503 == 0,
        "load generator outran its own queue depth"
    );
    assert!(
        cache_hit_rate > 0.0 && hits.count > 0 && misses.count > 0,
        "the workload must exercise both cache paths"
    );

    let report = Report {
        config: Config {
            clients,
            requests_per_client,
            unique_instances,
            solvers: solvers.iter().map(|s| s.to_string()).collect(),
            regions,
            frags,
            workers: cfg.workers,
            queue_depth: cfg.queue_depth,
            cache_mb: cfg.cache_mb,
            seed,
            smoke,
        },
        requests,
        wall_secs,
        requests_per_sec: requests as f64 / wall_secs.max(1e-9),
        cache_hit_rate,
        all,
        hits,
        misses,
        hit_speedup_mean,
        hit_speedup_p50,
        connection_arms,
        keepalive_speedup,
        pipelined_speedup,
        server_metrics,
    };

    println!(
        "throughput: {} requests in {:.3}s = {:.0} req/s ({} workers)",
        report.requests, report.wall_secs, report.requests_per_sec, report.config.workers
    );
    println!(
        "latency: p50 {:.3} ms, p99 {:.3} ms over all requests",
        report.all.p50_ms, report.all.p99_ms
    );
    println!(
        "cache: {:.1}% hit rate; hit mean {:.3} ms vs miss mean {:.3} ms = {:.1}x ({:.1}x at p50)",
        100.0 * report.cache_hit_rate,
        report.hits.mean_ms,
        report.misses.mean_ms,
        report.hit_speedup_mean,
        report.hit_speedup_p50
    );

    for arm in &report.connection_arms {
        println!(
            "connection arm {:>10}: {} requests in {:.3}s = {:.0} req/s",
            arm.mode, arm.requests, arm.wall_secs, arm.requests_per_sec
        );
    }
    println!(
        "persistent connections: keep-alive {:.1}x, pipelined {:.1}x over close-per-request",
        report.keepalive_speedup, report.pipelined_speedup
    );

    if !smoke {
        // The acceptance bars. Smoke runs (CI) skip the asserts: tiny
        // instances make misses cheap and shared runners make timing
        // noisy, and the smoke run's job is to prove the harness, not
        // the ratios.
        assert!(
            report.hit_speedup_mean >= 5.0,
            "cache hits must be ≥5x faster than misses (got {:.2}x)",
            report.hit_speedup_mean
        );
        assert!(
            report.keepalive_speedup >= 2.0,
            "keep-alive must be ≥2x close-per-request on a hot cache (got {:.2}x)",
            report.keepalive_speedup
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_service.json", json).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json");
}
