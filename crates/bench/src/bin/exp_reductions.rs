//! Experiments T5 and T6: the Lemma 1 (CSR→UCSR) and Theorem 2
//! (3-MIS→CSoP) reductions, executed and measured.
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_reductions
//! ```

use fragalign::core::csop::{csop_solution_to_mis, reduce_mis_to_csop};
use fragalign::core::ucsr::{map_solution_back, map_solution_forward, pairs_score, reduce_to_ucsr};
use fragalign::graph::{dirac_relabel, max_independent_set, random_regular};
use fragalign::model::Sym;
use fragalign::prelude::*;
use fragalign::sim::generate;

fn main() {
    // ---- T5: Lemma 1 --------------------------------------------------
    println!("T5: Lemma 1 reduction CSR → UCSR (φ₀ forward / φ₁ back)");
    println!(
        "{:>4} {:>6} {:>4} {:>6} {:>10} {:>12} {:>10} {:>10}",
        "seed", "eps", "K", "s", "CSR score", "UCSR(=s·CSR)", "back", "(1-ε)·CSR"
    );
    for seed in 0..4u64 {
        let sim = generate(&SimConfig {
            regions: 5,
            h_frags: 2,
            m_frags: 2,
            loss_rate: 0.0,
            shuffles: 1,
            spurious: 1,
            seed,
            ..SimConfig::default()
        });
        let inst = &sim.instance;
        let res = csr_improve(inst, false);
        let layout = LayoutBuilder::new(inst, &DpAligner)
            .layout(&res.matches)
            .unwrap();
        let mut pairs: Vec<(Sym, Sym)> = Vec::new();
        for col in &layout.columns {
            if let (Some(hc), Some(mc)) = (col.h, col.m) {
                let a = fragalign::model::ConjecturePair::cell_sym(
                    inst,
                    hc,
                    layout.placement(hc.0).unwrap().reversed,
                );
                let b = fragalign::model::ConjecturePair::cell_sym(
                    inst,
                    mc,
                    layout.placement(mc.0).unwrap().reversed,
                );
                if inst.sigma.score(a, b) > 0 {
                    pairs.push((a, b));
                }
            }
        }
        let csr_score = pairs_score(inst, &pairs);
        for eps in [1.0, 0.5, 0.25] {
            let red = reduce_to_ucsr(inst, eps);
            let f = map_solution_forward(&red, &pairs);
            let u = red.ucsr.validate(&f).expect("forward map valid");
            assert_eq!(u, csr_score * red.s as i64);
            let back = map_solution_back(&red, inst, &f);
            let back_score = pairs_score(inst, &back);
            assert!(back_score as f64 >= (1.0 - eps) * csr_score as f64);
            println!(
                "{seed:>4} {eps:>6.2} {:>4} {:>6} {csr_score:>10} {u:>12} {back_score:>10} {:>10.1}",
                red.k,
                red.s,
                (1.0 - eps) * csr_score as f64
            );
        }
    }

    // ---- T6: Theorem 2 --------------------------------------------------
    println!("\nT6: Theorem 2 reduction 3-MIS → CSoP (|U*| = 5n + |W*|)");
    println!(
        "{:>6} {:>6} {:>9} {:>6} {:>6} {:>8} {:>9}",
        "nodes", "seed", "elements", "|W*|", "5n", "|U*|", "5n+|W*|"
    );
    for nodes in [6usize, 8, 10, 12] {
        for seed in 0..2u64 {
            let g0 = random_regular(nodes, 3, seed + nodes as u64);
            let Ok((g, _)) = std::panic::catch_unwind(|| dirac_relabel(&g0, seed)) else {
                continue; // tiny graphs may lack a consecutive-free order
            };
            let inst = reduce_mis_to_csop(&g);
            let w = max_independent_set(&g);
            let n = g.len() / 2;
            let u_star = inst.solve_exact();
            let back = csop_solution_to_mis(&g, &inst.normalize(&u_star));
            assert_eq!(u_star.len(), 5 * n + w.len());
            assert_eq!(back.len(), w.len());
            println!(
                "{nodes:>6} {seed:>6} {:>9} {:>6} {:>6} {:>8} {:>9}",
                inst.universe(),
                w.len(),
                5 * n,
                u_star.len(),
                5 * n + w.len()
            );
        }
    }
    println!("\nall correspondences hold: approximating CSoP approximates 3-MIS,");
    println!("so CSR is MAX-SNP hard (Theorem 2 + Lemma 1 + Theorem 1).");
}
