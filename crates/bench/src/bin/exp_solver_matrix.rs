//! Experiment: the solver matrix — every registered solver over a
//! seeded `sim` batch grid, scored against the exhaustive optimum
//! where it is reachable. Emits machine-readable
//! `BENCH_solver_matrix.json`: one row per registry entry with its
//! empirical score ratio vs. exact and its throughput, so solver
//! regressions (quality or speed) show up as data across PRs.
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_solver_matrix           # full grid
//! cargo run --release -p fragalign-bench --bin exp_solver_matrix -- --smoke
//! ```
//!
//! The grid mixes multi-fragment instances (where `one-csr` is
//! skipped) with single-M instances (where it runs), so the skip
//! accounting exercises the registry's `supports` path too.

use fragalign::align::DpWorkspace;
use fragalign::model::{Instance, Score};
use fragalign::prelude::*;
use fragalign::sim::gen_batch;
use fragalign::sim::{soup_batch, torn_batch, SoupConfig, TornConfig};
use serde::Serialize;
use std::time::Instant;

#[derive(Clone, Copy, Serialize)]
struct GridCell {
    /// Workload channel: `clean` (the simulator), or the adversarial
    /// `torn` / `soup` generators (`m_frags` is emergent there and
    /// recorded as 0).
    channel: &'static str,
    regions: usize,
    h_frags: usize,
    m_frags: usize,
    instances: usize,
    seed: u64,
}

#[derive(Serialize)]
struct Row {
    solver: String,
    paper: String,
    ratio: String,
    solved: usize,
    skipped: usize,
    total_score: Score,
    /// `Σ score / Σ exact` over the instances both this solver and
    /// the exhaustive solver handled. `None` when that set is empty.
    score_ratio_vs_exact: Option<f64>,
    instances_per_sec: f64,
    wall_secs: f64,
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    grid: Vec<GridCell>,
    rows: Vec<Row>,
}

fn grid_instances(grid: &[GridCell]) -> Vec<Instance> {
    let mut out = Vec::new();
    for cell in grid {
        let sims = match cell.channel {
            "clean" => gen_batch(
                &SimConfig {
                    regions: cell.regions,
                    h_frags: cell.h_frags,
                    m_frags: cell.m_frags,
                    seed: cell.seed,
                    ..SimConfig::default()
                },
                cell.instances,
            ),
            "torn" => torn_batch(
                &TornConfig {
                    regions: cell.regions,
                    h_frags: cell.h_frags,
                    seed: cell.seed,
                    ..TornConfig::default()
                },
                cell.instances,
            ),
            "soup" => soup_batch(
                &SoupConfig {
                    regions: cell.regions,
                    h_frags: cell.h_frags,
                    seed: cell.seed,
                    ..SoupConfig::default()
                },
                cell.instances,
            ),
            other => panic!("unknown grid channel {other}"),
        };
        out.extend(sims.into_iter().map(|s| s.instance));
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let grid: Vec<GridCell> = if smoke {
        vec![
            GridCell {
                channel: "clean",
                regions: 8,
                h_frags: 2,
                m_frags: 2,
                instances: 3,
                seed: 1002,
            },
            GridCell {
                channel: "clean",
                regions: 8,
                h_frags: 3,
                m_frags: 1,
                instances: 3,
                seed: 2002,
            },
            GridCell {
                channel: "torn",
                regions: 10,
                h_frags: 2,
                m_frags: 0,
                instances: 2,
                seed: 7001,
            },
            GridCell {
                channel: "soup",
                regions: 10,
                h_frags: 2,
                m_frags: 0,
                instances: 2,
                seed: 7002,
            },
        ]
    } else {
        vec![
            GridCell {
                channel: "clean",
                regions: 8,
                h_frags: 2,
                m_frags: 2,
                instances: 8,
                seed: 1002,
            },
            GridCell {
                channel: "clean",
                regions: 10,
                h_frags: 3,
                m_frags: 3,
                instances: 8,
                seed: 1003,
            },
            GridCell {
                channel: "clean",
                regions: 8,
                h_frags: 3,
                m_frags: 1,
                instances: 8,
                seed: 2002,
            },
            GridCell {
                channel: "clean",
                regions: 14,
                h_frags: 4,
                m_frags: 2,
                instances: 4,
                seed: 3002,
            },
            GridCell {
                channel: "torn",
                regions: 12,
                h_frags: 3,
                m_frags: 0,
                instances: 4,
                seed: 7001,
            },
            GridCell {
                channel: "soup",
                regions: 12,
                h_frags: 2,
                m_frags: 0,
                instances: 4,
                seed: 7002,
            },
        ]
    };
    let instances = grid_instances(&grid);
    let registry = SolverRegistry::global();
    let opts = EngineOptions::default();
    println!(
        "exp_solver_matrix: {} solvers x {} instances (smoke={smoke})",
        registry.specs().len(),
        instances.len()
    );

    // Per-solver, per-instance scores (None = solver skipped it).
    let mut scores: Vec<Vec<Option<Score>>> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    for spec in registry.specs() {
        let solver = spec.build();
        let mut per_instance = Vec::with_capacity(instances.len());
        let mut ws = DpWorkspace::new();
        let mut solved = 0usize;
        let mut skipped = 0usize;
        let mut total_score: Score = 0;
        let start = Instant::now();
        for inst in &instances {
            if solver.supports(inst, &opts).is_err() {
                skipped += 1;
                per_instance.push(None);
                continue;
            }
            let run = registry
                .solve_with_workspace(spec.name, inst, opts, &mut ws)
                .expect("supported instances solve");
            solved += 1;
            total_score += run.score;
            per_instance.push(Some(run.score));
        }
        let wall_secs = start.elapsed().as_secs_f64();
        println!(
            "  {:<10} solved {solved:>2} skipped {skipped:>2} total {total_score:>6} in {wall_secs:.3}s",
            spec.name
        );
        rows.push(Row {
            solver: spec.name.to_owned(),
            paper: spec.paper.to_owned(),
            ratio: spec.ratio.to_owned(),
            solved,
            skipped,
            total_score,
            score_ratio_vs_exact: None, // filled below once exact's row exists
            instances_per_sec: solved as f64 / wall_secs.max(1e-9),
            wall_secs,
        });
        scores.push(per_instance);
    }

    // Empirical quality: each solver against the optimum, over the
    // instances both handled.
    let exact_idx = registry.position("exact").expect("exact is registered");
    let exact_scores = scores[exact_idx].clone();
    for (row, per_instance) in rows.iter_mut().zip(&scores) {
        let (mut mine, mut best) = (0i64, 0i64);
        for (s, e) in per_instance.iter().zip(&exact_scores) {
            if let (Some(s), Some(e)) = (s, e) {
                mine += s;
                best += e;
            }
        }
        row.score_ratio_vs_exact = (best > 0).then(|| mine as f64 / best as f64);
        if let Some(r) = row.score_ratio_vs_exact {
            println!("  {:<10} score ratio vs exact: {r:.3}", row.solver);
            assert!(
                r <= 1.0 + 1e-9,
                "{}: no solver may beat the optimum",
                row.solver
            );
        }
    }

    let report = Report { smoke, grid, rows };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_solver_matrix.json", json).expect("write BENCH_solver_matrix.json");
    println!("wrote BENCH_solver_matrix.json");
}
