//! Experiment: fit the shape → solver router. Sweeps every base
//! solver (the `portfolio` and `auto` meta-solvers sit out) over a
//! grid mixing the clean simulator with the adversarial channels
//! (torn-paper, read-soup) and the degenerate shapes (mega-fragment,
//! all-singletons, σ-desert), then derives the per-cell winner the
//! shipped [`Router::default`] table should agree with:
//!
//! * the **reference** score per instance is `exact` where its limits
//!   admit the instance, else the best score any solver reached;
//! * a solver is a **candidate** for a cell when it solved every
//!   instance of the cell at a score ratio ≥ 0.9 vs the reference —
//!   `exact` itself sits out (its acceptance limits make it a
//!   referee, not a route target);
//! * walls inside the cell's **tie window** — `max(1.5x the fastest
//!   candidate, 5 ms per instance)` — count as equal: below the
//!   absolute budget a solve is operationally free for the serving
//!   layer, and microsecond deltas there are noise;
//! * the **learned winner** is the highest-scoring candidate inside
//!   the window, exact score ties resolving to the earlier registry
//!   entry (stronger guarantees beat equal measurements).
//!
//! The emitted `BENCH_router.json` carries per-cell features,
//! per-solver stats, the learned winner, the shipped table's choice
//! and their agreement — plus the headline policy comparison: the
//! routed policy must clear 2x the throughput of always-exact (csr
//! where exact cannot run) while holding a ≥ 0.9 aggregate score
//! ratio. Both bars are asserted, so CI fails if the router rots.
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_router            # full grid
//! cargo run --release -p fragalign-bench --bin exp_router -- --smoke
//! ```

use fragalign::align::DpWorkspace;
use fragalign::model::{Instance, Score};
use fragalign::prelude::*;
use fragalign::sim::SimInstance;
use serde::Serialize;
use std::time::Instant;

/// Quality floor: a cell winner must hold this score ratio vs the
/// reference.
const FLOOR: f64 = 0.9;
/// Walls within this factor of the cell's fastest candidate count as
/// ties.
const TIE_WINDOW: f64 = 1.5;
/// Absolute per-instance wall under which a solve is operationally
/// free, in seconds: below it, quality decides.
const FREE_SECS_PER_INSTANCE: f64 = 0.005;

#[derive(Serialize)]
struct SolverCellStats {
    solver: String,
    solved: usize,
    skipped: usize,
    total_score: Score,
    /// `Σ score / Σ reference` over the instances this solver
    /// handled; `None` when it handled none (or the reference is 0).
    score_ratio: Option<f64>,
    wall_secs: f64,
    /// Solved the whole cell at `score_ratio ≥ FLOOR`.
    candidate: bool,
}

#[derive(Serialize)]
struct CellReport {
    channel: String,
    label: String,
    instances: usize,
    /// Features of the cell's first instance (cells are shape-
    /// homogeneous by construction).
    features: InstanceFeatures,
    /// `"exact"` when every instance of the cell fits the exact
    /// limits, `"best-of-sweep"` otherwise.
    reference: String,
    learned_winner: String,
    shipped_choice: String,
    agrees: bool,
    solvers: Vec<SolverCellStats>,
}

#[derive(Serialize)]
struct PolicySummary {
    policy: String,
    total_score: Score,
    score_ratio: f64,
    wall_secs: f64,
    instances_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    smoke: bool,
    floor: f64,
    tie_window: f64,
    free_secs_per_instance: f64,
    /// Fraction of cells where the shipped table picked the learned
    /// winner.
    agreement: f64,
    speedup_vs_always_exact: f64,
    routed: PolicySummary,
    always_exact: PolicySummary,
    cells: Vec<CellReport>,
}

struct Cell {
    channel: &'static str,
    label: String,
    instances: Vec<Instance>,
}

fn strip(sims: Vec<SimInstance>) -> Vec<Instance> {
    sims.into_iter().map(|s| s.instance).collect()
}

fn clean(label: &str, regions: usize, h: usize, m: usize, n: usize, seed: u64) -> Cell {
    Cell {
        channel: "clean",
        label: label.to_owned(),
        instances: strip(gen_batch(
            &SimConfig {
                regions,
                h_frags: h,
                m_frags: m,
                seed,
                ..SimConfig::default()
            },
            n,
        )),
    }
}

fn degenerate(shape: DegenerateShape, label: &str, regions: usize, n: usize, seed: u64) -> Cell {
    Cell {
        channel: "degenerate",
        label: label.to_owned(),
        instances: (0..n)
            .map(|i| generate_degenerate(shape, regions, seed.wrapping_add(i as u64)).instance)
            .collect(),
    }
}

fn grid(smoke: bool) -> Vec<Cell> {
    let per_cell = if smoke { 2 } else { 4 };
    let mut cells = vec![
        clean("clean-small", 8, 2, 2, per_cell, 1002),
        clean("clean-single-m", 10, 3, 1, per_cell, 2002),
        clean("clean-medium", 16, 3, 3, per_cell, 1003),
        Cell {
            channel: "torn",
            label: "torn-default".to_owned(),
            instances: strip(torn_batch(&TornConfig::default(), per_cell)),
        },
        Cell {
            channel: "soup",
            label: "soup-default".to_owned(),
            instances: strip(soup_batch(&SoupConfig::default(), per_cell)),
        },
        degenerate(
            DegenerateShape::SigmaDesert,
            "sigma-desert",
            24,
            per_cell,
            40,
        ),
    ];
    if !smoke {
        cells.push(clean("clean-single-m-large", 40, 6, 1, 3, 2009));
        cells.push(clean("clean-genome-scale", 100, 5, 5, 2, 1009));
        cells.push(Cell {
            channel: "torn",
            label: "torn-shredded".to_owned(),
            instances: strip(torn_batch(
                &TornConfig {
                    regions: 48,
                    h_frags: 6,
                    tear_rate: 0.6,
                    dup_rate: 0.25,
                    seed: 7,
                    ..TornConfig::default()
                },
                3,
            )),
        });
        cells.push(Cell {
            channel: "soup",
            label: "soup-dense".to_owned(),
            instances: strip(soup_batch(
                &SoupConfig {
                    regions: 16,
                    read_len: 3,
                    coverage: 3.0,
                    seed: 11,
                    ..SoupConfig::default()
                },
                3,
            )),
        });
        cells.push(degenerate(
            DegenerateShape::MegaFragment,
            "mega-fragment",
            24,
            3,
            50,
        ));
        cells.push(degenerate(
            DegenerateShape::AllSingletons,
            "all-singletons",
            16,
            3,
            60,
        ));
    }
    cells
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cells = grid(smoke);
    let registry = SolverRegistry::global();
    let opts = EngineOptions::default();
    let router = Router::default();
    // The sweep covers base solvers only: the meta-solvers are
    // *consumers* of this table, not candidates for it.
    let swept: Vec<&SolverSpec> = registry
        .specs()
        .iter()
        .filter(|s| s.name != "portfolio" && s.name != "auto")
        .collect();
    let total_instances: usize = cells.iter().map(|c| c.instances.len()).sum();
    println!(
        "exp_router: {} solvers x {total_instances} instances over {} cells (smoke={smoke})",
        swept.len(),
        cells.len()
    );

    let mut cell_reports: Vec<CellReport> = Vec::new();
    let mut agreed = 0usize;
    // Per-instance routed / baseline assignments for the policy run.
    let mut routed_plan: Vec<(&Instance, &'static str)> = Vec::new();
    let mut exact_plan: Vec<(&Instance, &'static str)> = Vec::new();
    let mut references: Vec<Score> = Vec::new();

    for cell in &cells {
        // Sweep: per-solver scores and walls over the cell.
        let mut stats: Vec<SolverCellStats> = Vec::new();
        let mut scores: Vec<Vec<Option<Score>>> = Vec::new();
        for spec in &swept {
            let solver = spec.build();
            let mut ws = DpWorkspace::new();
            let mut per_instance = Vec::with_capacity(cell.instances.len());
            let mut solved = 0usize;
            let mut skipped = 0usize;
            let mut total_score: Score = 0;
            let start = Instant::now();
            for inst in &cell.instances {
                if solver.supports(inst, &opts).is_err() {
                    skipped += 1;
                    per_instance.push(None);
                    continue;
                }
                let run = registry
                    .solve_with_workspace(spec.name, inst, opts, &mut ws)
                    .expect("supported instances solve");
                solved += 1;
                total_score += run.score;
                per_instance.push(Some(run.score));
            }
            stats.push(SolverCellStats {
                solver: spec.name.to_owned(),
                solved,
                skipped,
                total_score,
                score_ratio: None, // filled once the reference exists
                wall_secs: start.elapsed().as_secs_f64(),
                candidate: false,
            });
            scores.push(per_instance);
        }

        // Reference: exact where it ran, else best-over-sweep.
        let exact_col = swept.iter().position(|s| s.name == "exact").expect("exact");
        let cell_refs: Vec<Score> = (0..cell.instances.len())
            .map(|i| {
                scores[exact_col][i]
                    .unwrap_or_else(|| scores.iter().filter_map(|col| col[i]).max().unwrap_or(0))
            })
            .collect();
        let all_exact = scores[exact_col].iter().all(Option::is_some);
        let ref_sum: Score = cell_refs.iter().sum();
        for (stat, col) in stats.iter_mut().zip(&scores) {
            let (mut mine, mut theirs) = (0i64, 0i64);
            for (s, r) in col.iter().zip(&cell_refs) {
                if let Some(s) = s {
                    mine += s;
                    theirs += r;
                }
            }
            stat.score_ratio = (theirs > 0).then(|| mine as f64 / theirs as f64);
            stat.candidate = stat.solver != "exact"
                && stat.skipped == 0
                && stat
                    .score_ratio
                    .unwrap_or(if theirs == 0 { 1.0 } else { 0.0 })
                    >= FLOOR;
        }

        // Learned winner: highest score ratio inside the tie window
        // (absolute-or-relative; see module docs), exact ties to the
        // earlier registry entry.
        let fastest = stats
            .iter()
            .filter(|s| s.candidate)
            .map(|s| s.wall_secs)
            .fold(f64::INFINITY, f64::min);
        let window =
            (fastest * TIE_WINDOW).max(FREE_SECS_PER_INSTANCE * cell.instances.len() as f64);
        let mut best_in_window: Option<&SolverCellStats> = None;
        for s in stats
            .iter()
            .filter(|s| s.candidate && s.wall_secs <= window)
        {
            // Strict improvement only: exact score ties keep the
            // earlier registry entry.
            if best_in_window.is_none_or(|b| s.score_ratio > b.score_ratio) {
                best_in_window = Some(s);
            }
        }
        let learned = best_in_window
            .expect("csr always qualifies: it supports everything")
            .solver
            .clone();

        let shipped = router.route(&cell.instances[0], &opts);
        let agrees = shipped == learned;
        agreed += agrees as usize;
        println!(
            "  {:<18} learned {:<8} shipped {:<8} ({})",
            cell.label,
            learned,
            shipped,
            if agrees { "agree" } else { "DISAGREE" }
        );

        for inst in &cell.instances {
            routed_plan.push((inst, router.route(inst, &opts)));
            let baseline = if registry
                .spec("exact")
                .expect("exact")
                .build()
                .supports(inst, &opts)
                .is_ok()
            {
                "exact"
            } else {
                "csr"
            };
            exact_plan.push((inst, baseline));
        }
        references.extend(cell_refs);
        let _ = ref_sum;
        cell_reports.push(CellReport {
            channel: cell.channel.to_owned(),
            label: cell.label.clone(),
            instances: cell.instances.len(),
            features: InstanceFeatures::of(&cell.instances[0]),
            reference: if all_exact { "exact" } else { "best-of-sweep" }.to_owned(),
            learned_winner: learned,
            shipped_choice: shipped.to_owned(),
            agrees,
            solvers: stats,
        });
    }

    // Policy comparison over the whole mixed grid.
    let run_policy = |name: &str, plan: &[(&Instance, &'static str)]| -> PolicySummary {
        let mut ws = DpWorkspace::new();
        let mut total: Score = 0;
        let start = Instant::now();
        for (inst, solver) in plan {
            let run = registry
                .solve_with_workspace(solver, inst, opts, &mut ws)
                .expect("policy solvers support their instances");
            total += run.score;
        }
        let wall = start.elapsed().as_secs_f64();
        let ref_total: Score = references.iter().sum();
        PolicySummary {
            policy: name.to_owned(),
            total_score: total,
            score_ratio: total as f64 / (ref_total as f64).max(1.0),
            wall_secs: wall,
            instances_per_sec: plan.len() as f64 / wall.max(1e-9),
        }
    };
    let routed = run_policy("routed", &routed_plan);
    let always_exact = run_policy("always-exact", &exact_plan);
    let speedup = routed.instances_per_sec / always_exact.instances_per_sec.max(1e-9);
    let agreement = agreed as f64 / cells.len() as f64;
    println!(
        "routed policy: {:.1} inst/s at ratio {:.3}; always-exact: {:.1} inst/s -> speedup {speedup:.1}x, table agreement {:.0}%",
        routed.instances_per_sec,
        routed.score_ratio,
        always_exact.instances_per_sec,
        agreement * 100.0
    );
    assert!(
        routed.score_ratio >= FLOOR,
        "routed policy must hold a >= {FLOOR} aggregate score ratio (got {:.3})",
        routed.score_ratio
    );
    assert!(
        speedup >= 2.0,
        "routed policy must clear 2x always-exact throughput (got {speedup:.2}x)"
    );

    let report = Report {
        smoke,
        floor: FLOOR,
        tie_window: TIE_WINDOW,
        free_secs_per_instance: FREE_SECS_PER_INSTANCE,
        agreement,
        speedup_vs_always_exact: speedup,
        routed,
        always_exact,
        cells: cell_reports,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_router.json", json).expect("write BENCH_router.json");
    println!("wrote BENCH_router.json");
}
