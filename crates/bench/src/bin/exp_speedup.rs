//! Experiment T8: runtime scaling and parallel speedup.
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_speedup
//! ```
//!
//! Part 1: solver wall-clock vs instance size (the quadratic site
//! enumeration dominating CSR_Improve; the concatenation DP dominating
//! the factor-4 algorithm). Part 2: wavefront DP and parallel
//! attempt-evaluation speedup over thread counts (IPPS context).

use fragalign::align::{p_score, p_score_wavefront};
use fragalign::par::{speedup_sweep, with_threads};
use fragalign::prelude::*;
use fragalign_bench::{sim_instance, table, word};
use std::time::Instant;

fn main() {
    println!("T8a: runtime vs instance size (single pool)");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>12}",
        "regions", "frags", "greedy (ms)", "four (ms)", "csr (ms)"
    );
    for (regions, frags) in [(12usize, 3usize), (24, 4), (36, 5), (48, 6)] {
        let inst = sim_instance(regions, frags, 77);
        let t0 = Instant::now();
        let _ = solve_greedy(&inst);
        let t_greedy = t0.elapsed();
        let t0 = Instant::now();
        let _ = solve_four_approx(&inst);
        let t_four = t0.elapsed();
        let t0 = Instant::now();
        let _ = csr_improve(&inst, false);
        let t_csr = t0.elapsed();
        println!(
            "{regions:>8} {frags:>6} {:>12.1} {:>12.1} {:>12.1}",
            t_greedy.as_secs_f64() * 1e3,
            t_four.as_secs_f64() * 1e3,
            t_csr.as_secs_f64() * 1e3
        );
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!(
        "\nT8b: wavefront P_score speedup ({} cores available)",
        cores
    );
    let t = table(5, 32);
    let u = word(1, 2000, 32, 0);
    let v = word(2, 2000, 32, 1000);
    let seq = p_score(&t, &u, &v);
    println!("{:>8} {:>10} {:>8}", "threads", "time (ms)", "speedup");
    for p in speedup_sweep(cores, || p_score_wavefront(&t, &u, &v)) {
        println!(
            "{:>8} {:>10.1} {:>8.2}",
            p.threads,
            p.elapsed.as_secs_f64() * 1e3,
            p.speedup
        );
    }
    let (par, _) = with_threads(cores, || p_score_wavefront(&t, &u, &v));
    assert_eq!(par, seq, "parallel DP is exact");

    println!("\nT8c: CSR_Improve attempt-evaluation speedup");
    let inst = sim_instance(28, 4, 13);
    println!("{:>8} {:>10} {:>8}", "threads", "time (ms)", "score");
    let mut t_count = 1;
    let mut scores = Vec::new();
    while t_count <= cores {
        let inst2 = inst.clone();
        let (score, elapsed) = with_threads(t_count, move || csr_improve(&inst2, false).score);
        println!(
            "{:>8} {:>10.1} {:>8}",
            t_count,
            elapsed.as_secs_f64() * 1e3,
            score
        );
        scores.push(score);
        t_count *= 2;
    }
    assert!(
        scores.windows(2).all(|w| w[0] == w[1]),
        "deterministic across pools"
    );
}
