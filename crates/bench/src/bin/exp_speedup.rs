//! Experiment T8: parallel speedup on the real thread pool.
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_speedup           # full run
//! cargo run --release -p fragalign-bench --bin exp_speedup -- --smoke
//! ```
//!
//! Since the rayon shim rebuild the pool runs real `std::thread`
//! workers, so these numbers are hardware-bound, not shim-bound. Three
//! workloads sweep pools of 1/2/4/8 threads:
//!
//! 1. **batch** — `solve_batch` with `csr` over a seeded sim batch
//!    (the embarrassingly parallel headline workload);
//! 2. **portfolio** — the racing meta-solver, one instance at a time
//!    at top level so its racers genuinely fan out across pool
//!    workers (inside `solve_batch` they would run inline on one
//!    batch worker — instance-level parallelism would be measured
//!    instead);
//! 3. **wavefront** — the anti-diagonal `P_score` kernel via
//!    [`speedup_sweep`].
//!
//! Every sweep asserts bit-identical results across thread counts, and
//! on hardware with ≥ 4 cores a release run asserts the batch workload
//! reaches ≥ 1.5× at 4 threads. Emits machine-readable
//! `BENCH_speedup.json` so the perf trajectory across PRs has data
//! points.

use fragalign::align::{p_score, p_score_wavefront};
use fragalign::model::Instance;
use fragalign::par::{speedup_sweep, with_threads};
use fragalign::prelude::*;
use fragalign::sim::gen_batch;
use fragalign_bench::{table, word};
use serde::Serialize;

#[derive(Serialize)]
struct Config {
    smoke: bool,
    batch_instances: usize,
    batch_regions: usize,
    batch_frags: usize,
    portfolio_instances: usize,
    available_cores: usize,
    release: bool,
}

#[derive(Serialize)]
struct Point {
    threads: usize,
    pool_threads: usize,
    seconds: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Workload {
    name: String,
    points: Vec<Point>,
}

#[derive(Serialize)]
struct Report {
    config: Config,
    workloads: Vec<Workload>,
    /// The headline number: batch wall-clock speedup at 4 threads.
    batch_speedup_4t: f64,
    /// Whether every sweep returned bit-identical results at every
    /// thread count (asserted, so a written report always says true).
    deterministic: bool,
}

/// One canonical sweep: 1/2/4/8-thread pools via [`speedup_sweep`],
/// which itself asserts bit-identical results at every width. The
/// workload runs once untimed first so no point pays first-touch
/// costs (page faults, lazy pool construction).
fn sweep<T, F>(name: &str, workload: &F) -> Workload
where
    T: Send + PartialEq + std::fmt::Debug,
    F: Fn() -> T + Sync,
{
    let _ = workload(); // untimed warm-up
    Workload {
        name: name.to_owned(),
        points: speedup_sweep(8, workload)
            .into_iter()
            .map(to_point)
            .collect(),
    }
}

fn to_point(p: fragalign::par::SpeedupPoint) -> Point {
    Point {
        threads: p.threads,
        pool_threads: p.pool_threads,
        seconds: p.elapsed.as_secs_f64(),
        speedup: p.speedup,
    }
}

/// One portfolio outcome per instance: total score plus winner name.
type RaceOutcomes = Vec<(i64, Option<String>)>;

fn print_workload(w: &Workload) {
    println!("\n{}:", w.name);
    println!("{:>8} {:>10} {:>8}", "threads", "time (ms)", "speedup");
    for p in &w.points {
        println!(
            "{:>8} {:>10.1} {:>8.2}",
            p.threads,
            p.seconds * 1e3,
            p.speedup
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (batch_n, regions, frags, portfolio_n) = if smoke { (8, 12, 3, 3) } else { (32, 20, 4, 6) };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let release = !cfg!(debug_assertions);
    println!(
        "exp_speedup: real-thread speedup sweep ({batch_n} batch instances, {regions} regions, \
         {frags} frags, {cores} cores, smoke={smoke}, release={release})"
    );

    let batch: Vec<Instance> = gen_batch(
        &SimConfig {
            regions,
            h_frags: frags,
            m_frags: frags,
            loss_rate: 0.1,
            shuffles: 1,
            spurious: 2,
            seed: 8080,
            ..SimConfig::default()
        },
        batch_n,
    )
    .into_iter()
    .map(|s| s.instance)
    .collect();
    let batch_opts = BatchOptions::new("csr");
    let batch_ref = &batch;
    let batch_workload = sweep("batch (csr)", &move || {
        solve_batch(batch_ref, &batch_opts).expect("batch solves")
    });

    let portfolio_batch: Vec<Instance> = batch.iter().take(portfolio_n).cloned().collect();
    let reg = SolverRegistry::global();
    let portfolio_ref = &portfolio_batch;
    let portfolio_workload = sweep("portfolio race", &move || -> RaceOutcomes {
        // One instance at a time at top level, so the racers (not the
        // batch) are what fans out across the pool.
        portfolio_ref
            .iter()
            .map(|inst| {
                let run = reg
                    .solve("portfolio", inst, EngineOptions::default())
                    .expect("portfolio races everywhere");
                (run.score, run.report.winner)
            })
            .collect()
    });

    // Wavefront kernel sweep (the classic IPPS decomposition).
    let sigma = table(5, 32);
    let (ulen, vlen) = if smoke { (900, 900) } else { (2000, 2000) };
    let u = word(1, ulen, 32, 0);
    let v = word(2, vlen, 32, 1000);
    let seq = p_score(&sigma, &u, &v);
    let kernel = move || p_score_wavefront(&sigma, &u, &v);
    let wavefront_workload = sweep("wavefront P_score", &kernel);
    let (par, _) = with_threads(cores.max(2), &kernel);
    assert_eq!(par, seq, "parallel DP is exact");

    for w in [&batch_workload, &portfolio_workload, &wavefront_workload] {
        print_workload(w);
    }

    let batch_speedup_4t = batch_workload
        .points
        .iter()
        .find(|p| p.threads == 4)
        .map(|p| p.speedup)
        .unwrap_or(0.0);
    println!("\nbatch speedup at 4 threads: {batch_speedup_4t:.2}x");
    if release && cores >= 4 {
        assert!(
            batch_speedup_4t >= 1.5,
            "4-thread batch run must be >= 1.5x the 1-thread run on >= 4 cores \
             (got {batch_speedup_4t:.2}x)"
        );
    } else {
        println!(
            "(speedup floor not asserted: needs a release build and >= 4 cores; \
             this host has {cores})"
        );
    }

    let report = Report {
        config: Config {
            smoke,
            batch_instances: batch_n,
            batch_regions: regions,
            batch_frags: frags,
            portfolio_instances: portfolio_n,
            available_cores: cores,
            release,
        },
        workloads: vec![batch_workload, portfolio_workload, wavefront_workload],
        batch_speedup_4t,
        deterministic: true,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_speedup.json", json).expect("write BENCH_speedup.json");
    println!("wrote BENCH_speedup.json");
}
