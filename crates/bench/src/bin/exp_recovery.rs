//! Experiment T7: order/orient recovery on simulated genomes as noise
//! rises — the paper's motivating application (Fig. 1, ref [8]).
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_recovery
//! ```

use fragalign::prelude::*;
use fragalign::sim::generate;

fn main() {
    println!("T7: ground-truth recovery vs noise (mean over seeds)");
    println!(
        "{:>6} {:<10} {:>8} {:>8} {:>8} {:>8}",
        "noise", "algorithm", "recall", "order", "orient", "islands"
    );
    let seeds: Vec<u64> = (0..5).collect();
    for noise in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let mut acc: Vec<(&str, f64, f64, f64, f64)> = vec![
            ("greedy", 0.0, 0.0, 0.0, 0.0),
            ("four", 0.0, 0.0, 0.0, 0.0),
            ("csr", 0.0, 0.0, 0.0, 0.0),
        ];
        for &seed in &seeds {
            let sim = generate(&SimConfig {
                regions: 20,
                h_frags: 4,
                m_frags: 4,
                loss_rate: noise,
                shuffles: (noise * 10.0) as usize,
                spurious: (noise * 12.0) as usize,
                seed: seed * 7 + 1,
                ..SimConfig::default()
            });
            let sols = [
                solve_greedy(&sim.instance),
                solve_four_approx(&sim.instance),
                csr_improve(&sim.instance, false).matches,
            ];
            for (slot, sol) in acc.iter_mut().zip(sols.iter()) {
                let rep = evaluate_recovery(&sim, sol);
                slot.1 += rep.pair_recall;
                slot.2 += rep.order_accuracy;
                slot.3 += rep.orient_accuracy;
                slot.4 += rep.islands as f64;
            }
        }
        let n = seeds.len() as f64;
        for (name, recall, order, orient, islands) in acc {
            println!(
                "{noise:>6.2} {name:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.1}",
                recall / n,
                order / n,
                orient / n,
                islands / n
            );
        }
    }
    println!("\nexpected shape: csr ≥ four ≥ greedy on recall; all degrade with noise.");
}
