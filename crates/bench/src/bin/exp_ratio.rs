//! Experiment T1–T3: empirical approximation ratios against the exact
//! optimum (Theorems 4–6, Corollary 1, Lemma 9).
//!
//! ```sh
//! cargo run --release -p fragalign-bench --bin exp_ratio
//! ```
//!
//! Sweeps random instances small enough for the exhaustive solver and
//! prints, per algorithm, the mean and worst observed ratio
//! `exact / achieved` — the paper proves ≤ 4 for the Corollary 1
//! algorithm and ≤ 3 + ε for the improvement algorithms; greedy has no
//! guarantee.

use fragalign::prelude::*;
use fragalign::sim::generate;

fn main() {
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("greedy", Vec::new()),
        ("matching(L9)", Vec::new()),
        ("four(Cor1)", Vec::new()),
        ("full(Thm4)", Vec::new()),
        ("border(Thm5)", Vec::new()),
        ("csr(Thm6)", Vec::new()),
        ("csr+scaling", Vec::new()),
    ];
    let mut cases = 0;
    for regions in [8usize, 10, 12] {
        for seed in 0..8u64 {
            let cfg = SimConfig {
                regions,
                h_frags: 3,
                m_frags: 3,
                loss_rate: 0.1,
                shuffles: 1,
                spurious: 2,
                base_score: 10,
                score_jitter: 5,
                seed: seed * 131 + regions as u64,
                ..SimConfig::default()
            };
            let inst = generate(&cfg).instance;
            let exact = solve_exact(
                &inst,
                ExactLimits {
                    max_frags: 4,
                    max_regions: 40,
                },
            )
            .score;
            if exact == 0 {
                continue;
            }
            cases += 1;
            let scores = [
                solve_greedy(&inst).total_score(),
                border_matching_2approx(&inst).total_score(),
                solve_four_approx(&inst).total_score(),
                full_improve(&inst, false).score,
                border_improve(&inst, false).score,
                csr_improve(&inst, false).score,
                csr_improve(&inst, true).score,
            ];
            for (row, &score) in rows.iter_mut().zip(scores.iter()) {
                let ratio = if score == 0 {
                    f64::INFINITY
                } else {
                    exact as f64 / score as f64
                };
                row.1.push(ratio);
            }
        }
    }
    println!("T1-T3: approximation ratios over {cases} random instances (exact/achieved)");
    println!(
        "{:<14} {:>10} {:>10} {:>12}",
        "algorithm", "mean", "worst", "paper bound"
    );
    let bounds = [
        "none",
        "2 (border)",
        "4",
        "3+eps",
        "3+eps",
        "3+eps",
        "3+eps",
    ];
    for ((name, ratios), bound) in rows.iter().zip(bounds.iter()) {
        let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        let worst = ratios.iter().cloned().fold(1.0f64, f64::max);
        println!("{name:<14} {mean:>10.3} {worst:>10.3} {bound:>12}");
    }
}
