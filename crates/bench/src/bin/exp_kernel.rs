//! DP-kernel throughput sweep: scalar vs profiled vs profiled+blocked.
//!
//! Times `DpWorkspace::p_score_kernel` under each forced [`KernelMode`]
//! over a grid of word lengths × alphabet sizes × σ densities, reports
//! cells/s, and cross-checks that every mode returns bit-identical
//! scores on every grid point. Full release runs additionally assert
//! the headline claims pinned by ISSUE acceptance:
//!
//! - profiled+blocked ≥ 2x scalar on the long-word grid, and
//! - the assignment-relaxation `score_upper_bound` is *strictly*
//!   tighter than the old min-mass × σ_max bound on the simulator's
//!   default grid.
//!
//! Writes `BENCH_kernel.json`. Pass `--smoke` for a quick CI-sized run
//! that skips the timing-sensitive assertions.

use fragalign::align::{DpWorkspace, KernelMode};
use fragalign::model::{Instance, ScoreTable, Sym};
use fragalign_bench::{sim_instance, word, Stream};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Config {
    smoke: bool,
    release: bool,
    /// Timing repetitions per (point, mode); best-of is reported.
    reps: usize,
}

#[derive(Serialize)]
struct Point {
    rows: usize,
    cols: usize,
    syms: u32,
    density_pct: u64,
    cells: u64,
    score: i64,
    scalar_cells_per_s: f64,
    profiled_cells_per_s: f64,
    blocked_cells_per_s: f64,
    speedup_profiled: f64,
    speedup_blocked: f64,
}

#[derive(Serialize)]
struct BoundPoint {
    regions: usize,
    frags: usize,
    seed: u64,
    assignment_bound: i64,
    naive_bound: i64,
}

#[derive(Serialize)]
struct Report {
    config: Config,
    points: Vec<Point>,
    /// Mean blocked-vs-scalar speedup over the long-word grid points.
    long_word_speedup: f64,
    bounds: Vec<BoundPoint>,
    deterministic: bool,
}

/// Word lengths at or above this count as the "long-word grid" for the
/// ≥ 2x speedup floor: long enough that the per-fill profile build is
/// noise next to the O(n·m) sweep.
const LONG_WORD: usize = 1024;

/// A score table over `syms` × `syms` forward pairs where each pair
/// gets an explicit entry with probability `density_pct`%. The shared
/// [`fragalign_bench::table`] builder has a fixed ~4/9 density; the
/// kernel sweep needs density as an axis because it sets the profile
/// build strategy (sparse scatter vs dense probe).
fn density_table(seed: u64, syms: u32, density_pct: u64) -> ScoreTable {
    let mut t = ScoreTable::new();
    let mut s = Stream(seed | 1);
    for a in 0..syms {
        for b in 0..syms {
            if s.below(100) < density_pct {
                t.set(Sym::fwd(a), Sym::fwd(1000 + b), 1 + s.below(4) as i64);
            }
        }
    }
    t
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let release = !cfg!(debug_assertions);
    let reps = if smoke { 2 } else { 5 };
    println!("exp_kernel: DP kernel throughput sweep (smoke={smoke}, release={release})");

    let lengths: &[usize] = if smoke {
        &[64, 256, LONG_WORD]
    } else {
        &[64, 256, LONG_WORD, 4 * LONG_WORD]
    };
    let alphabets: &[u32] = &[4, 32, 256];
    let densities: &[u64] = &[10, 45, 90];

    let mut ws = DpWorkspace::new();
    let mut points = Vec::new();
    for &len in lengths {
        for &syms in alphabets {
            for &density in densities {
                let sigma = density_table(7 + density, syms, density);
                let u = word(11 + syms as u64, len, syms, 0);
                let v = word(13 + density, len, syms, 1000);
                let cells = (len * len) as u64;

                // Warm-up + cross-mode differential check first, so a
                // kernel bug fails loudly before any timing output.
                let scalar = ws.p_score_kernel(&sigma, &u, &v, KernelMode::Scalar);
                for mode in [KernelMode::Profiled, KernelMode::ProfiledBlocked] {
                    let got = ws.p_score_kernel(&sigma, &u, &v, mode);
                    assert_eq!(
                        got, scalar,
                        "{mode:?} disagrees with scalar at len={len} syms={syms} \
                         density={density}%"
                    );
                }

                let t_scalar = best_secs(reps, || {
                    ws.p_score_kernel(&sigma, &u, &v, KernelMode::Scalar)
                });
                let t_profiled = best_secs(reps, || {
                    ws.p_score_kernel(&sigma, &u, &v, KernelMode::Profiled)
                });
                let t_blocked = best_secs(reps, || {
                    ws.p_score_kernel(&sigma, &u, &v, KernelMode::ProfiledBlocked)
                });

                let point = Point {
                    rows: len,
                    cols: len,
                    syms,
                    density_pct: density,
                    cells,
                    score: scalar,
                    scalar_cells_per_s: cells as f64 / t_scalar,
                    profiled_cells_per_s: cells as f64 / t_profiled,
                    blocked_cells_per_s: cells as f64 / t_blocked,
                    speedup_profiled: t_scalar / t_profiled,
                    speedup_blocked: t_scalar / t_blocked,
                };
                println!(
                    "  len={len:>5} syms={syms:>3} density={density:>2}%  \
                     scalar {:>7.1} Mc/s  profiled {:>7.1} Mc/s ({:.2}x)  \
                     blocked {:>7.1} Mc/s ({:.2}x)",
                    point.scalar_cells_per_s / 1e6,
                    point.profiled_cells_per_s / 1e6,
                    point.speedup_profiled,
                    point.blocked_cells_per_s / 1e6,
                    point.speedup_blocked,
                );
                points.push(point);
            }
        }
    }

    let long: Vec<&Point> = points.iter().filter(|p| p.rows >= LONG_WORD).collect();
    let long_word_speedup =
        long.iter().map(|p| p.speedup_blocked).sum::<f64>() / long.len().max(1) as f64;
    println!("\nlong-word (len >= {LONG_WORD}) mean blocked speedup: {long_word_speedup:.2}x");
    if release && !smoke {
        assert!(
            long_word_speedup >= 2.0,
            "profiled+blocked kernel must average >= 2x scalar on the long-word grid \
             (got {long_word_speedup:.2}x)"
        );
    } else {
        println!("(speedup floor not asserted: needs a full release run)");
    }

    // Assignment-relaxation bound vs the old min-mass × σ_max bound on
    // the simulator's default grid.
    let mut bounds = Vec::new();
    for &regions in &[60usize, 120, 240] {
        for &frags in &[4usize, 8] {
            for seed in 1..=3u64 {
                let inst: Instance = sim_instance(regions, frags, seed);
                let b = BoundPoint {
                    regions,
                    frags,
                    seed,
                    assignment_bound: inst.score_upper_bound(),
                    naive_bound: inst.score_upper_bound_naive(),
                };
                if release && !smoke {
                    assert!(
                        b.assignment_bound < b.naive_bound,
                        "assignment bound {} must be strictly tighter than naive {} \
                         (regions={regions} frags={frags} seed={seed})",
                        b.assignment_bound,
                        b.naive_bound,
                    );
                }
                bounds.push(b);
            }
        }
    }
    let tighter = bounds
        .iter()
        .filter(|b| b.assignment_bound < b.naive_bound)
        .count();
    println!(
        "assignment bound strictly tighter on {tighter}/{} sim grid points",
        bounds.len()
    );

    let report = Report {
        config: Config {
            smoke,
            release,
            reps,
        },
        points,
        long_word_speedup,
        bounds,
        deterministic: true,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_kernel.json", json).expect("write BENCH_kernel.json");
    println!("wrote BENCH_kernel.json");
}
