//! Tracing-overhead audit: is the obs layer free when off and cheap
//! when on?
//!
//! Runs the batch workload (simulator instances through
//! [`solve_single_traced`]) under three interleaved arms:
//!
//! - `off_a`, `off_b` — two independent disabled-handle arms; their
//!   relative delta is the *measured* disabled-sink overhead (the
//!   disabled path is one `Option` branch per would-be span, so any
//!   real cost must show up between two identical arms — and the delta
//!   doubles as the noise floor of the rig);
//! - `on` — one fresh [`TraceSink`] per solve, drained after.
//!
//! Fast solvers finish the whole batch in well under a millisecond,
//! where wall-clock jitter would swamp any real signal; each timed
//! sample therefore loops the batch until it is long enough to measure
//! (calibrated per solver from a warm-up pass). Arms interleave per
//! repetition so thermal/frequency drift hits all three equally;
//! best-of-reps is compared. Full release runs assert the ISSUE
//! acceptance: disabled overhead < 2%, enabled overhead bounded
//! (< 25%), and all three arms bit-identical on every score and match
//! set. Writes `BENCH_obs.json`. Pass `--smoke` for a quick CI-sized
//! run that skips the timing-sensitive assertions.

use fragalign::align::DpWorkspace;
use fragalign::core::obs::{TraceHandle, TraceSink};
use fragalign::core::{solve_single_traced, BatchOptions};
use fragalign::model::Instance;
use fragalign_bench::sim_instance;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Per-solve ring capacity for the `on` arm. A solve here emits well
/// under a hundred spans; the default 16 Ki ring would make zeroed
/// allocation — not recording — the measured cost on sub-millisecond
/// solves.
const SINK_CAPACITY: usize = 1024;

#[derive(Serialize)]
struct Config {
    smoke: bool,
    release: bool,
    instances: usize,
    reps: usize,
    sample_secs: f64,
    solvers: Vec<String>,
}

#[derive(Serialize)]
struct SolverPoint {
    solver: String,
    /// Batch passes per timed sample (calibrated).
    iters: usize,
    /// Best-of-reps wall seconds per batch pass.
    off_a_secs: f64,
    off_b_secs: f64,
    on_secs: f64,
    /// |off_b - off_a| / min(off): the disabled-sink overhead (and
    /// the rig's noise floor — the two arms run identical code).
    disabled_overhead_pct: f64,
    /// (on - min(off)) / min(off): the cost of live span recording.
    enabled_overhead_pct: f64,
    /// Trace volume of one `on` pass over the batch.
    events_emitted: u64,
    events_dropped: u64,
    batch_score: i64,
    /// All three arms returned identical scores and match sets.
    identical: bool,
}

#[derive(Serialize)]
struct Report {
    config: Config,
    points: Vec<SolverPoint>,
    max_disabled_overhead_pct: f64,
    max_enabled_overhead_pct: f64,
}

/// `iters` passes over the batch with one warm workspace. Returns wall
/// seconds per pass, the last pass's (score, matches) per instance,
/// and the per-pass trace volume when `traced`.
fn run_arm(
    instances: &[Instance],
    opts: &BatchOptions,
    traced: bool,
    iters: usize,
) -> (f64, Vec<(i64, String)>, u64, u64) {
    let mut ws = DpWorkspace::new();
    let mut results = Vec::new();
    let (mut emitted, mut dropped) = (0u64, 0u64);
    let t0 = Instant::now();
    for _ in 0..iters {
        results.clear();
        (emitted, dropped) = (0, 0);
        for inst in instances {
            let sink = traced.then(|| TraceSink::with_capacity(SINK_CAPACITY));
            let trace = sink
                .as_ref()
                .map_or_else(TraceHandle::disabled, |s| TraceHandle::new(Arc::clone(s)));
            let (sol, _report) =
                solve_single_traced(inst, opts, &mut ws, trace).expect("batch workload solves");
            results.push((sol.score, format!("{:?}", sol.matches)));
            if let Some(sink) = sink {
                let log = sink.drain();
                emitted += log.emitted;
                dropped += log.dropped;
            }
        }
    }
    let per_pass = t0.elapsed().as_secs_f64() / iters as f64;
    (per_pass, results, emitted, dropped)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let release = !cfg!(debug_assertions);
    let (count, reps, sample_secs) = if smoke { (6, 2, 0.02) } else { (24, 5, 0.25) };
    let solvers = ["greedy", "four", "chain", "csr"];
    println!("exp_obs: tracing overhead audit (smoke={smoke}, release={release})");

    let instances: Vec<Instance> = (1..=count as u64)
        .map(|seed| sim_instance(60, 6, seed))
        .collect();

    let mut points = Vec::new();
    for solver in solvers {
        let opts = BatchOptions::new(solver);
        // Warm-up pass (page in code, size the workspace caches),
        // reference results, and the iteration calibration: every
        // timed sample must run at least `sample_secs`.
        let (warm_secs, reference, _, _) = run_arm(&instances, &opts, false, 1);
        let iters = ((sample_secs / warm_secs.max(1e-9)).ceil() as usize).clamp(1, 10_000);

        let (mut off_a, mut off_b, mut on) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let (mut emitted, mut dropped) = (0u64, 0u64);
        let mut identical = true;
        for _ in 0..reps {
            // Interleave all three arms inside each repetition so
            // drift is shared, not attributed to one arm.
            let (t_a, r_a, _, _) = run_arm(&instances, &opts, false, iters);
            let (t_on, r_on, em, dr) = run_arm(&instances, &opts, true, iters);
            let (t_b, r_b, _, _) = run_arm(&instances, &opts, false, iters);
            off_a = off_a.min(t_a);
            off_b = off_b.min(t_b);
            on = on.min(t_on);
            (emitted, dropped) = (em, dr);
            identical &= r_a == reference && r_b == reference && r_on == reference;
        }

        let base = off_a.min(off_b);
        let disabled_overhead_pct = (off_a - off_b).abs() / base * 100.0;
        let enabled_overhead_pct = (on - base).max(0.0) / base * 100.0;
        let batch_score: i64 = reference.iter().map(|(s, _)| *s).sum();
        println!(
            "  {solver:>8}: off {base:.5}s/pass (x{iters})  on {on:.5}s  \
             disabled-overhead {disabled_overhead_pct:.2}%  \
             enabled-overhead {enabled_overhead_pct:.2}%  events {emitted} (dropped {dropped})  \
             identical={identical}"
        );
        assert!(identical, "{solver}: tracing changed results");
        points.push(SolverPoint {
            solver: solver.to_string(),
            iters,
            off_a_secs: off_a,
            off_b_secs: off_b,
            on_secs: on,
            disabled_overhead_pct,
            enabled_overhead_pct,
            events_emitted: emitted,
            events_dropped: dropped,
            batch_score,
            identical,
        });
    }

    let max_disabled = points
        .iter()
        .map(|p| p.disabled_overhead_pct)
        .fold(0.0, f64::max);
    let max_enabled = points
        .iter()
        .map(|p| p.enabled_overhead_pct)
        .fold(0.0, f64::max);
    println!(
        "\nmax disabled-sink overhead {max_disabled:.2}%  max enabled overhead {max_enabled:.2}%"
    );
    if release && !smoke {
        assert!(
            max_disabled < 2.0,
            "disabled-sink overhead must stay under 2% on the batch workload \
             (got {max_disabled:.2}%)"
        );
        assert!(
            max_enabled < 25.0,
            "enabled tracing must stay bounded (got {max_enabled:.2}%)"
        );
    } else {
        println!("(overhead floors not asserted: needs a full release run)");
    }

    let report = Report {
        config: Config {
            smoke,
            release,
            instances: count,
            reps,
            sample_secs,
            solvers: solvers.iter().map(|s| s.to_string()).collect(),
        },
        points,
        max_disabled_overhead_pct: max_disabled,
        max_enabled_overhead_pct: max_enabled,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_obs.json", json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
}
