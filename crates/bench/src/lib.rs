//! # fragalign-bench
//!
//! Shared workload builders for the Criterion benches and the
//! experiment binaries that regenerate every row of EXPERIMENTS.md.
//!
//! The experiment binaries live in `src/bin/` (`exp_ratio`, `exp_isp`,
//! `exp_reductions`, `exp_recovery`, `exp_speedup`, `exp_ablation`);
//! run them with `cargo run --release -p fragalign-bench --bin <name>`.

use fragalign::isp::{Interval, IspInstance};
use fragalign::model::{Instance, ScoreTable, Sym};
use fragalign::prelude::SimConfig;
use fragalign::sim::generate;

/// Deterministic xorshift stream for workload construction.
pub struct Stream(pub u64);

impl Stream {
    /// Next raw value.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform value below `n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random region word of length `len` over `syms` symbols offset by
/// `base`.
pub fn word(seed: u64, len: usize, syms: u32, base: u32) -> Vec<Sym> {
    let mut s = Stream(seed | 1);
    (0..len)
        .map(|_| Sym::fwd(base + s.below(syms as u64) as u32))
        .collect()
}

/// A dense-ish random score table between symbol ranges.
pub fn table(seed: u64, syms: u32) -> ScoreTable {
    let mut t = ScoreTable::new();
    let mut s = Stream(seed | 1);
    for a in 0..syms {
        for b in 0..syms {
            let r = s.below(9);
            if r > 4 {
                t.set(Sym::fwd(a), Sym::fwd(1000 + b), (r - 4) as i64);
            }
        }
    }
    t
}

/// Simulator instance at a benchmark scale.
pub fn sim_instance(regions: usize, frags: usize, seed: u64) -> Instance {
    generate(&SimConfig {
        regions,
        h_frags: frags,
        m_frags: frags,
        loss_rate: 0.1,
        shuffles: 2,
        spurious: regions / 8,
        seed,
        ..SimConfig::default()
    })
    .instance
}

/// Random ISP instance with `jobs` jobs and `cands` candidates over a
/// coordinate span.
pub fn isp_instance(seed: u64, jobs: usize, cands: usize, span: i64) -> IspInstance {
    let mut s = Stream(seed | 1);
    let mut inst = IspInstance::new(jobs);
    for tag in 0..cands {
        let job = s.below(jobs as u64) as usize;
        let lo = s.below(span as u64) as i64;
        let len = 1 + s.below(8) as i64;
        let profit = 1 + s.below(100) as i64;
        inst.push(job, Interval::new(lo, lo + len), profit, tag);
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_deterministic() {
        assert_eq!(word(3, 10, 4, 0), word(3, 10, 4, 0));
        let a = sim_instance(20, 3, 1);
        let b = sim_instance(20, 3, 1);
        assert_eq!(a.h, b.h);
        let i = isp_instance(2, 3, 10, 50);
        assert_eq!(i.candidates.len(), 10);
    }
}
