//! Bench: the Berman–DasGupta two-phase algorithm (EXPERIMENTS.md T4).
//!
//! TPA is O(n log n); the greedy baseline O(n²) in the worst case
//! (interval overlap scans). Exact is exponential and only benched at
//! toy size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fragalign::isp::{solve_exact, solve_greedy, solve_tpa};
use fragalign_bench::isp_instance;
use std::hint::black_box;

fn bench_isp(c: &mut Criterion) {
    let mut group = c.benchmark_group("isp");
    for cands in [100usize, 1000, 5000] {
        let inst = isp_instance(9, cands / 10 + 1, cands, (cands * 4) as i64);
        group.throughput(Throughput::Elements(cands as u64));
        group.bench_with_input(BenchmarkId::new("tpa", cands), &cands, |b, _| {
            b.iter(|| solve_tpa(black_box(&inst)))
        });
        group.bench_with_input(BenchmarkId::new("greedy", cands), &cands, |b, _| {
            b.iter(|| solve_greedy(black_box(&inst)))
        });
    }
    let tiny = isp_instance(5, 4, 18, 40);
    group.bench_function("exact/18", |b| b.iter(|| solve_exact(black_box(&tiny))));
    group.finish();
}

criterion_group!(benches, bench_isp);
criterion_main!(benches);
