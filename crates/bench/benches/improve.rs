//! Bench: the §4 improvement algorithms (EXPERIMENTS.md T1/T9).
//!
//! Compares Full/Border/General improvement and the scaling ablation
//! (D4) on a fixed simulated instance.

use criterion::{criterion_group, criterion_main, Criterion};
use fragalign::prelude::*;
use fragalign_bench::sim_instance;
use std::hint::black_box;

fn bench_improve(c: &mut Criterion) {
    let inst = sim_instance(16, 3, 21);
    let mut group = c.benchmark_group("improve");
    group.sample_size(10);
    group.bench_function("full", |b| b.iter(|| full_improve(black_box(&inst), false)));
    group.bench_function("border", |b| {
        b.iter(|| border_improve(black_box(&inst), false))
    });
    group.bench_function("csr", |b| b.iter(|| csr_improve(black_box(&inst), false)));
    group.bench_function("csr_scaled", |b| {
        b.iter(|| csr_improve(black_box(&inst), true))
    });
    group.bench_function("four_approx", |b| {
        b.iter(|| solve_four_approx(black_box(&inst)))
    });
    group.bench_function("greedy", |b| b.iter(|| solve_greedy(black_box(&inst))));
    group.finish();
}

criterion_group!(benches, bench_improve);
criterion_main!(benches);
