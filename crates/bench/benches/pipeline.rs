//! Bench: end-to-end pipelines and the oracle-cache ablation (D2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fragalign::align::ScoreOracle;
use fragalign::model::FragId;
use fragalign::prelude::*;
use fragalign_bench::sim_instance;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for (regions, frags) in [(16usize, 3usize), (32, 5)] {
        let inst = sim_instance(regions, frags, 31);
        group.bench_with_input(
            BenchmarkId::new("four_approx", format!("{regions}r{frags}f")),
            &inst,
            |b, inst| b.iter(|| solve_four_approx(black_box(inst))),
        );
    }
    group.finish();

    // Oracle cache ablation: repeated interval-table queries with and
    // without cache reuse.
    let inst = sim_instance(24, 4, 33);
    let mut group = c.benchmark_group("oracle_cache");
    group.bench_function("cold", |b| {
        b.iter(|| {
            let oracle = ScoreOracle::new(&inst);
            for h in 0..inst.h.len() {
                for m in 0..inst.m.len() {
                    black_box(oracle.interval_table(FragId::h(h), FragId::m(m)));
                }
            }
        })
    });
    group.bench_function("warm", |b| {
        let oracle = ScoreOracle::new(&inst);
        b.iter(|| {
            for h in 0..inst.h.len() {
                for m in 0..inst.m.len() {
                    black_box(oracle.interval_table(FragId::h(h), FragId::m(m)));
                }
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
