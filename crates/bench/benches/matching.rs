//! Bench: Hungarian maximum-weight matching (Lemma 9 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fragalign::matching::{max_weight_matching, WeightMatrix};
use fragalign_bench::Stream;
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [16usize, 64, 128] {
        let mut s = Stream(n as u64 | 1);
        let mut w = WeightMatrix::new(n, n);
        for r in 0..n {
            for col in 0..n {
                w.set(r, col, s.below(1000) as i64 - 100);
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| max_weight_matching(black_box(&w)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
