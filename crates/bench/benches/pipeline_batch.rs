//! Bench: the batch-solving pipeline — per-call-allocation baseline
//! vs pooled workspaces, and batch vs a plain sequential loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fragalign::align::DpWorkspace;
use fragalign::model::Instance;
use fragalign::prelude::*;
use fragalign::sim::gen_batch;
use std::hint::black_box;

fn batch_instances(count: usize, regions: usize) -> Vec<Instance> {
    gen_batch(
        &SimConfig {
            regions,
            h_frags: 3,
            m_frags: 3,
            seed: 71,
            ..SimConfig::default()
        },
        count,
    )
    .into_iter()
    .map(|s| s.instance)
    .collect()
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_batch");
    group.sample_size(10);
    for (count, regions) in [(4usize, 12usize), (8, 20)] {
        let instances = batch_instances(count, regions);
        group.throughput(Throughput::Elements(count as u64));
        let label = format!("{count}i{regions}r");
        group.bench_with_input(
            BenchmarkId::new("solve_batch_reuse", &label),
            &instances,
            |b, insts| {
                let opts = BatchOptions::new("csr");
                b.iter(|| solve_batch(black_box(insts), &opts))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("solve_batch_alloc_baseline", &label),
            &instances,
            |b, insts| {
                let mut opts = BatchOptions::new("csr");
                opts.engine.reuse_workspaces = false;
                b.iter(|| solve_batch(black_box(insts), &opts))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_loop", &label),
            &instances,
            |b, insts| {
                let opts = BatchOptions::new("csr");
                b.iter(|| {
                    let mut ws = DpWorkspace::new();
                    insts
                        .iter()
                        .map(|inst| solve_single(black_box(inst), &opts, &mut ws))
                        .collect::<Vec<_>>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("solve_batch_portfolio", &label),
            &instances,
            |b, insts| {
                let opts = BatchOptions::new("portfolio");
                b.iter(|| solve_batch(black_box(insts), &opts))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
