//! Bench: instance generation, abstract vs DNA-derived σ.

use criterion::{criterion_group, criterion_main, Criterion};
use fragalign::prelude::SimConfig;
use fragalign::sim::{generate, DnaMode};
use std::hint::black_box;

fn bench_simgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("simgen");
    let abstract_cfg = SimConfig {
        regions: 64,
        h_frags: 8,
        m_frags: 8,
        seed: 1,
        ..SimConfig::default()
    };
    group.bench_function("abstract_64", |b| {
        b.iter(|| generate(black_box(&abstract_cfg)))
    });
    let dna_cfg = SimConfig {
        regions: 32,
        h_frags: 4,
        m_frags: 4,
        dna: Some(DnaMode::default()),
        seed: 1,
        ..SimConfig::default()
    };
    group.sample_size(10);
    group.bench_function("dna_32", |b| b.iter(|| generate(black_box(&dna_cfg))));
    group.finish();
}

criterion_group!(benches, bench_simgen);
criterion_main!(benches);
