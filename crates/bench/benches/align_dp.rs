//! Bench: the P_score DP kernels (EXPERIMENTS.md T8).
//!
//! Regenerates the sequential-vs-wavefront crossover: below ~64×64
//! cells the sequential kernel wins; beyond it the wavefront spreads
//! diagonals across cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fragalign::align::{p_score, p_score_wavefront};
use fragalign_bench::{table, word};
use std::hint::black_box;

fn bench_dp(c: &mut Criterion) {
    let t = table(7, 16);
    let mut group = c.benchmark_group("p_score");
    for len in [64usize, 256, 1024] {
        let u = word(1, len, 16, 0);
        let v = word(2, len, 16, 1000);
        group.throughput(Throughput::Elements((len * len) as u64));
        group.bench_with_input(BenchmarkId::new("sequential", len), &len, |b, _| {
            b.iter(|| p_score(black_box(&t), black_box(&u), black_box(&v)))
        });
        group.bench_with_input(BenchmarkId::new("wavefront", len), &len, |b, _| {
            b.iter(|| p_score_wavefront(black_box(&t), black_box(&u), black_box(&v)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);
