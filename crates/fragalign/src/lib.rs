//! # fragalign
//!
//! Order and orient fragmented genome assemblies by cross-species
//! alignment — a production-quality implementation of Veeramachaneni,
//! Berman & Miller, *Aligning two fragmented sequences* (IPPS 2002 /
//! Discrete Applied Mathematics 127, 2003).
//!
//! Two incompletely sequenced genomes arrive as sets of contigs whose
//! order and orientation are unknown; conserved-region alignments
//! between the species carry enough signal to reconstruct both. The
//! paper formalises this as the *Consensus Sequence Reconstruction*
//! (CSR) optimisation problem, proves it MAX-SNP hard, and gives a
//! polynomial-time algorithm within a factor 3 + ε of optimal. This
//! crate re-exports the full implementation:
//!
//! * [`model`] — fragments, the duplicated alphabet, matches,
//!   consistency and layouts;
//! * [`align`] — the `P_score` alignment DP, match scores, interval
//!   oracles, wavefront parallel DP, a DNA local aligner;
//! * [`isp`] — the Berman–DasGupta two-phase interval-selection
//!   algorithm (ratio 2);
//! * [`matching`] — Hungarian maximum-weight bipartite matching;
//! * [`graph`] — 3-regular graphs and maximum independent set (for the
//!   hardness reduction);
//! * [`core`] — the CSR solvers: greedy, 1-CSR, the factor-4
//!   algorithm, the 3 + ε improvement algorithms, exact search, the
//!   UCSR/CSoP reductions, and the solver engine (registry, uniform
//!   telemetry, racing portfolio meta-solver, batch pipeline);
//! * [`obs`] — the zero-dependency tracing layer: a lock-free span
//!   sink, RAII span guards, and Chrome trace-event export, threaded
//!   through every solver, the portfolio racers, and the service;
//! * [`sim`] — a fragmented-genome simulator with ground truth;
//! * [`par`] — parallel sweep utilities and speedup measurement;
//! * [`serve`] — the concurrent HTTP alignment service: worker pool
//!   with bounded-queue backpressure, sharded LRU result cache,
//!   JSON wire format over the engine registry.
//!
//! ## Quickstart
//!
//! ```
//! use fragalign::prelude::*;
//!
//! // The paper's running example (Figs. 2 and 4).
//! let instance = fragalign::model::instance::paper_example();
//!
//! // Solve with the 3+ε iterative improvement algorithm.
//! let result = csr_improve(&instance, false);
//! assert_eq!(result.score, 11); // the paper's optimum
//!
//! // Lay the solution out as an explicit two-row alignment.
//! let layout = LayoutBuilder::new(&instance, &DpAligner)
//!     .layout(&result.matches)
//!     .unwrap();
//! assert_eq!(layout.score(&instance), 11);
//! ```

pub use fragalign_align as align;
pub use fragalign_core as core;
pub use fragalign_core::obs;
pub use fragalign_graph as graph;
pub use fragalign_isp as isp;
pub use fragalign_matching as matching;
pub use fragalign_model as model;
pub use fragalign_par as par;
pub use fragalign_serve as serve;
pub use fragalign_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use fragalign_align::{solve_chain, ChainParams, DpAligner, DpWorkspace, ScoreOracle};
    pub use fragalign_core::{
        border_improve, border_matching_2approx, csr_improve, full_improve, solve_batch,
        solve_batch_reports, solve_exact, solve_four_approx, solve_greedy, solve_one_csr,
        solve_single, solve_single_report, solve_single_traced, Auto, BatchOptions, BatchSolution,
        CancelCause, CancelToken, EngineError, EngineOptions, ExactLimits, ImproveConfig,
        ImproveResult, InstanceFeatures, MethodSet, Portfolio, PortfolioConfig, RacerBudget,
        RacerReport, Router, RouterRule, SolveCtx, SolveOutcome, SolveReport, SolveRun, Solver,
        SolverRegistry, SolverSpec, TraceHandle, TraceLog, TraceSink,
    };
    pub use fragalign_model::{
        check_consistency, FragId, Fragment, Instance, InstanceBuilder, LayoutBuilder, Match,
        MatchSet, Orient, Score, ScoreTable, Site, Species, Sym,
    };
    pub use fragalign_sim::{
        evaluate_recovery, gen_batch, generate, generate_degenerate, generate_soup, generate_torn,
        soup_batch, torn_batch, DegenerateShape, SimConfig, SoupConfig, TornConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_quickstart_compiles_and_runs() {
        let instance = crate::model::instance::paper_example();
        let result = csr_improve(&instance, false);
        assert_eq!(result.score, 11);
    }
}
