//! Zero-dependency span tracing for the fragalign engine.
//!
//! The engine's solvers, portfolio racers and the HTTP service all
//! report *what* they produced; this crate records *where the time
//! went*. It provides three pieces:
//!
//! * [`TraceSink`] — a lock-free, bounded, multi-producer ring buffer
//!   of [`TraceEvent`]s. Writers never block each other and never
//!   allocate; when the ring is full the **oldest events are
//!   overwritten** (drop-oldest policy). Silent loss is not allowed:
//!   the number of overwritten events is tracked and exported by
//!   [`TraceSink::dropped`] and in every [`TraceLog`], so a truncated
//!   timeline is always visibly truncated.
//! * [`TraceHandle`] — a cheap, cloneable handle carried through the
//!   solve path (`SolveCtx`, `ScoreOracle`). A disabled handle is a
//!   `None` and costs one branch per span site — no clock reads, no
//!   atomics. An enabled handle stamps events with a monotonic
//!   nanosecond clock relative to the sink's epoch and a `track` id
//!   (track 0 = the engine, track *i+1* = portfolio racer *i*), so a
//!   portfolio solve renders as parallel racer timelines.
//! * Exporters — [`TraceLog::to_chrome_json`] writes Chrome
//!   trace-event JSON (loadable in Perfetto / `chrome://tracing`)
//!   with timestamps normalised to the first event, and
//!   [`TraceLog::events`] is plain data for ad-hoc analysis.
//!
//! # Ring-buffer drop policy
//!
//! The ring is a Vyukov-style ticket buffer: each writer claims a
//! monotonically increasing ticket with one `fetch_add`, writes its
//! slot, then publishes the slot's sequence number. A writer that
//! laps the ring overwrites the slot owned by `ticket - capacity` —
//! i.e. the *oldest* event is dropped, keeping the most recent
//! window, which is the useful half of a timeline when a solve emits
//! more events than the ring holds. `dropped()` reports exactly how
//! many events were overwritten; the serve layer re-exports it as a
//! telemetry counter so monitoring sees the loss.
//!
//! # Inertness
//!
//! Tracing observes; it must never steer. No code path in this crate
//! feeds back into solver decisions, and the repository's trace
//! suite (`tests/obs_trace.rs`) proptests that traced and untraced
//! solves are bit-identical across solvers and thread counts.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What a [`TraceEvent`] marks: a duration or a point in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span: `t0_ns .. t0_ns + dur_ns` (Chrome `ph:"X"`).
    Span,
    /// An instantaneous marker (Chrome `ph:"i"`).
    Instant,
}

/// One recorded event. `Copy` and allocation-free by construction:
/// names and labels are `&'static str` (solver names, phase names and
/// cancel causes all are), numeric payload rides in `a0`/`a1`.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Nanoseconds since the sink's epoch.
    pub t0_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Phase name, e.g. `"dp_fill"` or `"racer"`.
    pub name: &'static str,
    /// Secondary label, e.g. the solver or kernel name; `""` if none.
    pub label: &'static str,
    /// Timeline lane: 0 = engine, i+1 = portfolio racer i.
    pub track: u16,
    /// Span or instant.
    pub kind: EventKind,
    /// First numeric argument (e.g. a score bound); 0 if unused.
    pub a0: i64,
    /// Second numeric argument (e.g. a count); 0 if unused.
    pub a1: i64,
}

impl TraceEvent {
    fn zeroed() -> Self {
        TraceEvent {
            t0_ns: 0,
            dur_ns: 0,
            name: "",
            label: "",
            track: 0,
            kind: EventKind::Instant,
            a0: 0,
            a1: 0,
        }
    }
}

struct Slot {
    /// Publication sequence: slot `i` accepts ticket `t` when
    /// `seq == t`, holds `t + 1` while the write is in flight, and
    /// `t + capacity` once published (which is also the next lap's
    /// accept value).
    seq: AtomicU64,
    ev: UnsafeCell<TraceEvent>,
}

/// Lock-free bounded MPMC ring of [`TraceEvent`]s with drop-oldest
/// overwrite semantics. See the crate docs for the full policy.
pub struct TraceSink {
    epoch: Instant,
    mask: u64,
    tickets: AtomicU64,
    slots: Box<[Slot]>,
}

// The UnsafeCell is guarded by the per-slot seq protocol (writers) and
// the seqlock-style double check in `drain` (readers).
unsafe impl Send for TraceSink {}
unsafe impl Sync for TraceSink {}

/// Default ring capacity: 16Ki events (~1 MiB), enough for every
/// phase span of a large portfolio solve with headroom.
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

impl TraceSink {
    /// A sink with [`DEFAULT_CAPACITY`].
    pub fn new() -> Arc<Self> {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A sink holding at least `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        let cap = capacity.max(8).next_power_of_two();
        let slots: Vec<Slot> = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                ev: UnsafeCell::new(TraceEvent::zeroed()),
            })
            .collect();
        Arc::new(TraceSink {
            epoch: Instant::now(),
            mask: (cap - 1) as u64,
            tickets: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        })
    }

    fn capacity(&self) -> u64 {
        self.mask + 1
    }

    /// Nanoseconds since this sink was created (the trace epoch).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record one event. Lock-free: one `fetch_add` plus one release
    /// store; a writer only spins in the (pathological) case where it
    /// laps another writer mid-write on the same slot.
    pub fn push(&self, ev: TraceEvent) {
        let t = self.tickets.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(t & self.mask) as usize];
        // Wait for the previous lap's write to this slot to publish
        // (seq == t). With capacity >= 8 and phase-grained events this
        // never spins in practice.
        while slot.seq.load(Ordering::Acquire) != t {
            std::hint::spin_loop();
        }
        slot.seq.store(t + 1, Ordering::Relaxed);
        // Sole writer for this slot until we publish below.
        unsafe { *slot.ev.get() = ev };
        slot.seq.store(t + self.capacity(), Ordering::Release);
    }

    /// Total events ever pushed (including later-overwritten ones).
    pub fn emitted(&self) -> u64 {
        self.tickets.load(Ordering::Relaxed)
    }

    /// Events lost to drop-oldest overwrite so far.
    pub fn dropped(&self) -> u64 {
        self.emitted().saturating_sub(self.capacity())
    }

    /// Snapshot the ring into a [`TraceLog`], oldest event first.
    ///
    /// Intended to run after writers quiesce (the engine drains after
    /// joining its racers); events whose write is still in flight are
    /// skipped via the slot sequence check rather than torn.
    pub fn drain(&self) -> TraceLog {
        let emitted = self.emitted();
        let cap = self.capacity();
        let first = emitted.saturating_sub(cap);
        let mut events = Vec::with_capacity((emitted - first) as usize);
        for t in first..emitted {
            let slot = &self.slots[(t & self.mask) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != t + cap {
                continue; // in flight or already lapped
            }
            let ev = unsafe { *slot.ev.get() };
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue; // lapped mid-read; discard the torn copy
            }
            events.push(ev);
        }
        events.sort_by_key(|e| (e.t0_ns, e.track));
        TraceLog {
            events,
            emitted,
            dropped: emitted.saturating_sub(cap),
        }
    }
}

/// A cloneable, optionally-enabled handle onto a [`TraceSink`].
///
/// The disabled handle is the default everywhere; it is one word of
/// `None` and every span site reduces to a single branch.
#[derive(Clone, Default)]
pub struct TraceHandle {
    sink: Option<Arc<TraceSink>>,
    track: u16,
}

impl TraceHandle {
    /// The inert handle: records nothing, reads no clocks.
    pub fn disabled() -> Self {
        TraceHandle::default()
    }

    /// A handle recording into `sink` on track 0.
    pub fn new(sink: Arc<TraceSink>) -> Self {
        TraceHandle {
            sink: Some(sink),
            track: 0,
        }
    }

    /// Same sink, different timeline lane (portfolio racers use
    /// `racer_index + 1`; track 0 is the engine).
    pub fn with_track(&self, track: u16) -> Self {
        TraceHandle {
            sink: self.sink.clone(),
            track,
        }
    }

    /// Whether spans recorded through this handle go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The underlying sink, if enabled.
    pub fn sink(&self) -> Option<&Arc<TraceSink>> {
        self.sink.as_ref()
    }

    /// Start a phase span; the returned guard records it on drop.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_labeled(name, "")
    }

    /// [`span`](Self::span) with a secondary label (kernel mode,
    /// solver name, ...).
    pub fn span_labeled(&self, name: &'static str, label: &'static str) -> SpanGuard {
        let t0 = self.sink.as_ref().map(|s| s.now_ns());
        SpanGuard {
            handle: self.clone(),
            t0,
            name,
            label,
            a0: 0,
            a1: 0,
        }
    }

    /// Record an instantaneous marker with a numeric payload.
    pub fn instant(&self, name: &'static str, label: &'static str, a0: i64, a1: i64) {
        if let Some(sink) = &self.sink {
            sink.push(TraceEvent {
                t0_ns: sink.now_ns(),
                dur_ns: 0,
                name,
                label,
                track: self.track,
                kind: EventKind::Instant,
                a0,
                a1,
            });
        }
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .field("track", &self.track)
            .finish()
    }
}

/// RAII span: created by [`TraceHandle::span`], records a
/// [`EventKind::Span`] event when dropped. On a disabled handle it is
/// completely inert (no clock read at either end).
#[must_use = "a span guard records its phase when dropped"]
pub struct SpanGuard {
    handle: TraceHandle,
    t0: Option<u64>,
    name: &'static str,
    label: &'static str,
    a0: i64,
    a1: i64,
}

impl SpanGuard {
    /// Attach numeric arguments (recorded at drop).
    pub fn set_args(&mut self, a0: i64, a1: i64) {
        self.a0 = a0;
        self.a1 = a1;
    }

    /// Replace the secondary label — for phases whose mode (e.g.
    /// profiled vs scalar kernel) is only known mid-span.
    pub fn set_label(&mut self, label: &'static str) {
        self.label = label;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(sink), Some(t0)) = (self.handle.sink.as_ref(), self.t0) {
            let now = sink.now_ns();
            sink.push(TraceEvent {
                t0_ns: t0,
                dur_ns: now.saturating_sub(t0),
                name: self.name,
                label: self.label,
                track: self.handle.track,
                kind: EventKind::Span,
                a0: self.a0,
                a1: self.a1,
            });
        }
    }
}

/// Open a phase span on a [`TraceHandle`]: `span!(trace, "dp_fill")`
/// or `span!(trace, "dp_fill", "profiled")`.
#[macro_export]
macro_rules! span {
    ($handle:expr, $name:expr) => {
        $handle.span($name)
    };
    ($handle:expr, $name:expr, $label:expr) => {
        $handle.span_labeled($name, $label)
    };
}

/// A drained snapshot of a sink: events in time order plus the
/// emitted/dropped accounting.
#[derive(Clone, Debug)]
pub struct TraceLog {
    /// Surviving events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Total events ever pushed to the sink.
    pub emitted: u64,
    /// Events overwritten by the drop-oldest policy.
    pub dropped: u64,
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Microseconds with fixed millis precision (`ns / 1000` with 3
/// decimal places) — stable text for goldens, lossless to Perfetto.
fn push_micros(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

impl TraceLog {
    /// Render as Chrome trace-event JSON (the "JSON Array Format"
    /// wrapped in an object), loadable in Perfetto and
    /// `chrome://tracing`.
    ///
    /// Field order is stable and timestamps are normalised so the
    /// earliest event starts at `ts: 0.000` — the output for a fixed
    /// event list is byte-reproducible, which the golden tests pin.
    /// Spans render as `ph:"X"` complete events, instants as
    /// `ph:"i"`; `tid` is the event's track (0 = engine, i+1 =
    /// portfolio racer i); numeric payload lands in `args.a0`/`a1`
    /// only when non-zero.
    pub fn to_chrome_json(&self) -> String {
        let base = self.events.iter().map(|e| e.t0_ns).min().unwrap_or(0);
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            push_json_escaped(&mut out, ev.name);
            if !ev.label.is_empty() {
                out.push(':');
                push_json_escaped(&mut out, ev.label);
            }
            out.push_str("\",\"ph\":\"");
            match ev.kind {
                EventKind::Span => out.push('X'),
                EventKind::Instant => out.push('i'),
            }
            out.push_str("\",\"ts\":");
            push_micros(&mut out, ev.t0_ns - base);
            if ev.kind == EventKind::Span {
                out.push_str(",\"dur\":");
                push_micros(&mut out, ev.dur_ns);
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(&format!(",\"pid\":1,\"tid\":{}", ev.track));
            if ev.a0 != 0 || ev.a1 != 0 {
                out.push_str(&format!(",\"args\":{{\"a0\":{},\"a1\":{}}}", ev.a0, ev.a1));
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"emitted\":{},\"dropped\":{}}}",
            self.emitted, self.dropped
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t0: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            t0_ns: t0,
            dur_ns: 10,
            name,
            label: "",
            track: 0,
            kind: EventKind::Span,
            a0: 0,
            a1: 0,
        }
    }

    #[test]
    fn records_and_drains_in_order() {
        let sink = TraceSink::with_capacity(8);
        for i in 0..5 {
            sink.push(ev(i, "p"));
        }
        let log = sink.drain();
        assert_eq!(log.events.len(), 5);
        assert_eq!(log.emitted, 5);
        assert_eq!(log.dropped, 0);
        let t0s: Vec<u64> = log.events.iter().map(|e| e.t0_ns).collect();
        assert_eq!(t0s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let sink = TraceSink::with_capacity(8);
        for i in 0..20 {
            sink.push(ev(i, "p"));
        }
        assert_eq!(sink.emitted(), 20);
        assert_eq!(sink.dropped(), 12);
        let log = sink.drain();
        assert_eq!(log.events.len(), 8);
        assert_eq!(log.dropped, 12);
        // The survivors are exactly the newest window.
        let t0s: Vec<u64> = log.events.iter().map(|e| e.t0_ns).collect();
        assert_eq!(t0s, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn concurrent_writers_lose_nothing_within_capacity() {
        let sink = TraceSink::with_capacity(1 << 12);
        let threads = 8;
        let per = 256;
        std::thread::scope(|s| {
            for t in 0..threads {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..per {
                        let mut e = ev((t * per + i) as u64, "w");
                        e.track = t as u16;
                        sink.push(e);
                    }
                });
            }
        });
        let log = sink.drain();
        assert_eq!(log.emitted, (threads * per) as u64);
        assert_eq!(log.dropped, 0);
        assert_eq!(log.events.len(), threads * per);
        // Every (track, t0) pair survives exactly once.
        let mut seen: Vec<(u16, u64)> = log.events.iter().map(|e| (e.track, e.t0_ns)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), threads * per);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        {
            let mut g = h.span("phase");
            g.set_args(1, 2);
        }
        h.instant("marker", "", 3, 4);
        // Nothing to drain — there is no sink at all.
        assert!(h.sink().is_none());
    }

    #[test]
    fn span_guard_records_duration_and_args() {
        let sink = TraceSink::with_capacity(8);
        let h = TraceHandle::new(Arc::clone(&sink));
        {
            let mut g = h.span_labeled("dp_fill", "profiled");
            g.set_args(42, 7);
        }
        let log = sink.drain();
        assert_eq!(log.events.len(), 1);
        let e = &log.events[0];
        assert_eq!(e.name, "dp_fill");
        assert_eq!(e.label, "profiled");
        assert_eq!(e.kind, EventKind::Span);
        assert_eq!((e.a0, e.a1), (42, 7));
    }

    #[test]
    fn chrome_json_is_stable_and_normalised() {
        let log = TraceLog {
            events: vec![
                TraceEvent {
                    t0_ns: 5_000,
                    dur_ns: 1_500,
                    name: "solve",
                    label: "greedy",
                    track: 0,
                    kind: EventKind::Span,
                    a0: 0,
                    a1: 0,
                },
                TraceEvent {
                    t0_ns: 6_000,
                    dur_ns: 0,
                    name: "bound_retire",
                    label: "",
                    track: 2,
                    kind: EventKind::Instant,
                    a0: -3,
                    a1: 0,
                },
            ],
            emitted: 2,
            dropped: 0,
        };
        let json = log.to_chrome_json();
        assert_eq!(
            json,
            concat!(
                "{\"traceEvents\":[",
                "{\"name\":\"solve:greedy\",\"ph\":\"X\",\"ts\":0.000,",
                "\"dur\":1.500,\"pid\":1,\"tid\":0},",
                "{\"name\":\"bound_retire\",\"ph\":\"i\",\"ts\":1.000,",
                "\"s\":\"t\",\"pid\":1,\"tid\":2,\"args\":{\"a0\":-3,\"a1\":0}}",
                "],\"displayTimeUnit\":\"ms\",\"emitted\":2,\"dropped\":0}"
            )
        );
    }

    #[test]
    fn tracks_separate_lanes() {
        let sink = TraceSink::with_capacity(8);
        let h = TraceHandle::new(Arc::clone(&sink));
        let racer = h.with_track(3);
        drop(racer.span("racer"));
        let log = sink.drain();
        assert_eq!(log.events[0].track, 3);
    }
}
