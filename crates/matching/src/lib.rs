#![warn(missing_docs)]

//! # fragalign-matching
//!
//! Maximum-weight bipartite matching, the black box behind Lemma 9:
//! a Border CSR optimum decomposes into two matchings, so matching the
//! fragments of `H` against the fragments of `M` with edge weight
//! `MS(h, m)` is a 2-approximation.
//!
//! The solver is the dense `O(n³)` Hungarian algorithm (potential /
//! shortest-augmenting-path formulation). Weights may be any `i64`;
//! pairs are only reported when their weight is positive, so "leave a
//! vertex unmatched" is always available (as the paper's matching
//! does — a fragment with no useful partner simply stays single).

/// A dense rectangular weight matrix, row-major.
#[derive(Clone, Debug)]
pub struct WeightMatrix {
    rows: usize,
    cols: usize,
    w: Vec<i64>,
}

impl WeightMatrix {
    /// A `rows × cols` zero matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        WeightMatrix {
            rows,
            cols,
            w: vec![0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Set the weight of edge `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, weight: i64) {
        self.w[r * self.cols + c] = weight;
    }

    /// The weight of edge `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> i64 {
        self.w[r * self.cols + c]
    }
}

/// A maximum-weight matching: chosen `(row, col, weight)` triples (all
/// weights positive) and their total.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Matching {
    /// Matched pairs with positive weight.
    pub pairs: Vec<(usize, usize, i64)>,
    /// Sum of matched weights.
    pub total: i64,
}

/// Compute a maximum-weight matching of a bipartite graph given as a
/// dense weight matrix. Vertices may stay unmatched; only positive
/// weights contribute.
pub fn max_weight_matching(weights: &WeightMatrix) -> Matching {
    let n = weights.rows().max(weights.cols());
    if n == 0 {
        return Matching::default();
    }
    // Hungarian algorithm on an n × n *cost* matrix (minimisation):
    // cost = −max(weight, 0); padding cells cost 0 = stay unmatched.
    const INF: i64 = i64::MAX / 4;
    let cost = |r: usize, c: usize| -> i64 {
        if r < weights.rows() && c < weights.cols() {
            -weights.get(r, c).max(0)
        } else {
            0
        }
    };

    // Potentials u (rows), v (cols); way[j] = previous column on the
    // alternating path; p[j] = row matched to column j (1-based rows,
    // p[0] is the row currently being inserted). Classic formulation.
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j]: row assigned to col j (1-based)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut pairs = Vec::new();
    let mut total = 0;
    for (j, &i) in p.iter().enumerate().skip(1) {
        if i == 0 {
            continue;
        }
        let (r, c) = (i - 1, j - 1);
        if r < weights.rows() && c < weights.cols() {
            let w = weights.get(r, c);
            if w > 0 {
                pairs.push((r, c, w));
                total += w;
            }
        }
    }
    pairs.sort_unstable();
    Matching { pairs, total }
}

/// Brute-force maximum-weight matching by enumerating all injections
/// (test oracle; exponential).
pub fn brute_force_matching(weights: &WeightMatrix) -> i64 {
    fn rec(weights: &WeightMatrix, r: usize, used: &mut Vec<bool>) -> i64 {
        if r == weights.rows() {
            return 0;
        }
        // Leave row r unmatched.
        let mut best = rec(weights, r + 1, used);
        for c in 0..weights.cols() {
            if used[c] {
                continue;
            }
            let w = weights.get(r, c);
            if w <= 0 {
                continue;
            }
            used[c] = true;
            best = best.max(w + rec(weights, r + 1, used));
            used[c] = false;
        }
        best
    }
    assert!(
        weights.rows() <= 10 && weights.cols() <= 10,
        "test oracle only"
    );
    rec(weights, 0, &mut vec![false; weights.cols()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let m = max_weight_matching(&WeightMatrix::new(0, 0));
        assert_eq!(m.total, 0);
        assert!(m.pairs.is_empty());
    }

    #[test]
    fn single_edge() {
        let mut w = WeightMatrix::new(1, 1);
        w.set(0, 0, 7);
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 7);
        assert_eq!(m.pairs, vec![(0, 0, 7)]);
    }

    #[test]
    fn negative_and_zero_edges_stay_unmatched() {
        let mut w = WeightMatrix::new(2, 2);
        w.set(0, 0, -5);
        w.set(0, 1, 0);
        w.set(1, 0, 3);
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 3);
        assert_eq!(m.pairs, vec![(1, 0, 3)]);
    }

    #[test]
    fn assignment_conflict_resolved_globally() {
        // Row 0 prefers col 0, but giving col 0 to row 1 is globally
        // better.
        let mut w = WeightMatrix::new(2, 2);
        w.set(0, 0, 5);
        w.set(0, 1, 4);
        w.set(1, 0, 6);
        w.set(1, 1, 1);
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 10); // (0,1)=4 + (1,0)=6
    }

    #[test]
    fn rectangular_matrices() {
        let mut w = WeightMatrix::new(3, 2);
        w.set(0, 0, 2);
        w.set(1, 0, 9);
        w.set(1, 1, 1);
        w.set(2, 1, 8);
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 17); // (1,0)=9 + (2,1)=8
        let mut wt = WeightMatrix::new(2, 3);
        wt.set(0, 1, 9);
        wt.set(1, 1, 10);
        wt.set(1, 2, 4);
        let mt = max_weight_matching(&wt);
        assert_eq!(mt.total, 13); // (0,1)=9 + (1,2)=4
    }

    #[test]
    fn agrees_with_bruteforce_on_random_matrices() {
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..200 {
            let rows = 1 + (next() % 5) as usize;
            let cols = 1 + (next() % 5) as usize;
            let mut w = WeightMatrix::new(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    // include negatives and zeros
                    w.set(r, c, (next() % 21) as i64 - 5);
                }
            }
            let fast = max_weight_matching(&w);
            let slow = brute_force_matching(&w);
            assert_eq!(fast.total, slow, "case {case} {rows}x{cols}");
            // Matching feasibility: rows and cols used at most once.
            let mut ru = std::collections::HashSet::new();
            let mut cu = std::collections::HashSet::new();
            for &(r, c, weight) in &fast.pairs {
                assert!(ru.insert(r));
                assert!(cu.insert(c));
                assert!(weight > 0);
                assert_eq!(weight, w.get(r, c));
            }
        }
    }
}
