//! A tiny blocking HTTP/1.1 client — just enough to drive the
//! service from the integration tests and the `exp_service` load
//! generator without external dependencies. One request per
//! connection, mirroring the server's `Connection: close` discipline.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Default socket timeout: generous enough for a cold release-mode
/// solve, short enough that a wedged server fails a test instead of
/// hanging it.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed response: status code, lower-cased headers, body.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body (the service always sends UTF-8 JSON).
    pub body: String,
}

impl Response {
    /// First value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// `GET path` with the default timeout.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, None, DEFAULT_TIMEOUT)
}

/// `POST path` with a JSON body and the default timeout.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<Response> {
    request(addr, "POST", path, Some(body), DEFAULT_TIMEOUT)
}

/// One full request/response exchange over a fresh connection.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Send raw bytes and return without waiting for a response — the
/// backpressure test uses this to park half-written requests on the
/// server.
pub fn connect_and_send(addr: SocketAddr, bytes: &[u8]) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&addr, DEFAULT_TIMEOUT)?;
    stream.set_read_timeout(Some(DEFAULT_TIMEOUT))?;
    stream.set_nodelay(true)?;
    stream.write_all(bytes)?;
    stream.flush()?;
    Ok(stream)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response head never ended"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    // Interim 1xx responses (100 Continue) precede the real one; this
    // client never asks for them, so the first status line is final.
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let body =
        String::from_utf8(raw[head_end + 4..].to_vec()).map_err(|_| bad("body is not UTF-8"))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nRetry-After: 1\r\n\r\n{\"error\":\"busy\"}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("RETRY-AFTER"), Some("1"));
        assert_eq!(resp.body, "{\"error\":\"busy\"}");
    }

    #[test]
    fn rejects_torn_responses() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\n").is_err());
        assert!(parse_response(b"garbage\r\n\r\n").is_err());
    }
}
