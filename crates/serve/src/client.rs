//! A tiny blocking HTTP/1.1 client — just enough to drive the
//! service from the integration tests and the `exp_service` load
//! generator without external dependencies. The free functions
//! ([`get`], [`post`], [`request`]) do one request per connection
//! with `Connection: close`; [`Connection`] keeps a socket open for
//! keep-alive reuse and in-order pipelining.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Default socket timeout: generous enough for a cold release-mode
/// solve, short enough that a wedged server fails a test instead of
/// hanging it.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed response: status code, lower-cased headers, body.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body (the service always sends UTF-8 JSON).
    pub body: String,
}

impl Response {
    /// First value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// `GET path` with the default timeout.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, None, DEFAULT_TIMEOUT)
}

/// `POST path` with a JSON body and the default timeout.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<Response> {
    request(addr, "POST", path, Some(body), DEFAULT_TIMEOUT)
}

/// One full request/response exchange over a fresh connection.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Send raw bytes and return without waiting for a response — the
/// backpressure test uses this to park half-written requests on the
/// server.
pub fn connect_and_send(addr: SocketAddr, bytes: &[u8]) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&addr, DEFAULT_TIMEOUT)?;
    stream.set_read_timeout(Some(DEFAULT_TIMEOUT))?;
    stream.set_nodelay(true)?;
    stream.write_all(bytes)?;
    stream.flush()?;
    Ok(stream)
}

/// A persistent HTTP/1.1 connection: requests reuse one socket until
/// the server (or caller) closes it.
///
/// Two modes share the machinery:
///
/// * **keep-alive** — [`Connection::request`] writes one request and
///   blocks for its response, leaving the socket open for the next
///   call;
/// * **pipelined** — [`Connection::send`] writes a request without
///   waiting, and [`Connection::recv`] collects responses in send
///   order. The server guarantees in-order responses (one outstanding
///   request per connection is dispatched at a time; the rest wait in
///   the connection buffer), so no request IDs are needed.
///
/// Responses are framed by `Content-Length` — which the server always
/// sends — and leftover bytes past one response's frame are carried
/// forward as the start of the next.
pub struct Connection {
    stream: TcpStream,
    addr: SocketAddr,
    /// Bytes read off the socket but not yet consumed by a response.
    buf: Vec<u8>,
    /// Requests written whose responses have not been read yet.
    in_flight: usize,
    /// Set when a response carried `Connection: close`.
    peer_closing: bool,
}

impl Connection {
    /// Open a persistent connection with the default timeout.
    pub fn open(addr: SocketAddr) -> io::Result<Connection> {
        Connection::open_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// Open a persistent connection with an explicit socket timeout.
    pub fn open_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Connection> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            addr,
            buf: Vec::new(),
            in_flight: 0,
            peer_closing: false,
        })
    }

    /// One keep-alive request/response exchange. Any pipelined
    /// responses still in flight are read (and discarded from the
    /// caller's point of view) first, preserving order.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        self.send(method, path, body)?;
        while self.in_flight > 1 {
            self.recv()?;
        }
        self.recv()
    }

    /// Write one request without waiting for its response (pipelining).
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<()> {
        if self.peer_closing {
            return Err(bad("server announced Connection: close"));
        }
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.in_flight += 1;
        Ok(())
    }

    /// Read the next pipelined response, in send order.
    pub fn recv(&mut self) -> io::Result<Response> {
        if self.in_flight == 0 {
            return Err(bad("recv with no request in flight"));
        }
        loop {
            if let Some((resp, consumed)) = try_parse_framed(&self.buf)? {
                self.buf.drain(..consumed);
                self.in_flight -= 1;
                if resp
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.peer_closing = true;
                }
                return Ok(resp);
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Number of requests sent whose responses have not been read.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether the server has announced it will close after the last
    /// delivered response.
    pub fn peer_closing(&self) -> bool {
        self.peer_closing
    }
}

/// Parse one `Content-Length`-framed response out of the front of
/// `buf`. `Ok(None)` means more bytes are needed.
fn try_parse_framed(buf: &[u8]) -> io::Result<Option<(Response, usize)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let mut resp = parse_head(&buf[..head_end])?;
    let content_length: usize = resp
        .header("content-length")
        .ok_or_else(|| bad("response without Content-Length"))?
        .parse()
        .map_err(|_| bad("bad Content-Length"))?;
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    resp.body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
        .map_err(|_| bad("body is not UTF-8"))?;
    Ok(Some((resp, body_start + content_length)))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Parse a status line + headers block (no trailing CRLFCRLF) into a
/// [`Response`] with an empty body.
fn parse_head(head: &[u8]) -> io::Result<Response> {
    let head = std::str::from_utf8(head).map_err(|_| bad("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Response {
        status,
        headers,
        body: String::new(),
    })
}

fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response head never ended"))?;
    // Interim 1xx responses (100 Continue) precede the real one; this
    // client never asks for them, so the first status line is final.
    let mut resp = parse_head(&raw[..head_end])?;
    resp.body =
        String::from_utf8(raw[head_end + 4..].to_vec()).map_err(|_| bad("body is not UTF-8"))?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nRetry-After: 1\r\n\r\n{\"error\":\"busy\"}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("RETRY-AFTER"), Some("1"));
        assert_eq!(resp.body, "{\"error\":\"busy\"}");
    }

    #[test]
    fn rejects_torn_responses() {
        assert!(parse_response(b"HTTP/1.1 200 OK\r\n").is_err());
        assert!(parse_response(b"garbage\r\n\r\n").is_err());
    }

    #[test]
    fn framed_parse_consumes_exactly_one_response() {
        let one = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nabcd";
        let mut raw = one.to_vec();
        raw.extend_from_slice(b"HTTP/1.1 503 Busy\r\nContent-Length: 0\r\n\r\n");
        let (resp, consumed) = try_parse_framed(&raw).unwrap().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "abcd");
        assert_eq!(consumed, one.len());
        let (next, _) = try_parse_framed(&raw[consumed..]).unwrap().unwrap();
        assert_eq!(next.status, 503);
        assert_eq!(next.body, "");
    }

    #[test]
    fn framed_parse_waits_for_the_full_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc";
        assert!(try_parse_framed(raw).unwrap().is_none());
        assert!(try_parse_framed(b"HTTP/1.1 200 OK\r\nCont")
            .unwrap()
            .is_none());
    }
}
