#![warn(missing_docs)]

//! # fragalign-serve
//!
//! A concurrent alignment service: fragment-alignment queries over
//! HTTP, answered by the solver engine behind a sharded result cache.
//!
//! The ROADMAP's north star is serving heavy query traffic, and the
//! engine layer made that a dispatch problem: every solver is a
//! registry name, every run emits the same telemetry record. This
//! crate adds the serving layer on top — deliberately dependency-free
//! (the build container has no crate registry, see `shims/README.md`),
//! so the whole stack is hand-rolled over `std::net`:
//!
//! * [`server`] — an HTTP/1.1 server with a readiness-polled accept
//!   and read path: a single event-loop thread owns every idle or
//!   half-read connection through a hand-rolled [`poll`]\(2) binding,
//!   and a connection only occupies one of the fixed worker threads
//!   while a fully-parsed request is being solved. Keep-alive and
//!   pipelined connections return to the event loop between requests.
//!   The bounded crossbeam job queue is still the backpressure valve:
//!   when it is full the server answers `503 Service Unavailable`
//!   immediately instead of letting latency grow without bound, and
//!   above a configurable load watermark the [`admission`] policy
//!   degrades big instances to cheap portfolio tiers before it comes
//!   to that.
//! * [`poll`] — the `poll(2)` FFI binding and a tiny `Poller` wrapper
//!   (same no-new-deps discipline as the CLI's signal binding);
//! * [`admission`] — the two-watermark, portfolio-aware admission
//!   policy behind `X-Fragalign-Degraded`;
//! * [`cache`] — a sharded, byte-budgeted LRU over finished response
//!   bodies, keyed by a 128-bit fingerprint of (solver, options,
//!   canonical instance JSON). Repeat queries skip the DP entirely;
//!   per-worker DP workspaces stay shared-nothing beneath it, exactly
//!   as in the batch pipeline.
//! * [`http`] — minimal request parsing and response writing;
//! * [`metrics`] — uptime, per-solver request counts, approximate
//!   p50/p99 latency, queue depth and cache hit rate for `/metrics`;
//! * [`client`] — a tiny blocking HTTP client for the integration
//!   tests and the `exp_service` load generator.
//!
//! ## Endpoints
//!
//! | route | method | body |
//! |-------|--------|------|
//! | `/v1/solve` | POST | `{"instance": …, "solver"?: name, "options"?: {…}}` → score, matches, report |
//! | `/v1/batch` | POST | `{"instances": […], "solver"?, "options"?}` → per-instance results |
//! | `/v1/solvers` | GET | the registry: name, paper artifact, ratio |
//! | `/healthz` | GET | liveness + uptime |
//! | `/metrics` | GET | counters, latency quantiles, queue, cache |
//!
//! Every `/v1/solve` response carries an `X-Fragalign-Cache: hit|miss`
//! header; hit and miss bodies for the same request are byte-identical
//! (the cache stores the serialized body, wall-clock report included),
//! so caching is observable but never changes results.

pub mod admission;
pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod poll;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionDecision, AdmissionPolicy};
pub use cache::{CacheStats, ResultCache};
pub use client::{get, post, Connection, Response};
pub use http::Request;
pub use metrics::Telemetry;
pub use server::{ServeConfig, Server};
