//! The sharded result cache: finished `/v1/solve` response bodies
//! keyed by a 128-bit request fingerprint, with per-shard LRU
//! eviction under a byte budget.
//!
//! Solvers are deterministic, so a response is a pure function of
//! (solver name, engine options, instance) — exactly what the
//! fingerprint hashes. The instance component is the *canonical*
//! compact JSON of the parsed instance, so two clients formatting the
//! same instance differently (whitespace, indentation) still share an
//! entry. Shards are independently mutex-guarded, so concurrent
//! workers only contend when their fingerprints land on the same
//! shard; the DP workspaces stay per-worker and shared-nothing
//! underneath, as in the batch pipeline.
//!
//! Entries store the serialized body (`Arc<str>`), so a hit skips the
//! solve *and* re-serialization, and hit/miss responses are
//! byte-identical by construction.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slab sentinel for "no slot".
const NIL: usize = usize::MAX;

/// Bookkeeping bytes charged per entry on top of the body itself
/// (fingerprint, slab links, map slot — a rough, stable estimate).
const ENTRY_OVERHEAD: usize = 64;

/// A 128-bit request fingerprint: two independently salted 64-bit
/// hashes of the canonical request text. `DefaultHasher` with default
/// keys is deterministic within a process (and across processes for a
/// given std release), and 128 bits make an accidental collision over
/// any realistic cache population vanishingly unlikely.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fingerprint(u64, u64);

/// Fingerprint the canonical request text (see [`ResultCache`]).
pub fn fingerprint(text: &str) -> Fingerprint {
    let mut a = DefaultHasher::new();
    a.write(text.as_bytes());
    let mut b = DefaultHasher::new();
    // A salt byte decorrelates the halves: same input, different hash.
    b.write_u8(0x9e);
    b.write(text.as_bytes());
    Fingerprint(a.finish(), b.finish())
}

/// One cached response body in a shard's slab.
struct Slot {
    key: Fingerprint,
    body: Arc<str>,
    prev: usize,
    next: usize,
}

/// One mutex-guarded shard: an intrusive doubly-linked LRU list over
/// a slab, plus the fingerprint index. `head` is most recent, `tail`
/// is next to evict.
struct Shard {
    index: HashMap<Fingerprint, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            index: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, at: usize) {
        let (prev, next) = (self.slots[at].prev, self.slots[at].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, at: usize) {
        self.slots[at].prev = NIL;
        self.slots[at].next = self.head;
        match self.head {
            NIL => self.tail = at,
            h => self.slots[h].prev = at,
        }
        self.head = at;
    }

    /// Drop the least-recently-used entry; returns false when empty.
    fn evict_tail(&mut self) -> bool {
        let victim = self.tail;
        if victim == NIL {
            return false;
        }
        self.unlink(victim);
        self.index.remove(&self.slots[victim].key);
        self.bytes -= entry_cost(&self.slots[victim].body);
        self.slots[victim].body = Arc::from("");
        self.free.push(victim);
        true
    }
}

fn entry_cost(body: &Arc<str>) -> usize {
    body.len() + ENTRY_OVERHEAD
}

/// Aggregate cache counters, surfaced in `/metrics` and
/// `BENCH_service.json`.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a solve.
    pub misses: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Live entries across every shard.
    pub entries: usize,
    /// Estimated live bytes (bodies + per-entry overhead).
    pub bytes: usize,
    /// The configured whole-cache byte budget.
    pub byte_budget: usize,
    /// Shard count.
    pub shards: usize,
    /// `hits / (hits + misses)`, 0 when idle.
    pub hit_rate: f64,
}

/// The sharded LRU result cache (see module docs).
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache of `shards` independent LRUs splitting `byte_budget`
    /// evenly. Shard count is clamped to at least 1; a zero budget
    /// disables storage (every insert evicts immediately to empty).
    pub fn new(shards: usize, byte_budget: usize) -> Self {
        let shards = shards.max(1);
        ResultCache {
            shard_budget: byte_budget / shards,
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: Fingerprint) -> &Mutex<Shard> {
        &self.shards[(key.0 % self.shards.len() as u64) as usize]
    }

    /// Look `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: Fingerprint) -> Option<Arc<str>> {
        let mut shard = self.shard(key).lock();
        match shard.index.get(&key).copied() {
            Some(at) => {
                shard.unlink(at);
                shard.push_front(at);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&shard.slots[at].body))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`get`](Self::get), but absence is not counted as a miss:
    /// the event loop probes speculatively before dispatching to a
    /// worker, and the worker's own `get` will record the miss for
    /// exactly one count per request.
    pub fn peek(&self, key: Fingerprint) -> Option<Arc<str>> {
        let mut shard = self.shard(key).lock();
        let at = shard.index.get(&key).copied()?;
        shard.unlink(at);
        shard.push_front(at);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&shard.slots[at].body))
    }

    /// Insert (or refresh) `key → body`, then evict from the shard's
    /// LRU tail until the shard is back under budget. A body too large
    /// for a whole shard is not stored at all — caching it would only
    /// wipe the shard and then evict itself.
    pub fn insert(&self, key: Fingerprint, body: Arc<str>) {
        let cost = entry_cost(&body);
        if cost > self.shard_budget {
            return;
        }
        let mut shard = self.shard(key).lock();
        if let Some(at) = shard.index.get(&key).copied() {
            // Deterministic solvers make a changed body impossible;
            // refresh recency and keep the original bytes.
            shard.unlink(at);
            shard.push_front(at);
            return;
        }
        let at = match shard.free.pop() {
            Some(at) => {
                shard.slots[at] = Slot {
                    key,
                    body,
                    prev: NIL,
                    next: NIL,
                };
                at
            }
            None => {
                shard.slots.push(Slot {
                    key,
                    body,
                    prev: NIL,
                    next: NIL,
                });
                shard.slots.len() - 1
            }
        };
        shard.index.insert(key, at);
        shard.push_front(at);
        shard.bytes += cost;
        while shard.bytes > self.shard_budget {
            if !shard.evict_tail() {
                break;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Aggregate counters across every shard.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut bytes) = (0, 0);
        for shard in &self.shards {
            let shard = shard.lock();
            entries += shard.index.len();
            bytes += shard.bytes;
        }
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        CacheStats {
            hits,
            misses,
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            byte_budget: self.shard_budget * self.shards.len(),
            shards: self.shards.len(),
            hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        assert_eq!(fingerprint("csr\n{}"), fingerprint("csr\n{}"));
        assert_ne!(fingerprint("csr\n{}"), fingerprint("four\n{}"));
        let Fingerprint(a, b) = fingerprint("csr\n{}");
        assert_ne!(a, b, "the two halves must be decorrelated");
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = ResultCache::new(4, 4096);
        let key = fingerprint("solo");
        assert!(cache.get(key).is_none());
        cache.insert(key, body("value"));
        assert_eq!(cache.get(key).as_deref(), Some("value"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.hit_rate > 0.49 && stats.hit_rate < 0.51);
    }

    #[test]
    fn lru_evicts_oldest_first_and_get_refreshes() {
        // One shard so the LRU order is globally observable.
        let cache = ResultCache::new(1, 3 * (ENTRY_OVERHEAD + 1));
        let (a, b, c, d) = (
            fingerprint("a"),
            fingerprint("b"),
            fingerprint("c"),
            fingerprint("d"),
        );
        cache.insert(a, body("1"));
        cache.insert(b, body("2"));
        cache.insert(c, body("3"));
        assert!(cache.get(a).is_some()); // refresh a: b is now oldest
        cache.insert(d, body("4")); // evicts b
        assert!(cache.get(b).is_none());
        assert!(cache.get(a).is_some());
        assert!(cache.get(c).is_some());
        assert!(cache.get(d).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_bounds_live_bytes() {
        let cache = ResultCache::new(2, 2048);
        for i in 0..200 {
            cache.insert(fingerprint(&format!("key{i}")), body(&"x".repeat(100)));
        }
        let stats = cache.stats();
        assert!(stats.bytes <= stats.byte_budget, "{stats:?}");
        assert!(stats.evictions > 0);
        assert!(stats.entries > 0);
    }

    #[test]
    fn oversized_bodies_are_not_cached() {
        let cache = ResultCache::new(1, 256);
        let key = fingerprint("huge");
        cache.insert(key, body(&"x".repeat(10_000)));
        assert!(cache.get(key).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn reinsert_refreshes_recency_without_duplicating() {
        let cache = ResultCache::new(1, 4096);
        let key = fingerprint("k");
        cache.insert(key, body("v"));
        cache.insert(key, body("v"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 1 + ENTRY_OVERHEAD);
    }
}
