//! Load-aware admission control: what the server does between "all
//! clear" and "hard 503".
//!
//! The old overload story was binary — queue full, turn the request
//! away. That wastes the portfolio: the cheap tiers (`greedy`,
//! `chain`) answer big instances orders of magnitude faster than the
//! DP family at a bounded quality cost, so a loaded server can keep
//! answering by *degrading* expensive requests instead of rejecting
//! them. The policy reads two signals that are already lying around:
//! the queue-depth gauge (stamped into the job at enqueue time, so a
//! decision is reproducible from the response alone) and the
//! instance's size — its region count plus the O(n) assignment-
//! relaxation [`score_upper_bound`], which is a better "how much work
//! could this be" proxy than byte length.
//!
//! Two watermarks, both fractions of queue capacity:
//!
//! * `load ≥ degrade_at` — big instances are rerouted to the router's
//!   [`degraded_pick`] tier and the response carries
//!   `X-Fragalign-Degraded: <tier>` so clients can tell;
//! * `load ≥ reject_at` — hard 503 with `Retry-After`, same as the
//!   queue-full rejection.
//!
//! Small instances are never degraded (they are cheap either way),
//! and requests that already name a cheap tier pass through
//! untouched.
//!
//! [`score_upper_bound`]: fragalign_model::Instance::score_upper_bound
//! [`degraded_pick`]: fragalign_core::engine::Router::degraded_pick

use fragalign_core::engine::{InstanceFeatures, Router};
use fragalign_model::Score;

/// The admission knobs, all settable from `fragalign serve` flags.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Master switch (`--admission on|off`). Off restores the old
    /// behaviour: solve everything as asked, 503 only on a full queue.
    pub enabled: bool,
    /// Queue-load fraction at or above which big instances degrade to
    /// a cheap tier.
    pub degrade_at: f64,
    /// Queue-load fraction at or above which requests are hard-503ed
    /// before touching a worker.
    pub reject_at: f64,
    /// Instances below this many total regions are never degraded —
    /// they are cheap for every solver.
    pub min_regions: usize,
    /// Instances whose assignment-relaxation score bound stays below
    /// this are never degraded, whatever their region count (low
    /// bound ⇒ little σ mass ⇒ little DP work worth saving).
    pub min_bound: Score,
}

impl Default for AdmissionConfig {
    /// Degrade at half-full, hard-reject only at a full queue, and
    /// only for instances that are big on both axes.
    fn default() -> Self {
        AdmissionConfig {
            enabled: true,
            degrade_at: 0.5,
            reject_at: 1.0,
            min_regions: 48,
            min_bound: 500,
        }
    }
}

/// What the policy decided for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Solve with the requested solver.
    Admit,
    /// Solve with this cheap tier instead, and say so in the response.
    Degrade(&'static str),
}

/// The policy object: config plus the router whose `degraded_pick`
/// names the cheap tier.
pub struct AdmissionPolicy {
    cfg: AdmissionConfig,
    router: Router,
}

/// Solvers that are already cheap tiers — degrading them would be a
/// no-op (or an upgrade), so they always pass through.
const CHEAP_TIERS: [&str; 2] = ["greedy", "chain"];

impl AdmissionPolicy {
    /// A policy over the shipped routing table.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionPolicy {
            cfg,
            router: Router::default(),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Whether a request arriving at queue-load `load` (depth over
    /// capacity) is past the hard-reject watermark.
    pub fn should_reject(&self, load: f64) -> bool {
        self.cfg.enabled && load >= self.cfg.reject_at
    }

    /// Decide one solve request: `load` is the queue load stamped
    /// when the request was enqueued, `features`/`bound` describe the
    /// instance, `requested` is the solver the client asked for (or
    /// defaulted to).
    pub fn decide(
        &self,
        load: f64,
        features: &InstanceFeatures,
        bound: Score,
        requested: &str,
    ) -> AdmissionDecision {
        if !self.cfg.enabled || load < self.cfg.degrade_at {
            return AdmissionDecision::Admit;
        }
        if CHEAP_TIERS.contains(&requested) {
            return AdmissionDecision::Admit;
        }
        let big = features.total_regions() >= self.cfg.min_regions && bound >= self.cfg.min_bound;
        if !big {
            return AdmissionDecision::Admit;
        }
        AdmissionDecision::Degrade(self.router.degraded_pick(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_features() -> InstanceFeatures {
        InstanceFeatures {
            h_frags: 8,
            m_frags: 8,
            h_regions: 80,
            m_regions: 80,
            max_frag_len: 16,
            sigma_entries: 400,
            sigma_density: 0.06,
            mass_skew: 1.4,
        }
    }

    fn small_features() -> InstanceFeatures {
        InstanceFeatures {
            h_regions: 8,
            m_regions: 6,
            sigma_entries: 12,
            ..big_features()
        }
    }

    #[test]
    fn below_watermark_everything_admits() {
        let p = AdmissionPolicy::new(AdmissionConfig::default());
        assert_eq!(
            p.decide(0.49, &big_features(), 10_000, "csr"),
            AdmissionDecision::Admit
        );
        assert!(!p.should_reject(0.99));
    }

    #[test]
    fn above_watermark_big_instances_degrade_small_ones_pass() {
        let p = AdmissionPolicy::new(AdmissionConfig::default());
        assert_eq!(
            p.decide(0.5, &big_features(), 10_000, "csr"),
            AdmissionDecision::Degrade("chain")
        );
        // Small region count or small bound: cheap anyway, admit.
        assert_eq!(
            p.decide(0.9, &small_features(), 10_000, "csr"),
            AdmissionDecision::Admit
        );
        assert_eq!(
            p.decide(0.9, &big_features(), 3, "csr"),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn cheap_tiers_are_never_degraded() {
        let p = AdmissionPolicy::new(AdmissionConfig::default());
        for tier in CHEAP_TIERS {
            assert_eq!(
                p.decide(0.9, &big_features(), 10_000, tier),
                AdmissionDecision::Admit
            );
        }
    }

    #[test]
    fn hard_reject_needs_the_second_watermark() {
        let p = AdmissionPolicy::new(AdmissionConfig::default());
        assert!(!p.should_reject(0.9));
        assert!(p.should_reject(1.0));
        let off = AdmissionPolicy::new(AdmissionConfig {
            enabled: false,
            ..AdmissionConfig::default()
        });
        assert!(!off.should_reject(5.0));
        assert_eq!(
            off.decide(5.0, &big_features(), 10_000, "csr"),
            AdmissionDecision::Admit
        );
    }
}
