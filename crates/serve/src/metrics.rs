//! Service telemetry: request counters, queue gauges, and an
//! approximate latency histogram, all lock-free atomics so the hot
//! path never serialises on a metrics mutex.

use crate::cache::CacheStats;
use fragalign_core::SolverRegistry;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Power-of-two microsecond buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs. 40 buckets reach ~12.7 days — effectively
/// unbounded for a request.
const BUCKETS: usize = 40;

/// A fixed-bucket log₂ latency histogram. Quantiles are read as the
/// upper bound of the bucket where the cumulative count crosses the
/// quantile, so reported p50/p99 are conservative (never understated)
/// and at most 2× the true value.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Count one observation.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().max(1) as u64;
        let idx = (micros.ilog2() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Approximate quantile `q ∈ (0, 1]` in milliseconds; 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper bound of bucket i, in milliseconds.
                return 2f64.powi(i as i32 + 1) / 1000.0;
            }
        }
        unreachable!("cumulative count reaches total");
    }
}

/// All service counters (see module docs). One instance per server,
/// shared by the acceptor and every worker.
pub struct Telemetry {
    start: Instant,
    requests: AtomicU64,
    rejected_busy: AtomicU64,
    client_errors: AtomicU64,
    unknown_solver: AtomicU64,
    batch_requests: AtomicU64,
    /// `/v1/solve` requests per registered solver, registry order.
    solve_requests: Vec<AtomicU64>,
    queue_depth: AtomicUsize,
    busy_workers: AtomicUsize,
    latency: Histogram,
}

impl Telemetry {
    /// Fresh counters; the per-solver table is sized from the global
    /// registry.
    pub fn new() -> Self {
        Telemetry {
            start: Instant::now(),
            requests: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            unknown_solver: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            solve_requests: SolverRegistry::global()
                .names()
                .iter()
                .map(|_| AtomicU64::new(0))
                .collect(),
            queue_depth: AtomicUsize::new(0),
            busy_workers: AtomicUsize::new(0),
            latency: Histogram::new(),
        }
    }

    /// A connection entered the worker queue.
    pub fn note_queued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection left the worker queue (picked up or rejected).
    pub fn note_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently waiting in the worker queue.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// A worker started (`true`) or finished (`false`) a connection.
    pub fn note_busy(&self, busy: bool) {
        if busy {
            self.busy_workers.fetch_add(1, Ordering::Relaxed);
        } else {
            self.busy_workers.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Workers currently handling a connection.
    pub fn busy_workers(&self) -> usize {
        self.busy_workers.load(Ordering::Relaxed)
    }

    /// A worker finished a connection with response `status`.
    pub fn record_response(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if (400..500).contains(&status) {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The acceptor turned a connection away with `503` (queue full).
    pub fn record_rejected(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// A `/v1/solve` request resolved to the solver at registry
    /// position `pos`.
    pub fn record_solve(&self, pos: usize) {
        self.solve_requests[pos].fetch_add(1, Ordering::Relaxed);
    }

    /// A `/v1/solve` request named an unregistered solver.
    pub fn record_unknown_solver(&self) {
        self.unknown_solver.fetch_add(1, Ordering::Relaxed);
    }

    /// A `/v1/batch` request arrived.
    pub fn record_batch(&self) {
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// One end-to-end observation (queue wait + handling).
    pub fn record_latency(&self, d: Duration) {
        self.latency.record(d);
    }

    /// Assemble the `/metrics` document.
    pub fn snapshot(
        &self,
        workers: usize,
        queue_capacity: usize,
        cache: CacheStats,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_secs: self.start.elapsed().as_secs_f64(),
            requests_total: self.requests.load(Ordering::Relaxed),
            rejected_503: self.rejected_busy.load(Ordering::Relaxed),
            client_errors_4xx: self.client_errors.load(Ordering::Relaxed),
            unknown_solver_requests: self.unknown_solver.load(Ordering::Relaxed),
            batch_requests: self.batch_requests.load(Ordering::Relaxed),
            solve_requests: SolverRegistry::global()
                .names()
                .iter()
                .zip(&self.solve_requests)
                .map(|(name, count)| SolverRequests {
                    solver: (*name).to_string(),
                    requests: count.load(Ordering::Relaxed),
                })
                .collect(),
            latency: LatencySnapshot {
                count: self.latency.count(),
                p50_ms: self.latency.quantile_ms(0.50),
                p99_ms: self.latency.quantile_ms(0.99),
            },
            queue: QueueSnapshot {
                depth: self.queue_depth(),
                capacity: queue_capacity,
                workers,
                busy_workers: self.busy_workers(),
            },
            cache,
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

/// `/v1/solve` traffic for one registered solver.
#[derive(Serialize)]
pub struct SolverRequests {
    /// Registered solver name.
    pub solver: String,
    /// Fully-validated `/v1/solve` requests that asked for it
    /// (cache hits included; batch traffic and requests rejected
    /// during validation are not counted here).
    pub requests: u64,
}

/// Latency summary over every worker-handled connection.
#[derive(Serialize)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Approximate median, milliseconds (bucket upper bound).
    pub p50_ms: f64,
    /// Approximate 99th percentile, milliseconds (bucket upper bound).
    pub p99_ms: f64,
}

/// Worker-queue occupancy at snapshot time.
#[derive(Serialize)]
pub struct QueueSnapshot {
    /// Connections waiting in the bounded queue.
    pub depth: usize,
    /// The queue's capacity (`--queue-depth`).
    pub capacity: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Workers currently mid-connection.
    pub busy_workers: usize,
}

/// The `/metrics` document.
#[derive(Serialize)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Connections handled by workers (any status).
    pub requests_total: u64,
    /// Connections rejected by the acceptor because the queue was full.
    pub rejected_503: u64,
    /// Worker responses with a 4xx status.
    pub client_errors_4xx: u64,
    /// `/v1/solve` requests naming an unregistered solver.
    pub unknown_solver_requests: u64,
    /// `/v1/batch` requests.
    pub batch_requests: u64,
    /// `/v1/solve` traffic per registered solver, registry order.
    pub solve_requests: Vec<SolverRequests>,
    /// End-to-end latency (queue wait + handling).
    pub latency: LatencySnapshot,
    /// Worker-queue occupancy.
    pub queue: QueueSnapshot,
    /// Result-cache counters.
    pub cache: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_conservative() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128) µs
        }
        h.record(Duration::from_millis(80)); // bucket [65.5, 131) ms
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ms(0.50);
        assert!((0.1..=0.2).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ms(0.99);
        assert!((0.1..=0.2).contains(&p99), "p99 = {p99}");
        let p100 = h.quantile_ms(1.0);
        assert!((80.0..=160.0).contains(&p100), "p100 = {p100}");
        assert_eq!(Histogram::new().quantile_ms(0.5), 0.0);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let t = Telemetry::new();
        t.record_response(200);
        t.record_response(400);
        t.record_rejected();
        t.record_solve(0);
        t.record_solve(0);
        t.record_batch();
        t.record_latency(Duration::from_millis(3));
        t.note_queued();
        let snap = t.snapshot(4, 64, crate::ResultCache::new(2, 1024).stats());
        assert_eq!(snap.requests_total, 2);
        assert_eq!(snap.client_errors_4xx, 1);
        assert_eq!(snap.rejected_503, 1);
        assert_eq!(snap.solve_requests[0].requests, 2);
        assert_eq!(snap.batch_requests, 1);
        assert_eq!(snap.latency.count, 1);
        assert_eq!(snap.queue.depth, 1);
        assert_eq!(snap.queue.capacity, 64);
        // The whole document serialises.
        assert!(serde_json::to_string(&snap)
            .unwrap()
            .contains("uptime_secs"));
    }
}
