//! Service telemetry: request counters, queue gauges, and an
//! approximate latency histogram, all lock-free atomics so the hot
//! path never serialises on a metrics mutex.

use crate::cache::CacheStats;
use fragalign_core::SolverRegistry;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Power-of-two microsecond buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` µs. 40 buckets reach ~12.7 days — effectively
/// unbounded for a request.
const BUCKETS: usize = 40;

/// A fixed-bucket log₂ latency histogram. Quantiles are read as the
/// upper bound of the bucket where the cumulative count crosses the
/// quantile — clamped to the largest observation ever recorded — so
/// reported p50/p99 are conservative (never understated) and at most
/// 2× the true value. Without the clamp, an observation landing in
/// the open-ended top bucket would report that bucket's ~12.7-day
/// upper bound as the quantile.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    /// Sum of all observations, µs (Prometheus `_sum`).
    sum_micros: AtomicU64,
    /// Largest single observation, µs (the quantile clamp).
    max_micros: AtomicU64,
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Count one observation.
    pub fn record(&self, d: Duration) {
        let micros = d.as_micros().max(1) as u64;
        let idx = (micros.ilog2() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations, in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Approximate quantile `q ∈ (0, 1]` in milliseconds; 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper bound of bucket i, clamped to the largest
                // observation (both are upper bounds on the true
                // quantile, so the min still never understates).
                let bound_us = 2f64.powi(i as i32 + 1);
                let max_us = self.max_micros.load(Ordering::Relaxed) as f64;
                return bound_us.min(max_us.max(1.0)) / 1000.0;
            }
        }
        unreachable!("cumulative count reaches total");
    }

    /// Append this histogram as Prometheus text exposition under
    /// `name` (seconds-unit, cumulative `_bucket` lines up to the last
    /// occupied bound, then `+Inf`, `_sum`, `_count`). `labels` is the
    /// rendered label set without braces (`""` or `solver="csr"`).
    fn render_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let last = counts.iter().rposition(|&c| c > 0);
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cum = 0u64;
        if let Some(last) = last {
            for (i, c) in counts.iter().enumerate().take(last + 1) {
                cum += c;
                let le = 2f64.powi(i as i32 + 1) / 1e6;
                out.push_str(&format!(
                    "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cum}\n"
                ));
            }
        }
        let braces = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cum}\n"
        ));
        out.push_str(&format!(
            "{name}_sum{braces} {}\n",
            self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!("{name}_count{braces} {cum}\n"));
    }
}

/// All service counters (see module docs). One instance per server,
/// shared by the acceptor and every worker.
pub struct Telemetry {
    start: Instant,
    requests: AtomicU64,
    rejected_busy: AtomicU64,
    client_errors: AtomicU64,
    unknown_solver: AtomicU64,
    batch_requests: AtomicU64,
    /// `/v1/solve` requests per registered solver, registry order.
    solve_requests: Vec<AtomicU64>,
    queue_depth: AtomicUsize,
    busy_workers: AtomicUsize,
    latency: Histogram,
    /// Time a connection sat in the bounded queue before a worker
    /// picked it up.
    queue_wait: Histogram,
    /// Time the worker spent actually handling the connection
    /// (`latency` ≈ `queue_wait` + `service` per request).
    service: Histogram,
    /// Per-solver solve latency (registry order; `/v1/solve` only).
    solve_latency: Vec<Histogram>,
    /// `?trace=1` requests served.
    traced_requests: AtomicU64,
    /// Trace events lost to ring overwrite across all traced requests
    /// (the obs layer's drop-oldest policy, made visible).
    trace_events_dropped: AtomicU64,
    /// Connections the event loop ever accepted.
    connections_accepted: AtomicU64,
    /// Connections currently alive (idle, reading, or being served).
    connections_open: AtomicUsize,
    /// Requests served on an already-used connection (request ≥ 2 on
    /// its keep-alive connection).
    keepalive_reuse: AtomicU64,
    /// Solve requests rerouted to a cheap tier by admission control.
    admission_degraded: AtomicU64,
    /// Plain requests traced by the 1-in-N sampler (`--trace-sample`).
    sampled_traces: AtomicU64,
}

impl Telemetry {
    /// Fresh counters; the per-solver table is sized from the global
    /// registry.
    pub fn new() -> Self {
        Telemetry {
            start: Instant::now(),
            requests: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            unknown_solver: AtomicU64::new(0),
            batch_requests: AtomicU64::new(0),
            solve_requests: SolverRegistry::global()
                .names()
                .iter()
                .map(|_| AtomicU64::new(0))
                .collect(),
            queue_depth: AtomicUsize::new(0),
            busy_workers: AtomicUsize::new(0),
            latency: Histogram::new(),
            queue_wait: Histogram::new(),
            service: Histogram::new(),
            solve_latency: SolverRegistry::global()
                .names()
                .iter()
                .map(|_| Histogram::new())
                .collect(),
            traced_requests: AtomicU64::new(0),
            trace_events_dropped: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_open: AtomicUsize::new(0),
            keepalive_reuse: AtomicU64::new(0),
            admission_degraded: AtomicU64::new(0),
            sampled_traces: AtomicU64::new(0),
        }
    }

    /// The event loop accepted a connection (it is now open).
    pub fn note_conn_opened(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection closed (any path: served, idle-timed-out, error).
    pub fn note_conn_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently alive.
    pub fn connections_open(&self) -> usize {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// A request arrived on an already-used keep-alive connection.
    pub fn record_keepalive_reuse(&self) {
        self.keepalive_reuse.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission control rerouted a solve to a cheap tier.
    pub fn record_degraded(&self) {
        self.admission_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// The 1-in-N sampler traced a plain request.
    pub fn record_sampled(&self) {
        self.sampled_traces.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection entered the worker queue.
    pub fn note_queued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection left the worker queue (picked up or rejected).
    pub fn note_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently waiting in the worker queue.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// A worker started (`true`) or finished (`false`) a connection.
    pub fn note_busy(&self, busy: bool) {
        if busy {
            self.busy_workers.fetch_add(1, Ordering::Relaxed);
        } else {
            self.busy_workers.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Workers currently handling a connection.
    pub fn busy_workers(&self) -> usize {
        self.busy_workers.load(Ordering::Relaxed)
    }

    /// A worker finished a connection with response `status`.
    pub fn record_response(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if (400..500).contains(&status) {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The acceptor turned a connection away with `503` (queue full).
    pub fn record_rejected(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// A `/v1/solve` request resolved to the solver at registry
    /// position `pos`.
    pub fn record_solve(&self, pos: usize) {
        self.solve_requests[pos].fetch_add(1, Ordering::Relaxed);
    }

    /// A `/v1/solve` request named an unregistered solver.
    pub fn record_unknown_solver(&self) {
        self.unknown_solver.fetch_add(1, Ordering::Relaxed);
    }

    /// A `/v1/batch` request arrived.
    pub fn record_batch(&self) {
        self.batch_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// One end-to-end observation (queue wait + handling).
    pub fn record_latency(&self, d: Duration) {
        self.latency.record(d);
    }

    /// Time one connection waited in the queue before pickup.
    pub fn record_queue_wait(&self, d: Duration) {
        self.queue_wait.record(d);
    }

    /// Time one connection spent being handled by its worker.
    pub fn record_service(&self, d: Duration) {
        self.service.record(d);
    }

    /// Solve wall time for the solver at registry position `pos`.
    pub fn record_solve_latency(&self, pos: usize, d: Duration) {
        self.solve_latency[pos].record(d);
    }

    /// A `?trace=1` request completed, losing `dropped` events to the
    /// trace ring's drop-oldest overwrite.
    pub fn record_traced(&self, dropped: u64) {
        self.traced_requests.fetch_add(1, Ordering::Relaxed);
        self.trace_events_dropped
            .fetch_add(dropped, Ordering::Relaxed);
    }

    /// Assemble the `/metrics` document.
    pub fn snapshot(
        &self,
        workers: usize,
        queue_capacity: usize,
        cache: CacheStats,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_secs: self.start.elapsed().as_secs_f64(),
            requests_total: self.requests.load(Ordering::Relaxed),
            rejected_503: self.rejected_busy.load(Ordering::Relaxed),
            client_errors_4xx: self.client_errors.load(Ordering::Relaxed),
            unknown_solver_requests: self.unknown_solver.load(Ordering::Relaxed),
            batch_requests: self.batch_requests.load(Ordering::Relaxed),
            solve_requests: SolverRegistry::global()
                .names()
                .iter()
                .zip(&self.solve_requests)
                .zip(&self.solve_latency)
                .map(|((name, count), lat)| SolverRequests {
                    solver: (*name).to_string(),
                    requests: count.load(Ordering::Relaxed),
                    latency: LatencySnapshot::of(lat),
                })
                .collect(),
            latency: LatencySnapshot::of(&self.latency),
            queue_wait: LatencySnapshot::of(&self.queue_wait),
            service: LatencySnapshot::of(&self.service),
            traced_requests: self.traced_requests.load(Ordering::Relaxed),
            trace_events_dropped: self.trace_events_dropped.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_open: self.connections_open(),
            keepalive_reuse: self.keepalive_reuse.load(Ordering::Relaxed),
            admission_degraded: self.admission_degraded.load(Ordering::Relaxed),
            sampled_traces: self.sampled_traces.load(Ordering::Relaxed),
            queue: QueueSnapshot {
                depth: self.queue_depth(),
                capacity: queue_capacity,
                workers,
                busy_workers: self.busy_workers(),
            },
            cache,
        }
    }

    /// Render the whole telemetry set in the Prometheus text
    /// exposition format (version 0.0.4): every counter and gauge of
    /// the JSON document plus real cumulative histograms for
    /// end-to-end latency, queue wait, service time, and per-solver
    /// solve latency (solvers that served no request render counters
    /// only, keeping the document compact).
    pub fn prometheus(&self, workers: usize, queue_capacity: usize, cache: CacheStats) -> String {
        let mut out = String::with_capacity(4096);
        let gauge = |out: &mut String, name: &str, help: &str, v: f64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        gauge(
            &mut out,
            "fragalign_uptime_seconds",
            "Seconds since the server started.",
            self.start.elapsed().as_secs_f64(),
        );
        counter(
            &mut out,
            "fragalign_requests_total",
            "Connections handled by workers (any status).",
            self.requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fragalign_rejected_503_total",
            "Connections rejected because the queue was full.",
            self.rejected_busy.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fragalign_client_errors_4xx_total",
            "Worker responses with a 4xx status.",
            self.client_errors.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fragalign_unknown_solver_requests_total",
            "Solve requests naming an unregistered solver.",
            self.unknown_solver.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fragalign_batch_requests_total",
            "Batch requests received.",
            self.batch_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fragalign_traced_requests_total",
            "Requests served with ?trace=1.",
            self.traced_requests.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fragalign_trace_events_dropped_total",
            "Trace events lost to the ring's drop-oldest overwrite.",
            self.trace_events_dropped.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fragalign_sampled_traces_total",
            "Plain requests traced by the 1-in-N sampler.",
            self.sampled_traces.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fragalign_connections_accepted_total",
            "Connections accepted by the event loop.",
            self.connections_accepted.load(Ordering::Relaxed),
        );
        gauge(
            &mut out,
            "fragalign_connections_open",
            "Connections currently alive (idle, reading, or served).",
            self.connections_open() as f64,
        );
        counter(
            &mut out,
            "fragalign_keepalive_reuse_total",
            "Requests served on an already-used keep-alive connection.",
            self.keepalive_reuse.load(Ordering::Relaxed),
        );
        counter(
            &mut out,
            "fragalign_admission_degraded_total",
            "Solve requests rerouted to a cheap tier under load.",
            self.admission_degraded.load(Ordering::Relaxed),
        );
        out.push_str(
            "# HELP fragalign_solve_requests_total Solve requests per registered solver.\n\
             # TYPE fragalign_solve_requests_total counter\n",
        );
        let names = SolverRegistry::global().names();
        for (name, count) in names.iter().zip(&self.solve_requests) {
            out.push_str(&format!(
                "fragalign_solve_requests_total{{solver=\"{name}\"}} {}\n",
                count.load(Ordering::Relaxed)
            ));
        }
        gauge(
            &mut out,
            "fragalign_queue_depth",
            "Connections waiting in the bounded queue.",
            self.queue_depth() as f64,
        );
        gauge(
            &mut out,
            "fragalign_queue_capacity",
            "The bounded queue's capacity.",
            queue_capacity as f64,
        );
        gauge(
            &mut out,
            "fragalign_workers",
            "Worker-pool size.",
            workers as f64,
        );
        gauge(
            &mut out,
            "fragalign_busy_workers",
            "Workers currently mid-connection.",
            self.busy_workers() as f64,
        );
        counter(
            &mut out,
            "fragalign_cache_hits_total",
            "Result-cache hits.",
            cache.hits,
        );
        counter(
            &mut out,
            "fragalign_cache_misses_total",
            "Result-cache misses.",
            cache.misses,
        );
        counter(
            &mut out,
            "fragalign_cache_evictions_total",
            "Result-cache LRU evictions.",
            cache.evictions,
        );
        gauge(
            &mut out,
            "fragalign_cache_entries",
            "Result-cache resident entries.",
            cache.entries as f64,
        );
        gauge(
            &mut out,
            "fragalign_cache_bytes",
            "Result-cache resident bytes.",
            cache.bytes as f64,
        );
        let histo = |out: &mut String, name: &str, help: &str, h: &Histogram, labels: &str| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
            h.render_prometheus(out, name, labels);
        };
        histo(
            &mut out,
            "fragalign_request_duration_seconds",
            "End-to-end latency (queue wait + handling).",
            &self.latency,
            "",
        );
        histo(
            &mut out,
            "fragalign_queue_wait_seconds",
            "Time connections waited for a worker.",
            &self.queue_wait,
            "",
        );
        histo(
            &mut out,
            "fragalign_service_seconds",
            "Time workers spent handling connections.",
            &self.service,
            "",
        );
        let mut solver_histos = String::new();
        for (name, h) in names.iter().zip(&self.solve_latency) {
            if h.count() > 0 {
                h.render_prometheus(
                    &mut solver_histos,
                    "fragalign_solve_duration_seconds",
                    &format!("solver=\"{name}\""),
                );
            }
        }
        if !solver_histos.is_empty() {
            out.push_str(
                "# HELP fragalign_solve_duration_seconds Solve wall time per solver.\n\
                 # TYPE fragalign_solve_duration_seconds histogram\n",
            );
            out.push_str(&solver_histos);
        }
        out
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

/// `/v1/solve` traffic for one registered solver.
#[derive(Serialize)]
pub struct SolverRequests {
    /// Registered solver name.
    pub solver: String,
    /// Fully-validated `/v1/solve` requests that asked for it
    /// (cache hits included; batch traffic and requests rejected
    /// during validation are not counted here).
    pub requests: u64,
    /// Solve wall time for this solver (cache hits excluded — only
    /// actual solves are timed).
    pub latency: LatencySnapshot,
}

/// Latency summary over one histogram.
#[derive(Serialize)]
pub struct LatencySnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Approximate median, milliseconds (bucket upper bound, clamped
    /// to the largest observation).
    pub p50_ms: f64,
    /// Approximate 99th percentile, milliseconds (bucket upper bound,
    /// clamped to the largest observation).
    pub p99_ms: f64,
}

impl LatencySnapshot {
    fn of(h: &Histogram) -> Self {
        LatencySnapshot {
            count: h.count(),
            p50_ms: h.quantile_ms(0.50),
            p99_ms: h.quantile_ms(0.99),
        }
    }
}

/// Worker-queue occupancy at snapshot time.
#[derive(Serialize)]
pub struct QueueSnapshot {
    /// Connections waiting in the bounded queue.
    pub depth: usize,
    /// The queue's capacity (`--queue-depth`).
    pub capacity: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Workers currently mid-connection.
    pub busy_workers: usize,
}

/// The `/metrics` document.
#[derive(Serialize)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Connections handled by workers (any status).
    pub requests_total: u64,
    /// Connections rejected by the acceptor because the queue was full.
    pub rejected_503: u64,
    /// Worker responses with a 4xx status.
    pub client_errors_4xx: u64,
    /// `/v1/solve` requests naming an unregistered solver.
    pub unknown_solver_requests: u64,
    /// `/v1/batch` requests.
    pub batch_requests: u64,
    /// `/v1/solve` traffic per registered solver, registry order.
    pub solve_requests: Vec<SolverRequests>,
    /// End-to-end latency (queue wait + handling).
    pub latency: LatencySnapshot,
    /// Time connections waited in the bounded queue for a worker.
    pub queue_wait: LatencySnapshot,
    /// Time workers spent handling connections.
    pub service: LatencySnapshot,
    /// Requests served with `?trace=1`.
    pub traced_requests: u64,
    /// Trace events lost to the ring's drop-oldest overwrite.
    pub trace_events_dropped: u64,
    /// Connections the event loop ever accepted.
    pub connections_accepted: u64,
    /// Connections currently alive (idle, reading, or being served).
    pub connections_open: usize,
    /// Requests served on an already-used keep-alive connection.
    pub keepalive_reuse: u64,
    /// Solve requests rerouted to a cheap tier by admission control.
    pub admission_degraded: u64,
    /// Plain requests traced by the 1-in-N sampler.
    pub sampled_traces: u64,
    /// Worker-queue occupancy.
    pub queue: QueueSnapshot,
    /// Result-cache counters.
    pub cache: CacheStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_conservative() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128) µs
        }
        h.record(Duration::from_millis(80)); // bucket [65.5, 131) ms
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ms(0.50);
        assert!((0.1..=0.2).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_ms(0.99);
        assert!((0.1..=0.2).contains(&p99), "p99 = {p99}");
        let p100 = h.quantile_ms(1.0);
        assert!((80.0..=160.0).contains(&p100), "p100 = {p100}");
        assert_eq!(Histogram::new().quantile_ms(0.5), 0.0);
    }

    #[test]
    fn quantile_error_at_most_2x_on_seeded_distributions() {
        // Seeded xorshift draws across three decades of latency; the
        // histogram quantile must stay within [true, 2 × true] at
        // every probed q — including q = 1.0, which the unclamped
        // top-bucket read used to overstate.
        for seed in [1u64, 42, 0xdecafbad] {
            let mut s = seed;
            let mut step = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            };
            let h = Histogram::new();
            let mut xs: Vec<u64> = (0..500).map(|_| 1 + step() % 200_000).collect();
            for &x in &xs {
                h.record(Duration::from_micros(x));
            }
            xs.sort_unstable();
            for q in [0.5, 0.9, 0.99, 1.0] {
                let target = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
                let true_ms = xs[target - 1] as f64 / 1000.0;
                let est = h.quantile_ms(q);
                assert!(est >= true_ms, "seed {seed} q {q}: {est} < {true_ms}");
                assert!(
                    est <= 2.0 * true_ms,
                    "seed {seed} q {q}: {est} > 2x {true_ms}"
                );
            }
        }
    }

    #[test]
    fn top_bucket_quantile_clamps_to_observed_max() {
        // One observation deep in the open-ended top bucket: the
        // quantile is the observation itself, not the bucket's
        // ~12.7-day upper bound.
        let h = Histogram::new();
        let big = Duration::from_secs(1_000_000); // 1e12 µs, bucket 39
        h.record(big);
        let p100 = h.quantile_ms(1.0);
        assert_eq!(p100, 1e9, "clamped to the observation, got {p100}");
        assert!(p100 < 2f64.powi(40) / 1000.0);
    }

    #[test]
    fn prometheus_document_renders_counters_and_histograms() {
        let t = Telemetry::new();
        t.record_response(200);
        t.record_solve(0);
        t.record_latency(Duration::from_millis(3));
        t.record_queue_wait(Duration::from_micros(40));
        t.record_service(Duration::from_millis(2));
        t.record_solve_latency(0, Duration::from_millis(2));
        t.record_traced(5);
        t.note_conn_opened();
        t.note_conn_opened();
        t.note_conn_closed();
        t.record_keepalive_reuse();
        t.record_degraded();
        t.record_sampled();
        let text = t.prometheus(4, 64, crate::ResultCache::new(2, 1024).stats());
        for needle in [
            "fragalign_requests_total 1",
            "fragalign_traced_requests_total 1",
            "fragalign_trace_events_dropped_total 5",
            "fragalign_connections_accepted_total 2",
            "fragalign_connections_open 1",
            "fragalign_keepalive_reuse_total 1",
            "fragalign_admission_degraded_total 1",
            "fragalign_sampled_traces_total 1",
            "fragalign_solve_requests_total{solver=\"csr\"} 1",
            "fragalign_cache_evictions_total 0",
            "# TYPE fragalign_request_duration_seconds histogram",
            "fragalign_request_duration_seconds_count 1",
            "fragalign_queue_wait_seconds_bucket{le=\"+Inf\"} 1",
            "fragalign_solve_duration_seconds_bucket{solver=\"csr\",le=\"+Inf\"} 1",
            "fragalign_solve_duration_seconds_count{solver=\"csr\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn snapshot_reflects_counters() {
        let t = Telemetry::new();
        t.record_response(200);
        t.record_response(400);
        t.record_rejected();
        t.record_solve(0);
        t.record_solve(0);
        t.record_batch();
        t.record_latency(Duration::from_millis(3));
        t.note_queued();
        t.note_conn_opened();
        t.record_keepalive_reuse();
        t.record_degraded();
        t.record_sampled();
        let snap = t.snapshot(4, 64, crate::ResultCache::new(2, 1024).stats());
        assert_eq!(snap.requests_total, 2);
        assert_eq!(snap.connections_accepted, 1);
        assert_eq!(snap.connections_open, 1);
        assert_eq!(snap.keepalive_reuse, 1);
        assert_eq!(snap.admission_degraded, 1);
        assert_eq!(snap.sampled_traces, 1);
        assert_eq!(snap.client_errors_4xx, 1);
        assert_eq!(snap.rejected_503, 1);
        assert_eq!(snap.solve_requests[0].requests, 2);
        assert_eq!(snap.batch_requests, 1);
        assert_eq!(snap.latency.count, 1);
        assert_eq!(snap.queue.depth, 1);
        assert_eq!(snap.queue.capacity, 64);
        // The whole document serialises.
        assert!(serde_json::to_string(&snap)
            .unwrap()
            .contains("uptime_secs"));
    }
}
