//! The service: an event-driven connection layer over a fixed worker
//! pool, with load-aware admission control and the sharded result
//! cache in front of the solver engine.
//!
//! ## Concurrency model
//!
//! One event-loop thread owns the nonblocking listener, a `poll(2)`
//! interest list (see [`crate::poll`]), and every connection that is
//! idle, mid-read, or mid-write. Connections carry their own read and
//! write buffers; the loop feeds bytes through [`http::try_parse`]
//! until a full request materialises, then hands the *connection plus
//! parsed request* to the bounded worker queue. A connection
//! therefore occupies a worker thread only while a fully-parsed
//! request is being solved — thousands of idle keep-alive connections
//! cost zero threads, and a slowloris client dribbling header bytes
//! costs one buffer and an idle timer, never a worker.
//!
//! After a worker writes its response on a keep-alive connection, the
//! connection travels back to the loop over an in-process return
//! queue (plus one wakeup byte on a loopback socket pair, since
//! `poll` cannot watch an mpsc channel), bringing any pipelined
//! leftover bytes with it so the next request parses without another
//! read.
//!
//! Backpressure has three stages instead of the old cliff: below the
//! degrade watermark everything is solved as asked; above it, big
//! instances are rerouted to cheap tiers by [`AdmissionPolicy`] (the
//! response says so in `X-Fragalign-Degraded`); above the hard
//! watermark — or when the queue itself is full — the loop answers
//! `503` in microseconds without touching a worker.
//!
//! Each worker owns one [`DpWorkspace`] for its whole lifetime — the
//! same shared-nothing reuse discipline as the batch pipeline, so two
//! concurrent requests never share a DP buffer and results are
//! bit-identical to a direct [`solve_single_report`] call. The result
//! cache above the workers is the only cross-request state, and it
//! stores finished response bodies keyed by (solver actually run,
//! options, canonical instance) — degraded responses are keyed under
//! the cheap tier that produced them, so a cache entry always equals
//! a direct solve by its key's solver.
//!
//! [`solve_single_report`]: fragalign_core::solve_single_report

use crate::admission::{AdmissionConfig, AdmissionDecision, AdmissionPolicy};
use crate::cache::{self, ResultCache};
use crate::http::{self, Parse, Request, RequestError};
use crate::metrics::Telemetry;
use crate::poll::{self, Poller};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use fragalign_align::DpWorkspace;
use fragalign_core::engine::{InstanceFeatures, TraceHandle, TraceSink};
use fragalign_core::{
    solve_single_traced, BatchOptions, EngineError, EngineOptions, SolveReport, SolverRegistry,
};
use fragalign_model::{Instance, MatchSet, Score};
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything `fragalign serve` exposes as a flag.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker-pool size (each worker owns a warm DP workspace).
    pub workers: usize,
    /// Bounded request-queue capacity; beyond it the event loop
    /// answers 503.
    pub queue_depth: usize,
    /// Result-cache budget in MiB (0 disables caching).
    pub cache_mb: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Solver used when a request names none.
    pub default_solver: String,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout, seconds — applies to
    /// the worker's blocking response write, so a stalled client can
    /// hold a worker at most this long.
    pub io_timeout_secs: u64,
    /// Most connections the event loop will hold open at once; past
    /// it new connections get an immediate 503.
    pub max_conns: usize,
    /// Idle keep-alive connections are closed after this long with no
    /// bytes in either direction (the slowloris defense).
    pub idle_timeout_ms: u64,
    /// The admission-control watermarks.
    pub admission: AdmissionConfig,
    /// Trace one in this many plain solves into a shared sink served
    /// at `GET /debug/trace` (0 disables sampling).
    pub trace_sample: u64,
}

impl Default for ServeConfig {
    /// Loopback, 4 workers, queue of 64, 32 MiB cache over 16 shards,
    /// the shape-routing `auto` solver, 1024 connections, 30 s idle
    /// timeout, admission on at the default watermarks, sampling off.
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_mb: 32,
            cache_shards: 16,
            default_solver: "auto".to_string(),
            max_body_bytes: 16 * 1024 * 1024,
            io_timeout_secs: 10,
            max_conns: 1024,
            idle_timeout_ms: 30_000,
            admission: AdmissionConfig::default(),
            trace_sample: 0,
        }
    }
}

/// The 1-in-N sampler: a shared sink plus the tick counter that
/// decides which plain solves get a recording handle.
struct Sampler {
    /// The active sink. `GET /debug/trace` swaps in a fresh ring and
    /// snapshots the old one, so each drain returns only spans
    /// recorded since the previous drain (a solve racing the swap may
    /// land its spans in the retired ring and go unreported — fine
    /// for a debug endpoint).
    sink: Mutex<Arc<TraceSink>>,
    every: u64,
    ticks: AtomicU64,
}

impl Sampler {
    /// Whether this tick's request is the 1-in-N one.
    fn fires(&self) -> bool {
        self.ticks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }

    /// A clone of the currently active sink.
    fn current(&self) -> Arc<TraceSink> {
        Arc::clone(&self.sink.lock().expect("sampler lock poisoned"))
    }

    /// Swap in a fresh ring and return the retired one for draining.
    fn rotate(&self) -> Arc<TraceSink> {
        let mut slot = self.sink.lock().expect("sampler lock poisoned");
        std::mem::replace(&mut slot, TraceSink::new())
    }
}

/// State shared by the event loop and every worker. Tests and the
/// `exp_service` load generator read the gauges through
/// [`Server::state`].
pub struct ServeState {
    /// All counters and gauges.
    pub telemetry: Telemetry,
    /// The sharded result cache.
    pub cache: ResultCache,
    default_solver: String,
    queue_capacity: usize,
    workers: usize,
    max_body_bytes: usize,
    admission: AdmissionPolicy,
    sampler: Option<Sampler>,
}

/// Decrements the open-connections gauge when its connection dies,
/// whichever thread drops it.
struct OpenConn(Arc<ServeState>);

impl Drop for OpenConn {
    fn drop(&mut self) {
        self.0.telemetry.note_conn_closed();
    }
}

/// One live connection: the socket plus its read buffer (bytes not
/// yet parsed, including pipelined leftover), write buffer (responses
/// the loop queued itself), and liveness bookkeeping.
struct Conn {
    stream: TcpStream,
    /// Unparsed inbound bytes; the front is always a request boundary.
    buf: Vec<u8>,
    /// Outbound bytes the loop owes the socket (error responses,
    /// interim 100s); flushed nonblockingly as the socket drains.
    out: Vec<u8>,
    out_pos: usize,
    /// Close once `out` is fully flushed (framing is broken or the
    /// request asked for it).
    close_after_write: bool,
    /// An interim `100 Continue` has been queued for the request
    /// currently being read.
    sent_continue: bool,
    last_activity: Instant,
    born: Instant,
    /// Requests fully parsed off this connection so far.
    served: u64,
    /// Whether this connection's lifetime is traced by the sampler.
    sampled: bool,
    _open: OpenConn,
}

impl Conn {
    fn new(stream: TcpStream, state: &Arc<ServeState>, sampled: bool) -> Conn {
        let now = Instant::now();
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            close_after_write: false,
            sent_continue: false,
            last_activity: now,
            born: now,
            served: 0,
            sampled,
            _open: OpenConn(Arc::clone(state)),
        }
    }

    fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Queue a complete response for the loop to flush; `keep_alive`
    /// false also marks the connection to close after the flush.
    fn queue_response(
        &mut self,
        status: u16,
        extra: &[(&str, &str)],
        body: &str,
        keep_alive: bool,
    ) {
        self.out.extend_from_slice(&http::render_response(
            status,
            "application/json",
            extra,
            body,
            keep_alive,
        ));
        if !keep_alive {
            self.close_after_write = true;
        }
    }
}

/// One parsed request travelling to a worker, carrying its connection
/// and the queue load observed at enqueue time (so the admission
/// decision is reproducible from the stamped value, not a re-read of
/// a moving gauge).
struct Job {
    conn: Conn,
    request: Request,
    load: f64,
    enqueued: Instant,
}

/// A running service; dropping it (or calling [`Server::shutdown`])
/// stops accepting, drains the queue, and joins every thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    events: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr`, spawn the event loop and worker pool, and
    /// return the running server. Fails fast on an unbindable address
    /// or an unregistered default solver.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        SolverRegistry::global()
            .spec(&cfg.default_solver)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let state = Arc::new(ServeState {
            telemetry: Telemetry::new(),
            cache: ResultCache::new(cfg.cache_shards, cfg.cache_mb * 1024 * 1024),
            default_solver: cfg.default_solver.clone(),
            queue_capacity: cfg.queue_depth.max(1),
            workers,
            max_body_bytes: cfg.max_body_bytes,
            admission: AdmissionPolicy::new(cfg.admission.clone()),
            sampler: (cfg.trace_sample > 0).then(|| Sampler {
                sink: Mutex::new(TraceSink::new()),
                every: cfg.trace_sample,
                ticks: AtomicU64::new(0),
            }),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::bounded::<Job>(state.queue_capacity);
        let (ret_tx, ret_rx) = mpsc::channel::<Conn>();
        let (wake_writer, wake_reader) = wake_pair()?;
        let io_timeout = Duration::from_secs(cfg.io_timeout_secs.max(1));

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let ret_tx = ret_tx.clone();
                let wake = wake_writer.try_clone().expect("clone wake socket");
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(rx, ret_tx, wake, state))
                    .expect("spawn worker thread")
            })
            .collect();
        drop(ret_tx);
        let events = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let knobs = LoopKnobs {
                max_conns: cfg.max_conns.max(1),
                idle_timeout: Duration::from_millis(cfg.idle_timeout_ms.max(1)),
                io_timeout,
            };
            std::thread::Builder::new()
                .name("serve-events".to_string())
                .spawn(move || {
                    event_loop(listener, tx, ret_rx, wake_reader, state, shutdown, knobs)
                })
                .expect("spawn event-loop thread")
        };

        Ok(Server {
            addr,
            state,
            shutdown,
            events: Some(events),
            workers: worker_handles,
        })
    }

    /// The bound address (the actual port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared gauges and cache, for tests and load harnesses.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Graceful stop: stop accepting, finish every queued and
    /// in-flight request, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(events) = self.events.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the loop out of its poll promptly; it re-checks the
        // flag every turn anyway (the wait is capped).
        let _ = TcpStream::connect(self.addr);
        let _ = events.join();
        // The loop dropped the job sender, so workers drain whatever
        // is queued and then see a disconnected channel.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl ServeState {
    /// The `/metrics` document for this instant.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.telemetry
            .snapshot(self.workers, self.queue_capacity, self.cache.stats())
    }
}

/// A loopback socket pair: workers write a byte to the writer to wake
/// the event loop's poll after pushing a returned connection. (The
/// portable stand-in for `pipe(2)`/eventfd — no extra binding needed.)
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let writer = TcpStream::connect(listener.local_addr()?)?;
    let (reader, _) = listener.accept()?;
    // Nonblocking on both ends: a full wake buffer just means the
    // loop has plenty of reasons to wake already.
    writer.set_nonblocking(true)?;
    reader.set_nonblocking(true)?;
    writer.set_nodelay(true)?;
    Ok((writer, reader))
}

/// The event loop's fixed knobs.
struct LoopKnobs {
    max_conns: usize,
    idle_timeout: Duration,
    io_timeout: Duration,
}

/// What one pump of a connection decided.
enum Pump {
    /// Nothing to do yet (waiting for bytes or socket writability).
    Keep,
    /// The connection is dead or finished; close it.
    Close,
    /// A full request parsed; dispatch connection + request.
    Dispatch(Box<Request>),
}

fn event_loop(
    listener: TcpListener,
    tx: Sender<Job>,
    ret_rx: mpsc::Receiver<Conn>,
    wake_reader: TcpStream,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    knobs: LoopKnobs,
) {
    listener
        .set_nonblocking(true)
        .expect("listener nonblocking");
    let mut poller = Poller::new();
    let mut conns: Vec<Conn> = Vec::new();
    let mut accepted: u64 = 0;
    let mut prep_memo = PrepMemoCache::new();
    // Reads stop at this buffer size; the kernel's TCP window takes
    // over as backpressure for clients that pipeline faster than the
    // service drains.
    let read_cap = state.max_body_bytes + http::MAX_HEAD_BYTES + 4096;

    while !shutdown.load(Ordering::SeqCst) {
        poller.clear();
        let listener_slot = poller.register(poll::listener_fd(&listener), true, false);
        let wake_slot = poller.register(poll::stream_fd(&wake_reader), true, false);
        let base = 2;
        let polled = conns.len();
        for conn in &conns {
            poller.register(poll::stream_fd(&conn.stream), true, conn.has_pending_out());
        }
        // Wake by the nearest idle deadline, capped so shutdown and
        // returned-connection checks never starve.
        let now = Instant::now();
        let mut timeout = Duration::from_millis(100);
        for conn in &conns {
            timeout = timeout
                .min((conn.last_activity + knobs.idle_timeout).saturating_duration_since(now));
        }
        if poller.wait(Some(timeout)).is_err() {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        let now = Instant::now();

        // Drain wake bytes (their only meaning is "check the return
        // queue", which we do unconditionally below).
        if poller.readable(wake_slot) {
            let mut bin = [0u8; 64];
            while matches!((&wake_reader).read(&mut bin), Ok(n) if n > 0) {}
        }

        // Returned keep-alive connections re-enter the poll set; they
        // are past `polled`, so they get pumped unconditionally this
        // turn — any pipelined leftover parses immediately.
        while let Ok(mut conn) = ret_rx.try_recv() {
            if conn.stream.set_nonblocking(true).is_err() {
                close_conn(conn, &state);
                continue;
            }
            conn.last_activity = now;
            conns.push(conn);
        }

        if poller.readable(listener_slot) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        // Timeouts only bind in blocking mode, i.e.
                        // the worker's response write.
                        let _ = stream.set_read_timeout(Some(knobs.io_timeout));
                        let _ = stream.set_write_timeout(Some(knobs.io_timeout));
                        state.telemetry.note_conn_opened();
                        let sampled = state
                            .sampler
                            .as_ref()
                            .is_some_and(|s| accepted.is_multiple_of(s.every));
                        accepted += 1;
                        let mut conn = Conn::new(stream, &state, sampled);
                        if conns.len() >= knobs.max_conns {
                            state.telemetry.record_rejected();
                            state.telemetry.record_response(503);
                            let body = error_object(
                                "server busy: connection limit reached, retry shortly",
                                &[("max_conns", Value::Int(knobs.max_conns as i64))],
                            );
                            conn.queue_response(503, &[("Retry-After", "1")], &body, false);
                        }
                        conns.push(conn);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // Pump back-to-front so swap_remove only disturbs indices we
        // have already visited; slots base+i stay aligned for i <
        // polled. Each connection may serve several requests per turn
        // (pipelined cache hits and loop-answered 503s never leave
        // the loop), bounded for fairness; a connection with a
        // complete request still buffered stays `ready` via its
        // non-empty buffer, so the cap never strands parsed bytes.
        const MAX_REQUESTS_PER_TURN: usize = 64;
        let mut i = conns.len();
        while i > 0 {
            i -= 1;
            let ready = i >= polled
                || !conns[i].buf.is_empty()
                || poller.readable(base + i)
                || (conns[i].has_pending_out() && poller.writable(base + i));
            if !ready {
                if now.saturating_duration_since(conns[i].last_activity) >= knobs.idle_timeout {
                    let conn = conns.swap_remove(i);
                    close_conn(conn, &state);
                }
                continue;
            }
            for _ in 0..MAX_REQUESTS_PER_TURN {
                match pump_conn(&mut conns[i], &state, now, read_cap) {
                    Pump::Keep => break,
                    Pump::Close => {
                        let conn = conns.swap_remove(i);
                        close_conn(conn, &state);
                        break;
                    }
                    Pump::Dispatch(request) => {
                        let load =
                            state.telemetry.queue_depth() as f64 / state.queue_capacity as f64;
                        if state.admission.should_reject(load) {
                            state.telemetry.record_rejected();
                            state.telemetry.record_response(503);
                            let keep = request.keep_alive;
                            let body = error_object(
                                "server busy: past the hard admission watermark, retry shortly",
                                &[("queue_capacity", Value::Int(state.queue_capacity as i64))],
                            );
                            conns[i].queue_response(503, &[("Retry-After", "1")], &body, keep);
                            continue;
                        }
                        // Cache hits (the hot path by construction —
                        // the cache exists because traffic repeats)
                        // are answered right here; only work that
                        // needs a solver costs a queue slot and a
                        // worker wakeup.
                        let t0 = Instant::now();
                        if let Some(reply) = try_inline_hit(&request, &state, load, &mut prep_memo)
                        {
                            state.telemetry.record_response(reply.status);
                            state.telemetry.record_service(t0.elapsed());
                            state.telemetry.record_latency(t0.elapsed());
                            let mut extra: Vec<(&str, &str)> = Vec::new();
                            if let Some(marker) = reply.cache_marker {
                                extra.push(("X-Fragalign-Cache", marker));
                            }
                            if let Some(tier) = reply.degraded {
                                extra.push(("X-Fragalign-Degraded", tier));
                            }
                            conns[i].queue_response(
                                reply.status,
                                &extra,
                                &reply.body,
                                request.keep_alive,
                            );
                            continue;
                        }
                        state.telemetry.note_queued();
                        let conn = conns.swap_remove(i);
                        match tx.try_send(Job {
                            conn,
                            request: *request,
                            load,
                            enqueued: Instant::now(),
                        }) {
                            Ok(()) => {}
                            Err(TrySendError::Full(job)) => {
                                state.telemetry.note_dequeued();
                                state.telemetry.record_rejected();
                                state.telemetry.record_response(503);
                                let mut conn = job.conn;
                                let keep = job.request.keep_alive;
                                let body = error_object(
                                    "server busy: worker queue is full, retry shortly",
                                    &[("queue_capacity", Value::Int(state.queue_capacity as i64))],
                                );
                                conn.queue_response(503, &[("Retry-After", "1")], &body, keep);
                                conns.push(conn);
                            }
                            Err(TrySendError::Disconnected(job)) => {
                                close_conn(job.conn, &state);
                                return;
                            }
                        }
                        break;
                    }
                }
            }
        }
    }
    // Dropping `tx` lets the workers drain and exit; dropping the
    // conns vec closes every remaining socket.
    for conn in conns.drain(..) {
        close_conn(conn, &state);
    }
}

/// Flush, read, and parse one connection as far as nonblocking I/O
/// allows. At most one request is dispatched per pump — in-order
/// pipelining falls out of the connection travelling with its request
/// and only rejoining the loop after the response is written.
fn pump_conn(conn: &mut Conn, state: &ServeState, now: Instant, read_cap: usize) -> Pump {
    // Phase 1: drain the loop's own pending output.
    while conn.has_pending_out() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Pump::Close,
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = now;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Pump::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Pump::Close,
        }
    }
    if !conn.out.is_empty() {
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_write {
            return Pump::Close;
        }
    }

    // Phase 2: read whatever has arrived.
    let mut peer_eof = false;
    loop {
        if conn.buf.len() >= read_cap {
            break;
        }
        let mut chunk = [0u8; 16 * 1024];
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                peer_eof = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = now;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Pump::Close,
        }
    }

    // Phase 3: try to produce one request.
    match http::try_parse(&conn.buf, state.max_body_bytes) {
        Ok(Parse::Ready {
            mut request,
            consumed,
        }) => {
            conn.buf.drain(..consumed);
            conn.served += 1;
            if conn.served >= 2 {
                state.telemetry.record_keepalive_reuse();
            }
            if peer_eof {
                // The client half-closed after sending; answer, then
                // close — there is no next request.
                request.keep_alive = false;
            }
            if request.expect_continue && !conn.sent_continue {
                // The interim 100 precedes the final response; the
                // worker flushes `out` before writing its reply.
                conn.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
            }
            conn.sent_continue = false;
            Pump::Dispatch(Box::new(request))
        }
        Ok(Parse::Incomplete { needs_continue }) => {
            if peer_eof {
                // Torn request: nobody left to answer.
                return Pump::Close;
            }
            if needs_continue && !conn.sent_continue && conn.out.is_empty() {
                conn.out.extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                conn.sent_continue = true;
            }
            Pump::Keep
        }
        Err(err) => {
            let (status, body) = match err {
                RequestError::Io(_) => return Pump::Close,
                RequestError::Malformed(msg) => (400, error_object(&msg, &[])),
                RequestError::Unimplemented(msg) => (501, error_object(&msg, &[])),
                RequestError::BodyTooLarge { limit } => (
                    413,
                    error_object(&format!("request body exceeds the {limit}-byte limit"), &[]),
                ),
            };
            state.telemetry.record_response(status);
            // After a framing error the byte stream can no longer be
            // trusted to delimit requests: answer and close.
            conn.queue_response(status, &[], &body, false);
            Pump::Keep
        }
    }
}

/// Close a connection, emitting its lifetime instant into the sampled
/// sink when this connection drew the sampling ticket.
fn close_conn(conn: Conn, state: &ServeState) {
    if conn.sampled {
        if let Some(sampler) = &state.sampler {
            TraceHandle::new(sampler.current()).instant(
                "connection",
                "closed",
                conn.served as i64,
                conn.born.elapsed().as_micros() as i64,
            );
        }
    }
    // Dropping `conn` closes the socket and decrements the gauge.
}

fn worker_loop(
    rx: Receiver<Job>,
    ret_tx: mpsc::Sender<Conn>,
    wake: TcpStream,
    state: Arc<ServeState>,
) {
    let mut ws = DpWorkspace::new();
    while let Ok(mut job) = rx.recv() {
        state.telemetry.note_dequeued();
        state.telemetry.note_busy(true);
        // Queue wait ends here; everything after is service time. Total
        // latency (wait + service) stays in the original histogram so
        // existing p99 numbers keep their meaning.
        state.telemetry.record_queue_wait(job.enqueued.elapsed());
        let service_started = Instant::now();
        // Blocking mode for the response write; the socket timeouts
        // set at accept bound how long a stalled client costs.
        let _ = job.conn.stream.set_nonblocking(false);
        // Contain panics: a request that trips a solver bug must cost
        // that request a 500, not the pool a worker (N such requests
        // would otherwise silently wedge the whole service).
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_request(&mut job, &state, &mut ws)
        }));
        let keep = match outcome {
            Ok(keep) => keep,
            Err(_) => {
                state.telemetry.record_response(500);
                let _ = http::write_response(
                    &mut job.conn.stream,
                    500,
                    &[],
                    &error_object("internal error: request handler panicked", &[]),
                );
                // The unwound handler may have left the scratch
                // workspace mid-surgery; replace it rather than trust
                // it.
                ws = DpWorkspace::new();
                false
            }
        };
        state.telemetry.record_service(service_started.elapsed());
        state.telemetry.record_latency(job.enqueued.elapsed());
        state.telemetry.note_busy(false);
        if keep {
            if ret_tx.send(job.conn).is_ok() {
                // One byte wakes the loop's poll; WouldBlock means it
                // is drowning in wakeups already.
                let _ = (&wake).write(&[1]);
            }
        } else {
            close_conn(job.conn, &state);
        }
    }
}

/// Route one parsed request and write the response. Returns whether
/// the connection survives (keep-alive and the write succeeded).
/// Socket errors are swallowed — the client is gone and there is
/// nobody to tell.
fn handle_request(job: &mut Job, state: &ServeState, ws: &mut DpWorkspace) -> bool {
    // Any interim 100 the loop queued goes out first.
    if job.conn.has_pending_out() {
        let pending = job.conn.out[job.conn.out_pos..].to_vec();
        if job.conn.stream.write_all(&pending).is_err() {
            return false;
        }
        job.conn.out.clear();
        job.conn.out_pos = 0;
    }
    let reply = route(&job.request, state, ws, job.load);
    state.telemetry.record_response(reply.status);
    let mut extra: Vec<(&str, &str)> = Vec::new();
    if let Some(marker) = reply.cache_marker {
        extra.push(("X-Fragalign-Cache", marker));
    }
    if let Some(tier) = reply.degraded {
        extra.push(("X-Fragalign-Degraded", tier));
    }
    let keep_alive = job.request.keep_alive;
    let wrote = http::write_response_conn(
        &mut job.conn.stream,
        reply.status,
        reply.content_type,
        &extra,
        &reply.body,
        keep_alive,
    )
    .is_ok();
    wrote && keep_alive
}

/// A routed response: status, body, content type, and for `/v1/solve`
/// whether the cache answered and whether admission degraded it.
struct Reply {
    status: u16,
    body: String,
    content_type: &'static str,
    cache_marker: Option<&'static str>,
    degraded: Option<&'static str>,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            body,
            content_type: "application/json",
            cache_marker: None,
            degraded: None,
        }
    }

    fn error(status: u16, message: &str) -> Reply {
        Reply::json(status, error_object(message, &[]))
    }
}

fn route(request: &Request, state: &ServeState, ws: &mut DpWorkspace, load: f64) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(state),
        ("GET", "/metrics") => handle_metrics(request, state),
        ("GET", "/v1/solvers") => handle_solvers(),
        ("GET", "/debug/trace") => handle_debug_trace(state),
        ("POST", "/v1/solve") => handle_solve(request, state, ws, load),
        ("POST", "/v1/batch") => handle_batch(request, state),
        (_, "/healthz" | "/metrics" | "/v1/solvers" | "/debug/trace") => {
            Reply::error(405, "use GET on this endpoint")
        }
        (_, "/v1/solve" | "/v1/batch") => Reply::error(405, "use POST on this endpoint"),
        _ => Reply::json(
            404,
            error_object(
                &format!("no such endpoint {:?}", request.path),
                &[(
                    "endpoints",
                    Value::Array(
                        [
                            "POST /v1/solve",
                            "POST /v1/batch",
                            "GET /v1/solvers",
                            "GET /healthz",
                            "GET /metrics",
                            "GET /debug/trace",
                        ]
                        .iter()
                        .map(|e| Value::Str((*e).to_string()))
                        .collect(),
                    ),
                )],
            ),
        ),
    }
}

fn handle_healthz(state: &ServeState) -> Reply {
    let body = Value::Object(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        (
            "uptime_secs".to_string(),
            Value::Float(state.metrics().uptime_secs),
        ),
    ]);
    Reply::json(
        200,
        serde_json::to_string(&body).expect("healthz serialises"),
    )
}

fn handle_metrics(request: &Request, state: &ServeState) -> Reply {
    match request.param("format") {
        // Prometheus text exposition 0.0.4, for scrape targets; the
        // JSON document stays the default for humans and tests.
        Some("prometheus") => Reply {
            status: 200,
            body: state.telemetry.prometheus(
                state.workers,
                state.queue_capacity,
                state.cache.stats(),
            ),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            cache_marker: None,
            degraded: None,
        },
        Some(other) => Reply::error(400, &format!("unknown format {other:?} (try prometheus)")),
        None => Reply::json(
            200,
            serde_json::to_string_pretty(&state.metrics()).expect("metrics serialises"),
        ),
    }
}

/// Drain the 1-in-N sampled sink as a Chrome trace document.
fn handle_debug_trace(state: &ServeState) -> Reply {
    match &state.sampler {
        None => Reply::error(
            400,
            "trace sampling is disabled (start the server with --trace-sample N)",
        ),
        Some(sampler) => {
            let log = sampler.rotate().drain();
            Reply::json(200, log.to_chrome_json())
        }
    }
}

/// One `/v1/solvers` row, straight from the registry.
#[derive(Serialize)]
struct SolverRow {
    name: String,
    paper: String,
    ratio: String,
    in_portfolio: bool,
}

fn handle_solvers() -> Reply {
    let rows: Vec<SolverRow> = SolverRegistry::global()
        .specs()
        .iter()
        .map(|s| SolverRow {
            name: s.name.to_string(),
            paper: s.paper.to_string(),
            ratio: s.ratio.to_string(),
            in_portfolio: s.in_portfolio,
        })
        .collect();
    Reply::json(
        200,
        serde_json::to_string_pretty(&rows).expect("solver rows serialise"),
    )
}

/// The `/v1/solve` success body.
#[derive(Serialize)]
struct SolveResponse {
    solver: String,
    score: Score,
    matches: MatchSet,
    report: SolveReport,
}

/// Everything `/v1/solve` resolves before touching the cache or a
/// worker: the decoded instance, the admission-resolved solver, and
/// the canonical cache key. Side-effect free (no telemetry), so the
/// event loop can run it speculatively for the inline hit path and
/// the worker can run it again on a miss without double-counting.
struct SolvePrep {
    inst: Instance,
    engine: EngineOptions,
    solver: String,
    position: usize,
    degraded: Option<&'static str>,
    key: cache::Fingerprint,
    /// The solver the client asked for (pre-admission), plus the key
    /// ingredients — kept so the event loop can memoise the expensive
    /// parse work by raw body (see [`PrepMemo`]).
    requested: String,
    requested_position: usize,
    options_tag: String,
    canonical: String,
}

fn prepare_solve(
    request: &Request,
    state: &ServeState,
    load: f64,
) -> Result<SolvePrep, ParseRejection> {
    let parsed = parse_solve_request(&request.body, state, &["instance"])?;
    let inst_value = parsed
        .doc
        .get("instance")
        .expect("checked by parse_solve_request");
    let inst = match decode_instance(inst_value) {
        Ok(inst) => inst,
        Err(msg) => return Err(Reply::error(400, &msg).into()),
    };
    // Admission control: above the degrade watermark, big instances
    // run a cheap tier instead of what they asked for. The substitute
    // solver flows through everything downstream — per-solver
    // counters, the cache key, the response's `solver` field — so a
    // degraded response is indistinguishable from having asked for
    // the cheap tier, except for the X-Fragalign-Degraded header.
    let decision = state.admission.decide(
        load,
        &InstanceFeatures::of(&inst),
        inst.score_upper_bound(),
        &parsed.solver,
    );
    let (solver, position, degraded) = match decision {
        AdmissionDecision::Admit => (parsed.solver.clone(), parsed.position, None),
        AdmissionDecision::Degrade(tier) => {
            let position = SolverRegistry::global()
                .position(tier)
                .expect("degraded tiers are registered");
            (tier.to_string(), position, Some(tier))
        }
    };
    // Canonicalise through the parsed instance so client formatting
    // (whitespace, pretty-printing) cannot split cache entries.
    let canonical = serde_json::to_string(&inst).expect("instances serialise");
    let tag = options_tag(&parsed.engine);
    let key = cache::fingerprint(&format!("{solver}\n{tag}\n{canonical}"));
    Ok(SolvePrep {
        inst,
        engine: parsed.engine,
        solver,
        position,
        degraded,
        key,
        requested: parsed.solver,
        requested_position: parsed.position,
        options_tag: tag,
        canonical,
    })
}

/// The load-independent fruits of preparing one `/v1/solve` body,
/// memoised by the event loop keyed on the raw body's fingerprint.
/// Repeat bodies — the cache-hit hot path by construction — skip the
/// JSON decode, instance validation, and canonical re-serialisation
/// that otherwise dominate a hit's service time. Admission stays
/// load-dependent, so only its per-body inputs (shape features, score
/// bound, requested solver) are stored and the decision itself is
/// re-run on every request; both possible cache keys are precomputed
/// because the degraded tier is a pure function of the features.
struct PrepMemo {
    features: InstanceFeatures,
    bound: Score,
    /// The solver the client asked for (the admission decision input).
    solver: String,
    position: usize,
    /// Cache key when admitted as requested.
    admit_key: cache::Fingerprint,
    /// `(tier, registry position, cache key)` when degradable at all;
    /// `None` for bodies no load level would ever degrade.
    degrade: Option<(&'static str, usize, cache::Fingerprint)>,
}

impl PrepMemo {
    fn of(state: &ServeState, prep: &SolvePrep) -> Self {
        let features = InstanceFeatures::of(&prep.inst);
        let bound = prep.inst.score_upper_bound();
        let admit_key = cache::fingerprint(&format!(
            "{}\n{}\n{}",
            prep.requested, prep.options_tag, prep.canonical
        ));
        // Whether this body can ever degrade — and to which tier — is
        // load-independent; probing the policy at infinite load
        // extracts it once.
        let degrade = match state
            .admission
            .decide(f64::INFINITY, &features, bound, &prep.requested)
        {
            AdmissionDecision::Admit => None,
            AdmissionDecision::Degrade(tier) => {
                let position = SolverRegistry::global()
                    .position(tier)
                    .expect("degraded tiers are registered");
                let key = cache::fingerprint(&format!(
                    "{tier}\n{}\n{}",
                    prep.options_tag, prep.canonical
                ));
                Some((tier, position, key))
            }
        };
        PrepMemo {
            features,
            bound,
            solver: prep.requested.clone(),
            position: prep.requested_position,
            admit_key,
            degrade,
        }
    }
}

/// Cap on memoised bodies; past it the memo is cleared wholesale —
/// entries are cheap to rebuild and the hot set is tiny, so tracking
/// recency would cost more than the occasional cold restart.
const PREP_MEMO_CAP: usize = 4096;

/// The event loop's single-threaded body→prep memo (no locks — only
/// the loop thread touches it).
struct PrepMemoCache {
    map: HashMap<cache::Fingerprint, PrepMemo>,
}

impl PrepMemoCache {
    fn new() -> Self {
        PrepMemoCache {
            map: HashMap::new(),
        }
    }

    fn insert(&mut self, key: cache::Fingerprint, memo: PrepMemo) {
        if self.map.len() >= PREP_MEMO_CAP {
            self.map.clear();
        }
        self.map.insert(key, memo);
    }
}

/// The event loop's speculative fast path: answer a plain `/v1/solve`
/// cache hit without occupying a worker. Returns `None` for anything
/// that needs one — a miss, a traced request, or a body that fails
/// validation (the worker re-runs the parse and owns the error reply
/// and its telemetry). A served hit records the same counters the
/// worker's hit path would. Known bodies resolve through `memo`
/// without touching JSON at all.
fn try_inline_hit(
    request: &Request,
    state: &ServeState,
    load: f64,
    memo: &mut PrepMemoCache,
) -> Option<Reply> {
    if request.method != "POST"
        || request.path != "/v1/solve"
        || request.param("trace") == Some("1")
    {
        return None;
    }
    let raw = cache::fingerprint(&request.body);
    let (position, degraded, key) = match memo.map.get(&raw) {
        Some(m) => match state
            .admission
            .decide(load, &m.features, m.bound, &m.solver)
        {
            AdmissionDecision::Admit => (m.position, None, m.admit_key),
            AdmissionDecision::Degrade(tier) => {
                let (memo_tier, position, key) = m.degrade?;
                if memo_tier != tier {
                    // The policy disagreed with the memo (cannot
                    // happen while the config is fixed; be safe and
                    // let the worker re-derive everything).
                    return None;
                }
                (position, Some(tier), key)
            }
        },
        None => {
            let prep = prepare_solve(request, state, load).ok()?;
            let entry = PrepMemo::of(state, &prep);
            memo.insert(raw, entry);
            (prep.position, prep.degraded, prep.key)
        }
    };
    let body = state.cache.peek(key)?;
    if degraded.is_some() {
        state.telemetry.record_degraded();
    }
    state.telemetry.record_solve(position);
    Some(Reply {
        status: 200,
        body: body.to_string(),
        content_type: "application/json",
        cache_marker: Some("hit"),
        degraded,
    })
}

fn handle_solve(request: &Request, state: &ServeState, ws: &mut DpWorkspace, load: f64) -> Reply {
    let prep = match prepare_solve(request, state, load) {
        Ok(p) => p,
        Err(rejection) => {
            if rejection.unknown_solver {
                state.telemetry.record_unknown_solver();
            }
            return rejection.reply;
        }
    };
    let SolvePrep {
        inst,
        engine,
        solver,
        position,
        degraded,
        key,
        ..
    } = prep;
    if degraded.is_some() {
        state.telemetry.record_degraded();
    }
    // Count only fully-validated solve traffic, so `/metrics` per-
    // solver numbers mean "solves this solver was actually asked to
    // run", not "bodies that mentioned its name".
    state.telemetry.record_solve(position);

    // `?trace=1` turns on span recording for this one request. Traced
    // responses embed a timeline, so they bypass the cache in both
    // directions: a cached plain body has no trace to return, and a
    // traced body must not be served to plain requests.
    let traced = request.param("trace") == Some("1");
    if !traced {
        if let Some(body) = state.cache.get(key) {
            return Reply {
                status: 200,
                body: body.to_string(),
                content_type: "application/json",
                cache_marker: Some("hit"),
                degraded,
            };
        }
    }
    let opts = BatchOptions {
        solver: solver.clone(),
        engine,
    };
    let sink = traced.then(TraceSink::new);
    // The 1-in-N sampler ticks on actual solves (cache hits have no
    // spans to record). A sampled solve records into the shared sink
    // served at /debug/trace; tracing is inert on results, so the
    // body is still cached as usual.
    let sampled = !traced && state.sampler.as_ref().is_some_and(|s| s.fires());
    let trace = match (&sink, &state.sampler) {
        (Some(s), _) => TraceHandle::new(Arc::clone(s)),
        (None, Some(sampler)) if sampled => TraceHandle::new(sampler.current()),
        _ => TraceHandle::disabled(),
    };
    if sampled {
        state.telemetry.record_sampled();
    }
    let solve_started = Instant::now();
    match solve_single_traced(&inst, &opts, ws, trace) {
        Ok((solution, report)) => {
            state
                .telemetry
                .record_solve_latency(position, solve_started.elapsed());
            let mut body = serde_json::to_string(&SolveResponse {
                solver,
                score: solution.score,
                matches: solution.matches,
                report,
            })
            .expect("solve response serialises");
            match sink {
                None => {
                    state.cache.insert(key, Arc::from(body.as_str()));
                    Reply {
                        status: 200,
                        body,
                        content_type: "application/json",
                        cache_marker: Some("miss"),
                        degraded,
                    }
                }
                Some(sink) => {
                    // Splice the Chrome trace document into the
                    // response object: `{...}` → `{...,"trace":{...}}`.
                    let log = sink.drain();
                    state.telemetry.record_traced(log.dropped);
                    body.pop();
                    body.push_str(",\"trace\":");
                    body.push_str(&log.to_chrome_json());
                    body.push('}');
                    Reply {
                        status: 200,
                        body,
                        content_type: "application/json",
                        cache_marker: Some("bypass"),
                        degraded,
                    }
                }
            }
        }
        Err(err) => engine_error_reply(err),
    }
}

/// The `/v1/batch` success body: one entry per instance, input order.
#[derive(Serialize)]
struct BatchResponse {
    solver: String,
    instances: usize,
    total_score: Score,
    results: Vec<BatchItem>,
}

/// One solved instance of a `/v1/batch` request.
#[derive(Serialize)]
struct BatchItem {
    score: Score,
    matches: MatchSet,
    report: SolveReport,
}

fn handle_batch(request: &Request, state: &ServeState) -> Reply {
    state.telemetry.record_batch();
    let parsed = match parse_solve_request(&request.body, state, &["instances"]) {
        Ok(p) => p,
        Err(rejection) => return rejection.reply,
    };
    let Some(list) = parsed.doc.get("instances").and_then(Value::as_array) else {
        return Reply::error(400, "field \"instances\" must be an array of instances");
    };
    let mut instances = Vec::with_capacity(list.len());
    for (i, value) in list.iter().enumerate() {
        match decode_instance(value) {
            Ok(inst) => instances.push(inst),
            Err(msg) => return Reply::error(400, &format!("instances[{i}]: {msg}")),
        }
    }
    let opts = BatchOptions {
        solver: parsed.solver.clone(),
        engine: parsed.engine,
    };
    // `core::batch` does the mapping: per-worker workspaces under the
    // rayon shim today, real data parallelism once the shim swap
    // lands — the service inherits it either way.
    match fragalign_core::solve_batch_reports(&instances, &opts) {
        Ok(results) => {
            let body = BatchResponse {
                solver: parsed.solver,
                instances: results.len(),
                total_score: results.iter().map(|(s, _)| s.score).sum(),
                results: results
                    .into_iter()
                    .map(|(solution, report)| BatchItem {
                        score: solution.score,
                        matches: solution.matches,
                        report,
                    })
                    .collect(),
            };
            Reply::json(200, serde_json::to_string(&body).expect("batch serialises"))
        }
        Err(err) => engine_error_reply(err),
    }
}

/// The fields shared by `/v1/solve` and `/v1/batch` bodies, already
/// validated: the parsed document, the resolved solver name, and the
/// engine options.
struct ParsedSolveRequest {
    doc: Value,
    solver: String,
    /// The solver's registry position, for per-solver counters.
    position: usize,
    engine: EngineOptions,
}

/// Why a solve-shaped body was refused: the response to send, plus
/// whether the cause was an unregistered solver name (so `/v1/solve`
/// can count those separately without re-parsing the reply).
struct ParseRejection {
    reply: Reply,
    unknown_solver: bool,
}

impl From<Reply> for ParseRejection {
    fn from(reply: Reply) -> Self {
        ParseRejection {
            reply,
            unknown_solver: false,
        }
    }
}

/// Parse and validate a solve-shaped request body: JSON object, no
/// unknown top-level keys, a registered solver (else the friendly
/// 400), well-formed options. `payload_key` is the endpoint's
/// instance-carrying field. Pure parsing — telemetry is the caller's
/// business, so `/v1/batch` traffic never leaks into `/v1/solve`
/// counters.
fn parse_solve_request(
    body: &str,
    state: &ServeState,
    payload_key: &[&str],
) -> Result<ParsedSolveRequest, ParseRejection> {
    let doc: Value = serde_json::from_str(body)
        .map_err(|e| Reply::error(400, &format!("request body is not valid JSON: {e}")))?;
    let Some(fields) = doc.as_object() else {
        return Err(Reply::error(400, "request body must be a JSON object").into());
    };
    for (key, _) in fields {
        if key != "solver" && key != "options" && !payload_key.contains(&key.as_str()) {
            return Err(Reply::error(
                400,
                &format!(
                    "unknown field {key:?} (allowed: {}, solver, options)",
                    payload_key.join(", ")
                ),
            )
            .into());
        }
    }
    for required in payload_key {
        if doc.get(required).is_none() {
            return Err(Reply::error(400, &format!("missing required field {required:?}")).into());
        }
    }
    let solver = match doc.get("solver") {
        None => state.default_solver.clone(),
        Some(Value::Str(s)) => s.clone(),
        Some(_) => return Err(Reply::error(400, "field \"solver\" must be a string").into()),
    };
    if let Err(err) = SolverRegistry::global().spec(&solver) {
        return Err(ParseRejection {
            reply: engine_error_reply(err),
            unknown_solver: true,
        });
    }
    let position = SolverRegistry::global()
        .position(&solver)
        .expect("solver resolved above");
    let engine = match doc.get("options") {
        None => EngineOptions::default(),
        Some(v) => engine_options_from(v).map_err(|msg| Reply::error(400, &msg))?,
    };
    Ok(ParsedSolveRequest {
        doc,
        solver,
        position,
        engine,
    })
}

/// Decode, re-index, and validate one instance value.
fn decode_instance(value: &Value) -> Result<Instance, String> {
    let mut inst: Instance =
        serde_json::from_value(value.clone()).map_err(|e| format!("bad instance: {e}"))?;
    inst.alphabet.rebuild_index();
    inst.validate()
        .map_err(|e| format!("invalid instance: {e}"))?;
    Ok(inst)
}

/// Strict `options` object → [`EngineOptions`]; every field optional,
/// unknown fields rejected so typos fail loudly instead of silently
/// keeping a default.
fn engine_options_from(value: &Value) -> Result<EngineOptions, String> {
    let Some(fields) = value.as_object() else {
        return Err("field \"options\" must be an object".to_string());
    };
    let mut opts = EngineOptions::default();
    for (key, val) in fields {
        match key.as_str() {
            "scaling" => opts.scaling = expect_bool(val, "options.scaling")?,
            "reuse_workspaces" => {
                opts.reuse_workspaces = expect_bool(val, "options.reuse_workspaces")?
            }
            "exact_limits" => {
                let Some(limits) = val.as_object() else {
                    return Err("options.exact_limits must be an object".to_string());
                };
                for (lkey, lval) in limits {
                    match lkey.as_str() {
                        "max_frags" => {
                            opts.exact_limits.max_frags =
                                expect_usize(lval, "options.exact_limits.max_frags")?
                        }
                        "max_regions" => {
                            opts.exact_limits.max_regions =
                                expect_usize(lval, "options.exact_limits.max_regions")?
                        }
                        other => {
                            return Err(format!(
                                "unknown field options.exact_limits.{other} (allowed: max_frags, max_regions)"
                            ))
                        }
                    }
                }
            }
            other => {
                return Err(format!(
                "unknown field options.{other} (allowed: scaling, reuse_workspaces, exact_limits)"
            ))
            }
        }
    }
    Ok(opts)
}

fn expect_bool(value: &Value, what: &str) -> Result<bool, String> {
    match value {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("{what} must be a boolean")),
    }
}

fn expect_usize(value: &Value, what: &str) -> Result<usize, String> {
    match value {
        Value::Int(i) if *i >= 0 => Ok(*i as usize),
        _ => Err(format!("{what} must be a non-negative integer")),
    }
}

/// The options part of the cache key. `reuse_workspaces` never
/// changes scores, but it does change the telemetry embedded in the
/// cached body, so it participates.
fn options_tag(opts: &EngineOptions) -> String {
    format!(
        "scaling={} reuse={} max_frags={} max_regions={}",
        opts.scaling,
        opts.reuse_workspaces,
        opts.exact_limits.max_frags,
        opts.exact_limits.max_regions
    )
}

/// Engine refusals as HTTP errors: unknown solver → 400 listing every
/// registered name (plus a did-you-mean hint when one is close);
/// solver/instance mismatch → 400 with the solver's explanation.
fn engine_error_reply(err: EngineError) -> Reply {
    match &err {
        EngineError::UnknownSolver {
            known, suggestion, ..
        } => {
            let mut extra = vec![(
                "known",
                Value::Array(known.iter().map(|n| Value::Str((*n).to_string())).collect()),
            )];
            if let Some(s) = suggestion {
                extra.push(("suggestion", Value::Str((*s).to_string())));
            }
            Reply::json(400, error_object(&err.to_string(), &extra))
        }
        EngineError::Unsupported { .. } => Reply::error(400, &err.to_string()),
    }
}

/// `{"error": message, ...extra}` as compact JSON.
fn error_object(message: &str, extra: &[(&str, Value)]) -> String {
    let mut fields = vec![("error".to_string(), Value::Str(message.to_string()))];
    for (key, value) in extra {
        fields.push(((*key).to_string(), value.clone()));
    }
    serde_json::to_string(&Value::Object(fields)).expect("error body serialises")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use fragalign_model::instance::paper_example;

    fn test_server() -> Server {
        Server::start(ServeConfig {
            workers: 2,
            queue_depth: 8,
            ..ServeConfig::default()
        })
        .expect("server starts")
    }

    #[test]
    fn healthz_and_metrics_roundtrip() {
        let server = test_server();
        let health = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"status\":\"ok\""));
        let metrics = client::get(server.addr(), "/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        for field in [
            "uptime_secs",
            "solve_requests",
            "p99_ms",
            "hit_rate",
            "connections_accepted",
            "keepalive_reuse",
            "admission_degraded",
        ] {
            assert!(metrics.body.contains(field), "missing {field}");
        }
        server.shutdown();
    }

    #[test]
    fn solvers_listing_matches_registry() {
        let server = test_server();
        let resp = client::get(server.addr(), "/v1/solvers").unwrap();
        assert_eq!(resp.status, 200);
        for name in SolverRegistry::global().names() {
            assert!(
                resp.body.contains(&format!("\"name\": \"{name}\"")),
                "{name}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn solve_caches_and_solves() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instance\":{inst},\"solver\":\"csr\"}}");
        let first = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(first.status, 200, "{}", first.body);
        assert_eq!(first.header("x-fragalign-cache"), Some("miss"));
        assert!(first.body.contains("\"score\":11"), "{}", first.body);
        let second = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(second.header("x-fragalign-cache"), Some("hit"));
        assert_eq!(first.body, second.body);
        let stats = server.state().cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        server.shutdown();
    }

    #[test]
    fn prometheus_metrics_format() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instance\":{inst},\"solver\":\"greedy\"}}");
        let solved = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(solved.status, 200, "{}", solved.body);
        let resp = client::get(server.addr(), "/metrics?format=prometheus").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.header("content-type"),
            Some("text/plain; version=0.0.4; charset=utf-8")
        );
        for needle in [
            "# TYPE fragalign_requests_total counter",
            "fragalign_solve_requests_total{solver=\"greedy\"} 1",
            "fragalign_solve_duration_seconds_bucket{solver=\"greedy\",le=\"+Inf\"} 1",
            "fragalign_queue_wait_seconds_count 2",
            "fragalign_service_seconds_count 1",
            "fragalign_cache_evictions_total 0",
            "fragalign_trace_events_dropped_total 0",
            "fragalign_connections_accepted_total 2",
            "# TYPE fragalign_connections_open gauge",
            "fragalign_admission_degraded_total 0",
        ] {
            assert!(
                resp.body.contains(needle),
                "missing {needle}\n{}",
                resp.body
            );
        }
        let bad = client::get(server.addr(), "/metrics?format=xml").unwrap();
        assert_eq!(bad.status, 400);
        server.shutdown();
    }

    #[test]
    fn traced_solve_embeds_timeline_and_bypasses_cache() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instance\":{inst},\"solver\":\"csr\"}}");
        // Warm the cache with a plain solve, then trace the same
        // request: the traced reply must not be the cached body.
        let plain = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(plain.header("x-fragalign-cache"), Some("miss"));
        let traced = client::post(server.addr(), "/v1/solve?trace=1", &body).unwrap();
        assert_eq!(traced.status, 200, "{}", traced.body);
        assert_eq!(traced.header("x-fragalign-cache"), Some("bypass"));
        assert!(traced.body.contains("\"trace\":{"), "{}", traced.body);
        assert!(
            traced.body.contains("\"name\":\"solve:csr\""),
            "{}",
            traced.body
        );
        // Identical solve result, tracing aside.
        let score = |b: &str| {
            b.split("\"score\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .map(str::to_string)
        };
        assert_eq!(score(&plain.body), score(&traced.body));
        // A traced body never lands in the cache: the next plain
        // request is still answered by the original cached entry.
        let again = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(again.header("x-fragalign-cache"), Some("hit"));
        assert_eq!(again.body, plain.body);
        assert_eq!(server.state().metrics().traced_requests, 1);
        server.shutdown();
    }

    #[test]
    fn sampled_tracing_records_and_drains_at_debug_trace() {
        let server = Server::start(ServeConfig {
            workers: 2,
            queue_depth: 8,
            trace_sample: 1,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instance\":{inst},\"solver\":\"csr\"}}");
        // A sampled solve still caches and returns a plain body.
        let first = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(first.status, 200, "{}", first.body);
        assert_eq!(first.header("x-fragalign-cache"), Some("miss"));
        assert!(!first.body.contains("\"trace\":{"), "{}", first.body);
        assert_eq!(server.state().metrics().sampled_traces, 1);
        // A cache hit does not tick the sampler (nothing solved).
        let hit = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(hit.header("x-fragalign-cache"), Some("hit"));
        assert_eq!(hit.body, first.body);
        assert_eq!(server.state().metrics().sampled_traces, 1);
        // The sampled spans drain as a Chrome trace document.
        let trace = client::get(server.addr(), "/debug/trace").unwrap();
        assert_eq!(trace.status, 200);
        assert!(
            trace.body.contains("\"name\":\"solve:csr\""),
            "{}",
            trace.body
        );
        // Draining empties the sink.
        let empty = client::get(server.addr(), "/debug/trace").unwrap();
        assert!(!empty.body.contains("solve:csr"), "{}", empty.body);
        server.shutdown();
    }

    #[test]
    fn debug_trace_is_a_400_when_sampling_is_off() {
        let server = test_server();
        let resp = client::get(server.addr(), "/debug/trace").unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("--trace-sample"), "{}", resp.body);
        server.shutdown();
    }

    #[test]
    fn rejects_unknown_fields_and_bad_options() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        for (body, needle) in [
            ("{]".to_string(), "not valid JSON"),
            ("[]".to_string(), "must be a JSON object"),
            ("{}".to_string(), "missing required field"),
            (
                format!("{{\"instance\":{inst},\"solvr\":\"csr\"}}"),
                "unknown field \\\"solvr\\\"",
            ),
            (
                format!("{{\"instance\":{inst},\"options\":{{\"scaling\":3}}}}"),
                "options.scaling must be a boolean",
            ),
            (
                format!("{{\"instance\":{inst},\"options\":{{\"sclaing\":true}}}}"),
                "unknown field options.sclaing",
            ),
        ] {
            let resp = client::post(server.addr(), "/v1/solve", &body).unwrap();
            assert_eq!(resp.status, 400, "{body} → {}", resp.body);
            assert!(resp.body.contains(needle), "{body} → {}", resp.body);
        }
        server.shutdown();
    }

    #[test]
    fn unknown_solver_is_a_friendly_400() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instance\":{inst},\"solver\":\"greddy\"}}");
        let resp = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"known\""), "{}", resp.body);
        assert!(
            resp.body.contains("\"suggestion\":\"greedy\""),
            "{}",
            resp.body
        );
        assert_eq!(server.state().metrics().unknown_solver_requests, 1);
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_mapped() {
        let server = test_server();
        let resp = client::get(server.addr(), "/nope").unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("endpoints"));
        let resp = client::post(server.addr(), "/healthz", "{}").unwrap();
        assert_eq!(resp.status, 405);
        let resp = client::get(server.addr(), "/v1/solve").unwrap();
        assert_eq!(resp.status, 405);
        server.shutdown();
    }

    #[test]
    fn batch_solves_in_input_order() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instances\":[{inst},{inst}],\"solver\":\"greedy\"}}");
        let resp = client::post(server.addr(), "/v1/batch", &body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"instances\":2"), "{}", resp.body);
        let metrics = server.state().metrics();
        assert_eq!(metrics.batch_requests, 1);
        // Batch traffic must not leak into the per-solver /v1/solve
        // counters.
        assert!(metrics.solve_requests.iter().all(|s| s.requests == 0));
        server.shutdown();
    }

    #[test]
    fn default_solver_must_be_registered() {
        let err = Server::start(ServeConfig {
            default_solver: "greddy".to_string(),
            ..ServeConfig::default()
        })
        .map(|s| s.addr())
        .unwrap_err();
        assert!(err.to_string().contains("did you mean 'greedy'?"));
    }
}
