//! The service: a TCP acceptor, a bounded connection queue, and a
//! fixed worker pool, with the sharded result cache in front of the
//! solver engine.
//!
//! ## Concurrency model
//!
//! One acceptor thread blocks in `accept` and *tries* to enqueue each
//! connection into a `crossbeam::channel::bounded` queue. `try_send`
//! is the backpressure valve: when every worker is busy and the queue
//! is at capacity, the acceptor answers `503 Service Unavailable`
//! immediately — the client learns to back off in microseconds
//! instead of waiting in an unbounded line. Workers block in `recv`,
//! so an idle pool costs nothing.
//!
//! Each worker owns one [`DpWorkspace`] for its whole lifetime — the
//! same shared-nothing reuse discipline as the batch pipeline, so two
//! concurrent requests never share a DP buffer and results are
//! bit-identical to a direct [`solve_single_report`] call. The result
//! cache above the workers is the only cross-request state, and it
//! stores finished response bodies keyed by (solver, options,
//! canonical instance) — solvers are deterministic, so a hit is
//! byte-identical to the miss that populated it.

use crate::cache::{self, ResultCache};
use crate::http::{self, Request, RequestError};
use crate::metrics::Telemetry;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use fragalign_align::DpWorkspace;
use fragalign_core::engine::{TraceHandle, TraceSink};
use fragalign_core::{
    solve_single_traced, BatchOptions, EngineError, EngineOptions, SolveReport, SolverRegistry,
};
use fragalign_model::{Instance, MatchSet, Score};
use serde::{Serialize, Value};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything `fragalign serve` exposes as a flag.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker-pool size (each worker owns a warm DP workspace).
    pub workers: usize,
    /// Bounded connection-queue capacity; beyond it the acceptor
    /// answers 503.
    pub queue_depth: usize,
    /// Result-cache budget in MiB (0 disables caching).
    pub cache_mb: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Solver used when a request names none.
    pub default_solver: String,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Per-connection socket read/write timeout, seconds — a stalled
    /// client can hold a worker at most this long.
    pub io_timeout_secs: u64,
}

impl Default for ServeConfig {
    /// Loopback, 4 workers, queue of 64, 32 MiB cache over 16 shards,
    /// the shape-routing `auto` solver by default.
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_mb: 32,
            cache_shards: 16,
            default_solver: "auto".to_string(),
            max_body_bytes: 16 * 1024 * 1024,
            io_timeout_secs: 10,
        }
    }
}

/// State shared by the acceptor and every worker. Tests and the
/// `exp_service` load generator read the gauges through
/// [`Server::state`].
pub struct ServeState {
    /// All counters and gauges.
    pub telemetry: Telemetry,
    /// The sharded result cache.
    pub cache: ResultCache,
    default_solver: String,
    queue_capacity: usize,
    workers: usize,
    max_body_bytes: usize,
}

/// One accepted connection, stamped when it entered the queue so
/// recorded latency includes queue wait.
struct Job {
    stream: TcpStream,
    enqueued: Instant,
}

/// A running service; dropping it (or calling [`Server::shutdown`])
/// stops accepting, drains the queue, and joins every thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr`, spawn the acceptor and worker pool, and
    /// return the running server. Fails fast on an unbindable address
    /// or an unregistered default solver.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        SolverRegistry::global()
            .spec(&cfg.default_solver)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let state = Arc::new(ServeState {
            telemetry: Telemetry::new(),
            cache: ResultCache::new(cfg.cache_shards, cfg.cache_mb * 1024 * 1024),
            default_solver: cfg.default_solver.clone(),
            queue_capacity: cfg.queue_depth.max(1),
            workers,
            max_body_bytes: cfg.max_body_bytes,
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::bounded::<Job>(state.queue_capacity);
        let io_timeout = Duration::from_secs(cfg.io_timeout_secs.max(1));

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(rx, state))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptor = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || accept_loop(listener, tx, state, shutdown, io_timeout))
                .expect("spawn acceptor thread")
        };

        Ok(Server {
            addr,
            state,
            shutdown,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (the actual port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared gauges and cache, for tests and load harnesses.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Graceful stop: stop accepting, finish every queued and
    /// in-flight request, join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept; it re-checks
        // the flag on every connection.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        // The acceptor dropped the sender, so workers drain whatever
        // is queued and then see a disconnected channel.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl ServeState {
    /// The `/metrics` document for this instant.
    pub fn metrics(&self) -> crate::metrics::MetricsSnapshot {
        self.telemetry
            .snapshot(self.workers, self.queue_capacity, self.cache.stats())
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<Job>,
    state: Arc<ServeState>,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue, // transient accept failure
        };
        // Cap how long a silent client can hold a worker, and disable
        // Nagle so small JSON responses are not delayed.
        let _ = stream.set_read_timeout(Some(io_timeout));
        let _ = stream.set_write_timeout(Some(io_timeout));
        let _ = stream.set_nodelay(true);
        state.telemetry.note_queued();
        match tx.try_send(Job {
            stream,
            enqueued: Instant::now(),
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(mut job)) => {
                state.telemetry.note_dequeued();
                state.telemetry.record_rejected();
                let body = error_object(
                    "server busy: worker queue is full, retry shortly",
                    &[("queue_capacity", Value::Int(state.queue_capacity as i64))],
                );
                // Write the rejection off-thread: a rejected client
                // that never reads would otherwise stall the accept
                // loop for the whole write timeout — precisely during
                // overload, when accepts must stay cheap. The thread
                // lives at most one io_timeout.
                std::thread::spawn(move || {
                    let _ =
                        http::write_response(&mut job.stream, 503, &[("Retry-After", "1")], &body);
                    let _ = job.stream.shutdown(Shutdown::Write);
                });
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` here lets the workers drain and exit.
}

fn worker_loop(rx: Receiver<Job>, state: Arc<ServeState>) {
    let mut ws = DpWorkspace::new();
    while let Ok(mut job) = rx.recv() {
        state.telemetry.note_dequeued();
        state.telemetry.note_busy(true);
        // Queue wait ends here; everything after is service time. Total
        // latency (wait + service) stays in the original histogram so
        // existing p99 numbers keep their meaning.
        state.telemetry.record_queue_wait(job.enqueued.elapsed());
        let service_started = Instant::now();
        // Contain panics: a request that trips a solver bug must cost
        // that request a 500, not the pool a worker (N such requests
        // would otherwise silently wedge the whole service).
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(&mut job, &state, &mut ws)
        }));
        if outcome.is_err() {
            state.telemetry.record_response(500);
            let _ = http::write_response(
                &mut job.stream,
                500,
                &[],
                &error_object("internal error: request handler panicked", &[]),
            );
            // The unwound handler may have left the scratch workspace
            // mid-surgery; replace it rather than trust it.
            ws = DpWorkspace::new();
        }
        state.telemetry.record_service(service_started.elapsed());
        state.telemetry.record_latency(job.enqueued.elapsed());
        state.telemetry.note_busy(false);
    }
}

/// Read one request, route it, write one response, close. Socket
/// errors are swallowed — the client is gone and there is nobody to
/// tell.
fn handle_connection(job: &mut Job, state: &ServeState, ws: &mut DpWorkspace) {
    let request = match http::read_request(&mut job.stream, state.max_body_bytes) {
        Ok(r) => r,
        Err(RequestError::Io(_)) => return,
        Err(RequestError::Malformed(msg)) => {
            state.telemetry.record_response(400);
            let _ = http::write_response(&mut job.stream, 400, &[], &error_object(&msg, &[]));
            return;
        }
        Err(RequestError::Unimplemented(msg)) => {
            state.telemetry.record_response(501);
            let _ = http::write_response(&mut job.stream, 501, &[], &error_object(&msg, &[]));
            return;
        }
        Err(RequestError::BodyTooLarge { limit }) => {
            state.telemetry.record_response(413);
            let msg = format!("request body exceeds the {limit}-byte limit");
            let _ = http::write_response(&mut job.stream, 413, &[], &error_object(&msg, &[]));
            return;
        }
    };
    let reply = route(&request, state, ws);
    state.telemetry.record_response(reply.status);
    let extra: Vec<(&str, &str)> = match &reply.cache_marker {
        Some(marker) => vec![("X-Fragalign-Cache", *marker)],
        None => Vec::new(),
    };
    let _ = http::write_response_typed(
        &mut job.stream,
        reply.status,
        reply.content_type,
        &extra,
        &reply.body,
    );
}

/// A routed response: status, body, content type, and for `/v1/solve`
/// whether the cache answered.
struct Reply {
    status: u16,
    body: String,
    content_type: &'static str,
    cache_marker: Option<&'static str>,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply {
            status,
            body,
            content_type: "application/json",
            cache_marker: None,
        }
    }

    fn error(status: u16, message: &str) -> Reply {
        Reply::json(status, error_object(message, &[]))
    }
}

fn route(request: &Request, state: &ServeState, ws: &mut DpWorkspace) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(state),
        ("GET", "/metrics") => handle_metrics(request, state),
        ("GET", "/v1/solvers") => handle_solvers(),
        ("POST", "/v1/solve") => handle_solve(request, state, ws),
        ("POST", "/v1/batch") => handle_batch(request, state),
        (_, "/healthz" | "/metrics" | "/v1/solvers") => {
            Reply::error(405, "use GET on this endpoint")
        }
        (_, "/v1/solve" | "/v1/batch") => Reply::error(405, "use POST on this endpoint"),
        _ => Reply::json(
            404,
            error_object(
                &format!("no such endpoint {:?}", request.path),
                &[(
                    "endpoints",
                    Value::Array(
                        [
                            "POST /v1/solve",
                            "POST /v1/batch",
                            "GET /v1/solvers",
                            "GET /healthz",
                            "GET /metrics",
                        ]
                        .iter()
                        .map(|e| Value::Str((*e).to_string()))
                        .collect(),
                    ),
                )],
            ),
        ),
    }
}

fn handle_healthz(state: &ServeState) -> Reply {
    let body = Value::Object(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        (
            "uptime_secs".to_string(),
            Value::Float(state.metrics().uptime_secs),
        ),
    ]);
    Reply::json(
        200,
        serde_json::to_string(&body).expect("healthz serialises"),
    )
}

fn handle_metrics(request: &Request, state: &ServeState) -> Reply {
    match request.param("format") {
        // Prometheus text exposition 0.0.4, for scrape targets; the
        // JSON document stays the default for humans and tests.
        Some("prometheus") => Reply {
            status: 200,
            body: state.telemetry.prometheus(
                state.workers,
                state.queue_capacity,
                state.cache.stats(),
            ),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            cache_marker: None,
        },
        Some(other) => Reply::error(400, &format!("unknown format {other:?} (try prometheus)")),
        None => Reply::json(
            200,
            serde_json::to_string_pretty(&state.metrics()).expect("metrics serialises"),
        ),
    }
}

/// One `/v1/solvers` row, straight from the registry.
#[derive(Serialize)]
struct SolverRow {
    name: String,
    paper: String,
    ratio: String,
    in_portfolio: bool,
}

fn handle_solvers() -> Reply {
    let rows: Vec<SolverRow> = SolverRegistry::global()
        .specs()
        .iter()
        .map(|s| SolverRow {
            name: s.name.to_string(),
            paper: s.paper.to_string(),
            ratio: s.ratio.to_string(),
            in_portfolio: s.in_portfolio,
        })
        .collect();
    Reply::json(
        200,
        serde_json::to_string_pretty(&rows).expect("solver rows serialise"),
    )
}

/// The `/v1/solve` success body.
#[derive(Serialize)]
struct SolveResponse {
    solver: String,
    score: Score,
    matches: MatchSet,
    report: SolveReport,
}

fn handle_solve(request: &Request, state: &ServeState, ws: &mut DpWorkspace) -> Reply {
    let parsed = match parse_solve_request(&request.body, state, &["instance"]) {
        Ok(p) => p,
        Err(rejection) => {
            if rejection.unknown_solver {
                state.telemetry.record_unknown_solver();
            }
            return rejection.reply;
        }
    };
    let inst_value = parsed
        .doc
        .get("instance")
        .expect("checked by parse_solve_request");
    let inst = match decode_instance(inst_value) {
        Ok(inst) => inst,
        Err(msg) => return Reply::error(400, &msg),
    };
    // Count only fully-validated solve traffic, so `/metrics` per-
    // solver numbers mean "solves this solver was actually asked to
    // run", not "bodies that mentioned its name".
    state.telemetry.record_solve(parsed.position);

    // `?trace=1` turns on span recording for this one request. Traced
    // responses embed a timeline, so they bypass the cache in both
    // directions: a cached plain body has no trace to return, and a
    // traced body must not be served to plain requests.
    let traced = request.param("trace") == Some("1");
    // Canonicalise through the parsed instance so client formatting
    // (whitespace, pretty-printing) cannot split cache entries.
    let canonical = serde_json::to_string(&inst).expect("instances serialise");
    let key = cache::fingerprint(&format!(
        "{}\n{}\n{canonical}",
        parsed.solver,
        options_tag(&parsed.engine)
    ));
    if !traced {
        if let Some(body) = state.cache.get(key) {
            return Reply {
                status: 200,
                body: body.to_string(),
                content_type: "application/json",
                cache_marker: Some("hit"),
            };
        }
    }
    let opts = BatchOptions {
        solver: parsed.solver.clone(),
        engine: parsed.engine,
    };
    let sink = traced.then(TraceSink::new);
    let trace = sink
        .as_ref()
        .map_or_else(TraceHandle::disabled, |s| TraceHandle::new(Arc::clone(s)));
    let solve_started = Instant::now();
    match solve_single_traced(&inst, &opts, ws, trace) {
        Ok((solution, report)) => {
            state
                .telemetry
                .record_solve_latency(parsed.position, solve_started.elapsed());
            let mut body = serde_json::to_string(&SolveResponse {
                solver: parsed.solver,
                score: solution.score,
                matches: solution.matches,
                report,
            })
            .expect("solve response serialises");
            match sink {
                None => {
                    state.cache.insert(key, Arc::from(body.as_str()));
                    Reply {
                        status: 200,
                        body,
                        content_type: "application/json",
                        cache_marker: Some("miss"),
                    }
                }
                Some(sink) => {
                    // Splice the Chrome trace document into the
                    // response object: `{...}` → `{...,"trace":{...}}`.
                    let log = sink.drain();
                    state.telemetry.record_traced(log.dropped);
                    body.pop();
                    body.push_str(",\"trace\":");
                    body.push_str(&log.to_chrome_json());
                    body.push('}');
                    Reply {
                        status: 200,
                        body,
                        content_type: "application/json",
                        cache_marker: Some("bypass"),
                    }
                }
            }
        }
        Err(err) => engine_error_reply(err),
    }
}

/// The `/v1/batch` success body: one entry per instance, input order.
#[derive(Serialize)]
struct BatchResponse {
    solver: String,
    instances: usize,
    total_score: Score,
    results: Vec<BatchItem>,
}

/// One solved instance of a `/v1/batch` request.
#[derive(Serialize)]
struct BatchItem {
    score: Score,
    matches: MatchSet,
    report: SolveReport,
}

fn handle_batch(request: &Request, state: &ServeState) -> Reply {
    state.telemetry.record_batch();
    let parsed = match parse_solve_request(&request.body, state, &["instances"]) {
        Ok(p) => p,
        Err(rejection) => return rejection.reply,
    };
    let Some(list) = parsed.doc.get("instances").and_then(Value::as_array) else {
        return Reply::error(400, "field \"instances\" must be an array of instances");
    };
    let mut instances = Vec::with_capacity(list.len());
    for (i, value) in list.iter().enumerate() {
        match decode_instance(value) {
            Ok(inst) => instances.push(inst),
            Err(msg) => return Reply::error(400, &format!("instances[{i}]: {msg}")),
        }
    }
    let opts = BatchOptions {
        solver: parsed.solver.clone(),
        engine: parsed.engine,
    };
    // `core::batch` does the mapping: per-worker workspaces under the
    // rayon shim today, real data parallelism once the shim swap
    // lands — the service inherits it either way.
    match fragalign_core::solve_batch_reports(&instances, &opts) {
        Ok(results) => {
            let body = BatchResponse {
                solver: parsed.solver,
                instances: results.len(),
                total_score: results.iter().map(|(s, _)| s.score).sum(),
                results: results
                    .into_iter()
                    .map(|(solution, report)| BatchItem {
                        score: solution.score,
                        matches: solution.matches,
                        report,
                    })
                    .collect(),
            };
            Reply::json(200, serde_json::to_string(&body).expect("batch serialises"))
        }
        Err(err) => engine_error_reply(err),
    }
}

/// The fields shared by `/v1/solve` and `/v1/batch` bodies, already
/// validated: the parsed document, the resolved solver name, and the
/// engine options.
struct ParsedSolveRequest {
    doc: Value,
    solver: String,
    /// The solver's registry position, for per-solver counters.
    position: usize,
    engine: EngineOptions,
}

/// Why a solve-shaped body was refused: the response to send, plus
/// whether the cause was an unregistered solver name (so `/v1/solve`
/// can count those separately without re-parsing the reply).
struct ParseRejection {
    reply: Reply,
    unknown_solver: bool,
}

impl From<Reply> for ParseRejection {
    fn from(reply: Reply) -> Self {
        ParseRejection {
            reply,
            unknown_solver: false,
        }
    }
}

/// Parse and validate a solve-shaped request body: JSON object, no
/// unknown top-level keys, a registered solver (else the friendly
/// 400), well-formed options. `payload_key` is the endpoint's
/// instance-carrying field. Pure parsing — telemetry is the caller's
/// business, so `/v1/batch` traffic never leaks into `/v1/solve`
/// counters.
fn parse_solve_request(
    body: &str,
    state: &ServeState,
    payload_key: &[&str],
) -> Result<ParsedSolveRequest, ParseRejection> {
    let doc: Value = serde_json::from_str(body)
        .map_err(|e| Reply::error(400, &format!("request body is not valid JSON: {e}")))?;
    let Some(fields) = doc.as_object() else {
        return Err(Reply::error(400, "request body must be a JSON object").into());
    };
    for (key, _) in fields {
        if key != "solver" && key != "options" && !payload_key.contains(&key.as_str()) {
            return Err(Reply::error(
                400,
                &format!(
                    "unknown field {key:?} (allowed: {}, solver, options)",
                    payload_key.join(", ")
                ),
            )
            .into());
        }
    }
    for required in payload_key {
        if doc.get(required).is_none() {
            return Err(Reply::error(400, &format!("missing required field {required:?}")).into());
        }
    }
    let solver = match doc.get("solver") {
        None => state.default_solver.clone(),
        Some(Value::Str(s)) => s.clone(),
        Some(_) => return Err(Reply::error(400, "field \"solver\" must be a string").into()),
    };
    if let Err(err) = SolverRegistry::global().spec(&solver) {
        return Err(ParseRejection {
            reply: engine_error_reply(err),
            unknown_solver: true,
        });
    }
    let position = SolverRegistry::global()
        .position(&solver)
        .expect("solver resolved above");
    let engine = match doc.get("options") {
        None => EngineOptions::default(),
        Some(v) => engine_options_from(v).map_err(|msg| Reply::error(400, &msg))?,
    };
    Ok(ParsedSolveRequest {
        doc,
        solver,
        position,
        engine,
    })
}

/// Decode, re-index, and validate one instance value.
fn decode_instance(value: &Value) -> Result<Instance, String> {
    let mut inst: Instance =
        serde_json::from_value(value.clone()).map_err(|e| format!("bad instance: {e}"))?;
    inst.alphabet.rebuild_index();
    inst.validate()
        .map_err(|e| format!("invalid instance: {e}"))?;
    Ok(inst)
}

/// Strict `options` object → [`EngineOptions`]; every field optional,
/// unknown fields rejected so typos fail loudly instead of silently
/// keeping a default.
fn engine_options_from(value: &Value) -> Result<EngineOptions, String> {
    let Some(fields) = value.as_object() else {
        return Err("field \"options\" must be an object".to_string());
    };
    let mut opts = EngineOptions::default();
    for (key, val) in fields {
        match key.as_str() {
            "scaling" => opts.scaling = expect_bool(val, "options.scaling")?,
            "reuse_workspaces" => {
                opts.reuse_workspaces = expect_bool(val, "options.reuse_workspaces")?
            }
            "exact_limits" => {
                let Some(limits) = val.as_object() else {
                    return Err("options.exact_limits must be an object".to_string());
                };
                for (lkey, lval) in limits {
                    match lkey.as_str() {
                        "max_frags" => {
                            opts.exact_limits.max_frags =
                                expect_usize(lval, "options.exact_limits.max_frags")?
                        }
                        "max_regions" => {
                            opts.exact_limits.max_regions =
                                expect_usize(lval, "options.exact_limits.max_regions")?
                        }
                        other => {
                            return Err(format!(
                                "unknown field options.exact_limits.{other} (allowed: max_frags, max_regions)"
                            ))
                        }
                    }
                }
            }
            other => {
                return Err(format!(
                "unknown field options.{other} (allowed: scaling, reuse_workspaces, exact_limits)"
            ))
            }
        }
    }
    Ok(opts)
}

fn expect_bool(value: &Value, what: &str) -> Result<bool, String> {
    match value {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("{what} must be a boolean")),
    }
}

fn expect_usize(value: &Value, what: &str) -> Result<usize, String> {
    match value {
        Value::Int(i) if *i >= 0 => Ok(*i as usize),
        _ => Err(format!("{what} must be a non-negative integer")),
    }
}

/// The options part of the cache key. `reuse_workspaces` never
/// changes scores, but it does change the telemetry embedded in the
/// cached body, so it participates.
fn options_tag(opts: &EngineOptions) -> String {
    format!(
        "scaling={} reuse={} max_frags={} max_regions={}",
        opts.scaling,
        opts.reuse_workspaces,
        opts.exact_limits.max_frags,
        opts.exact_limits.max_regions
    )
}

/// Engine refusals as HTTP errors: unknown solver → 400 listing every
/// registered name (plus a did-you-mean hint when one is close);
/// solver/instance mismatch → 400 with the solver's explanation.
fn engine_error_reply(err: EngineError) -> Reply {
    match &err {
        EngineError::UnknownSolver {
            known, suggestion, ..
        } => {
            let mut extra = vec![(
                "known",
                Value::Array(known.iter().map(|n| Value::Str((*n).to_string())).collect()),
            )];
            if let Some(s) = suggestion {
                extra.push(("suggestion", Value::Str((*s).to_string())));
            }
            Reply::json(400, error_object(&err.to_string(), &extra))
        }
        EngineError::Unsupported { .. } => Reply::error(400, &err.to_string()),
    }
}

/// `{"error": message, ...extra}` as compact JSON.
fn error_object(message: &str, extra: &[(&str, Value)]) -> String {
    let mut fields = vec![("error".to_string(), Value::Str(message.to_string()))];
    for (key, value) in extra {
        fields.push(((*key).to_string(), value.clone()));
    }
    serde_json::to_string(&Value::Object(fields)).expect("error body serialises")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use fragalign_model::instance::paper_example;

    fn test_server() -> Server {
        Server::start(ServeConfig {
            workers: 2,
            queue_depth: 8,
            ..ServeConfig::default()
        })
        .expect("server starts")
    }

    #[test]
    fn healthz_and_metrics_roundtrip() {
        let server = test_server();
        let health = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"status\":\"ok\""));
        let metrics = client::get(server.addr(), "/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        for field in ["uptime_secs", "solve_requests", "p99_ms", "hit_rate"] {
            assert!(metrics.body.contains(field), "missing {field}");
        }
        server.shutdown();
    }

    #[test]
    fn solvers_listing_matches_registry() {
        let server = test_server();
        let resp = client::get(server.addr(), "/v1/solvers").unwrap();
        assert_eq!(resp.status, 200);
        for name in SolverRegistry::global().names() {
            assert!(
                resp.body.contains(&format!("\"name\": \"{name}\"")),
                "{name}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn solve_caches_and_solves() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instance\":{inst},\"solver\":\"csr\"}}");
        let first = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(first.status, 200, "{}", first.body);
        assert_eq!(first.header("x-fragalign-cache"), Some("miss"));
        assert!(first.body.contains("\"score\":11"), "{}", first.body);
        let second = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(second.header("x-fragalign-cache"), Some("hit"));
        assert_eq!(first.body, second.body);
        let stats = server.state().cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        server.shutdown();
    }

    #[test]
    fn prometheus_metrics_format() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instance\":{inst},\"solver\":\"greedy\"}}");
        let solved = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(solved.status, 200, "{}", solved.body);
        let resp = client::get(server.addr(), "/metrics?format=prometheus").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.header("content-type"),
            Some("text/plain; version=0.0.4; charset=utf-8")
        );
        for needle in [
            "# TYPE fragalign_requests_total counter",
            "fragalign_solve_requests_total{solver=\"greedy\"} 1",
            "fragalign_solve_duration_seconds_bucket{solver=\"greedy\",le=\"+Inf\"} 1",
            "fragalign_queue_wait_seconds_count 2",
            "fragalign_service_seconds_count 1",
            "fragalign_cache_evictions_total 0",
            "fragalign_trace_events_dropped_total 0",
        ] {
            assert!(
                resp.body.contains(needle),
                "missing {needle}\n{}",
                resp.body
            );
        }
        let bad = client::get(server.addr(), "/metrics?format=xml").unwrap();
        assert_eq!(bad.status, 400);
        server.shutdown();
    }

    #[test]
    fn traced_solve_embeds_timeline_and_bypasses_cache() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instance\":{inst},\"solver\":\"csr\"}}");
        // Warm the cache with a plain solve, then trace the same
        // request: the traced reply must not be the cached body.
        let plain = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(plain.header("x-fragalign-cache"), Some("miss"));
        let traced = client::post(server.addr(), "/v1/solve?trace=1", &body).unwrap();
        assert_eq!(traced.status, 200, "{}", traced.body);
        assert_eq!(traced.header("x-fragalign-cache"), Some("bypass"));
        assert!(traced.body.contains("\"trace\":{"), "{}", traced.body);
        assert!(
            traced.body.contains("\"name\":\"solve:csr\""),
            "{}",
            traced.body
        );
        // Identical solve result, tracing aside.
        let score = |b: &str| {
            b.split("\"score\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .map(str::to_string)
        };
        assert_eq!(score(&plain.body), score(&traced.body));
        // A traced body never lands in the cache: the next plain
        // request is still answered by the original cached entry.
        let again = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(again.header("x-fragalign-cache"), Some("hit"));
        assert_eq!(again.body, plain.body);
        assert_eq!(server.state().metrics().traced_requests, 1);
        server.shutdown();
    }

    #[test]
    fn rejects_unknown_fields_and_bad_options() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        for (body, needle) in [
            ("{]".to_string(), "not valid JSON"),
            ("[]".to_string(), "must be a JSON object"),
            ("{}".to_string(), "missing required field"),
            (
                format!("{{\"instance\":{inst},\"solvr\":\"csr\"}}"),
                "unknown field \\\"solvr\\\"",
            ),
            (
                format!("{{\"instance\":{inst},\"options\":{{\"scaling\":3}}}}"),
                "options.scaling must be a boolean",
            ),
            (
                format!("{{\"instance\":{inst},\"options\":{{\"sclaing\":true}}}}"),
                "unknown field options.sclaing",
            ),
        ] {
            let resp = client::post(server.addr(), "/v1/solve", &body).unwrap();
            assert_eq!(resp.status, 400, "{body} → {}", resp.body);
            assert!(resp.body.contains(needle), "{body} → {}", resp.body);
        }
        server.shutdown();
    }

    #[test]
    fn unknown_solver_is_a_friendly_400() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instance\":{inst},\"solver\":\"greddy\"}}");
        let resp = client::post(server.addr(), "/v1/solve", &body).unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"known\""), "{}", resp.body);
        assert!(
            resp.body.contains("\"suggestion\":\"greedy\""),
            "{}",
            resp.body
        );
        assert_eq!(server.state().metrics().unknown_solver_requests, 1);
        server.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_mapped() {
        let server = test_server();
        let resp = client::get(server.addr(), "/nope").unwrap();
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("endpoints"));
        let resp = client::post(server.addr(), "/healthz", "{}").unwrap();
        assert_eq!(resp.status, 405);
        let resp = client::get(server.addr(), "/v1/solve").unwrap();
        assert_eq!(resp.status, 405);
        server.shutdown();
    }

    #[test]
    fn batch_solves_in_input_order() {
        let server = test_server();
        let inst = serde_json::to_string(&paper_example()).unwrap();
        let body = format!("{{\"instances\":[{inst},{inst}],\"solver\":\"greedy\"}}");
        let resp = client::post(server.addr(), "/v1/batch", &body).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"instances\":2"), "{}", resp.body);
        let metrics = server.state().metrics();
        assert_eq!(metrics.batch_requests, 1);
        // Batch traffic must not leak into the per-solver /v1/solve
        // counters.
        assert!(metrics.solve_requests.iter().all(|s| s.requests == 0));
        server.shutdown();
    }

    #[test]
    fn default_solver_must_be_registered() {
        let err = Server::start(ServeConfig {
            default_solver: "greddy".to_string(),
            ..ServeConfig::default()
        })
        .map(|s| s.addr())
        .unwrap_err();
        assert!(err.to_string().contains("did you mean 'greedy'?"));
    }
}
