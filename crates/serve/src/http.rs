//! Minimal HTTP/1.1 framing: request parsing and response writing.
//!
//! Scope is exactly what the service needs — `GET`/`POST` with
//! `Content-Length` bodies. Since the event-driven rewrite the parser
//! is buffer-based: [`try_parse`] inspects whatever bytes have
//! arrived so far and either asks for more ([`Parse::Incomplete`]) or
//! yields one request plus the number of bytes it consumed
//! ([`Parse::Ready`]), so a connection buffer can carry leftover
//! pipelined bytes forward to the next request. Keep-alive follows
//! HTTP/1.1 semantics (persistent by default, `Connection: close`
//! honoured both ways, HTTP/1.0 closes unless `keep-alive` is asked
//! for). Chunked transfer encoding is refused with `501`, and
//! `Expect: 100-continue` (which `curl` sends for large instance
//! uploads) is honoured so command-line sessions work out of the box.

use std::io::{Read, Write};

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 32 * 1024;

/// A parsed request: method, path, query, lower-cased headers, UTF-8
/// body.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target up to (excluding) any `?` — the route key.
    pub path: String,
    /// Everything after the first `?` of the target (`""` when the
    /// target carried no query). Split but not percent-decoded: the
    /// service's knobs (`trace=1`, `format=prometheus`) are plain
    /// tokens.
    pub query: String,
    /// Header `(name, value)` pairs; names lower-cased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body, decoded as UTF-8 (JSON is UTF-8 by spec).
    pub body: String,
    /// Whether the connection persists after this exchange: HTTP/1.1
    /// defaults to `true`, HTTP/1.0 to `false`, and a `Connection`
    /// header token (`close` / `keep-alive`) overrides either way.
    pub keep_alive: bool,
    /// The request carried `Expect: 100-continue` with a non-empty
    /// body, so an interim `100 Continue` is owed before (or with)
    /// the final response.
    pub expect_continue: bool,
}

impl Request {
    /// First value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name` (`?a=1&b` gives
    /// `param("a") == Some("1")`, `param("b") == Some("")`).
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter(|p| !p.is_empty())
            .map(|p| p.split_once('=').unwrap_or((p, "")))
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }
}

/// Why a request could not be read. The server maps `Malformed` to
/// `400`, `Unimplemented` to `501`, `BodyTooLarge` to `413`, and
/// drops the connection on raw I/O failure.
#[derive(Debug)]
pub enum RequestError {
    /// The socket failed mid-read (client went away, timeout).
    Io(std::io::Error),
    /// The bytes were not an HTTP/1.x request this parser accepts.
    Malformed(String),
    /// A feature outside this parser's scope (chunked encoding).
    Unimplemented(String),
    /// `Content-Length` exceeded the configured body cap.
    BodyTooLarge {
        /// The configured cap, for the error response.
        limit: usize,
    },
}

impl From<std::io::Error> for RequestError {
    fn from(e: std::io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// What [`try_parse`] made of the buffer so far.
#[derive(Debug)]
pub enum Parse {
    /// Not enough bytes for a full request yet; read more and retry.
    Incomplete {
        /// The head is complete and announced `Expect: 100-continue`,
        /// but the body has not fully arrived — the server should send
        /// the interim `100 Continue` now (once) to unblock the client.
        needs_continue: bool,
    },
    /// One full request parsed.
    Ready {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed; everything past
        /// `consumed` belongs to the next (pipelined) request.
        consumed: usize,
    },
}

/// Parse one request from the front of `buf` without consuming it.
/// Errors are terminal for the connection: the caller answers with
/// the mapped status and closes, because after a framing error the
/// byte stream can no longer be trusted to delimit requests.
pub fn try_parse(buf: &[u8], max_body: usize) -> Result<Parse, RequestError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::Malformed(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        return Ok(Parse::Incomplete {
            needs_continue: false,
        });
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line: {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!(
                "bad header line: {line:?}"
            )));
        };
        // RFC 7230 §3.2.4: no whitespace between the field name and
        // the colon. Trimming it instead (as proxies sometimes do)
        // opens a request-smuggling hole when a front end and a back
        // end disagree on which bytes name the header.
        if name.is_empty() || name.contains(|c: char| c.is_ascii_whitespace()) {
            return Err(RequestError::Malformed(format!(
                "bad header field name: {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let (path, query) = match path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (path, ""),
    };
    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        headers,
        body: String::new(),
        keep_alive: version != "HTTP/1.0",
        expect_continue: false,
    };
    // A `Connection` header overrides the version default either way;
    // the value is a comma-separated token list (`keep-alive, TE`).
    let mut keep_alive = request.keep_alive;
    if let Some(conn) = request.header("connection") {
        for token in conn.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if token.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    request.keep_alive = keep_alive;

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(RequestError::Unimplemented(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }
    // Every Content-Length must be digits-only (`usize::from_str`
    // would take a leading `+`) and duplicates must agree — another
    // RFC 7230 smuggling vector if first-match-wins differs between
    // hops.
    let mut content_length: usize = 0;
    let mut seen_length = false;
    for (name, v) in &request.headers {
        if name != "content-length" {
            continue;
        }
        if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
            return Err(RequestError::Malformed(format!("bad Content-Length {v:?}")));
        }
        let parsed: usize = v
            .parse()
            .map_err(|_| RequestError::Malformed(format!("bad Content-Length {v:?}")))?;
        if seen_length && parsed != content_length {
            return Err(RequestError::Malformed(format!(
                "conflicting Content-Length headers ({content_length} vs {parsed})"
            )));
        }
        content_length = parsed;
        seen_length = true;
    }
    if content_length > max_body {
        return Err(RequestError::BodyTooLarge { limit: max_body });
    }
    request.expect_continue = content_length > 0
        && request
            .header("expect")
            .is_some_and(|v| v.to_ascii_lowercase().contains("100-continue"));

    let body_start = head_end + 4;
    if buf.len() - body_start < content_length {
        return Ok(Parse::Incomplete {
            needs_continue: request.expect_continue,
        });
    }
    // Bytes past the body belong to the next pipelined request — the
    // caller keeps them in its buffer.
    let consumed = body_start + content_length;
    request.body = String::from_utf8(buf[body_start..consumed].to_vec())
        .map_err(|_| RequestError::Malformed("request body is not UTF-8".into()))?;
    Ok(Parse::Ready { request, consumed })
}

/// Read and parse one request from `stream`, answering `Expect:
/// 100-continue` inline (the stream must be writable for that). The
/// blocking convenience over [`try_parse`] — used by tests and the
/// one-shot client path; the server's event loop parses buffers
/// directly.
pub fn read_request<S: Read + Write>(
    stream: &mut S,
    max_body: usize,
) -> Result<Request, RequestError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut sent_continue = false;
    loop {
        match try_parse(&buf, max_body)? {
            Parse::Ready { request, .. } => {
                // The historical contract: the interim 100 goes out
                // even when the body was already buffered, so clients
                // that wait on it never stall.
                if request.expect_continue && !sent_continue {
                    stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
                    stream.flush()?;
                }
                return Ok(request);
            }
            Parse::Incomplete { needs_continue } => {
                if needs_continue && !sent_continue {
                    stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
                    stream.flush()?;
                    sent_continue = true;
                }
                let mut chunk = [0u8; 4096];
                let n = stream.read(&mut chunk)?;
                if n == 0 {
                    return Err(RequestError::Malformed(
                        "connection closed before the request completed".into(),
                    ));
                }
                buf.extend_from_slice(&chunk[..n]);
            }
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The canonical reason phrase for the status codes this service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Render a complete response to bytes: status line, standard headers
/// (`Content-Type`, `Content-Length`, `Connection` per `keep_alive`),
/// any `extra` headers, then `body`. The event loop queues these into
/// per-connection write buffers.
pub fn render_response(
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Write a complete JSON response with `Connection: close` — the
/// one-shot convenience for paths that end the connection anyway.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", extra, body)
}

/// [`write_response`] with an explicit `Content-Type` (the Prometheus
/// exposition is `text/plain`).
pub fn write_response_typed(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    stream.write_all(&render_response(status, content_type, extra, body, false))?;
    stream.flush()
}

/// Write a complete response honouring `keep_alive` — what workers
/// use so persistent connections advertise `Connection: keep-alive`.
pub fn write_response_conn(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&render_response(
        status,
        content_type,
        extra,
        body,
        keep_alive,
    ))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A duplex test stream: reads from a script, records writes.
    struct Pipe {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Pipe {
        fn new(input: &str) -> Self {
            Pipe {
                input: std::io::Cursor::new(input.as_bytes().to_vec()),
                output: Vec::new(),
            }
        }
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn parses_post_with_body() {
        let mut pipe =
            Pipe::new("POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}");
        let req = read_request(&mut pipe, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, "{\"a\":1}");
        assert!(req.keep_alive, "HTTP/1.1 persists by default");
    }

    #[test]
    fn splits_query_from_path() {
        let mut pipe = Pipe::new("GET /metrics?format=prometheus&x HTTP/1.1\r\nHost: a\r\n\r\n");
        let req = read_request(&mut pipe, 1024).unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query, "format=prometheus&x");
        assert_eq!(req.param("format"), Some("prometheus"));
        assert_eq!(req.param("x"), Some(""));
        assert_eq!(req.param("missing"), None);

        let mut pipe = Pipe::new("GET /healthz HTTP/1.1\r\n\r\n");
        let req = read_request(&mut pipe, 1024).unwrap();
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "");
        assert_eq!(req.param("trace"), None);
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        let parse = |raw: &str| match try_parse(raw.as_bytes(), 1024).unwrap() {
            Parse::Ready { request, .. } => request,
            other => panic!("expected Ready, got {other:?}"),
        };
        assert!(parse("GET / HTTP/1.1\r\n\r\n").keep_alive);
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").keep_alive);
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
        assert!(!parse("GET / HTTP/1.1\r\nConnection: TE, Close\r\n\r\n").keep_alive);
    }

    #[test]
    fn pipelined_requests_consume_exactly_their_bytes() {
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\n";
        let Parse::Ready { request, consumed } = try_parse(raw, 1024).unwrap() else {
            panic!("first request should parse");
        };
        assert_eq!(request.path, "/a");
        assert_eq!(request.body, "abc");
        let Parse::Ready {
            request,
            consumed: c2,
        } = try_parse(&raw[consumed..], 1024).unwrap()
        else {
            panic!("second request should parse");
        };
        assert_eq!(request.path, "/b");
        assert_eq!(consumed + c2, raw.len());
    }

    #[test]
    fn incomplete_buffers_ask_for_more() {
        assert!(matches!(
            try_parse(b"GET / HTT", 1024),
            Ok(Parse::Incomplete {
                needs_continue: false
            })
        ));
        assert!(matches!(
            try_parse(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab", 1024),
            Ok(Parse::Incomplete {
                needs_continue: false
            })
        ));
        assert!(matches!(
            try_parse(
                b"POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 5\r\n\r\n",
                1024
            ),
            Ok(Parse::Incomplete {
                needs_continue: true
            })
        ));
    }

    #[test]
    fn answers_expect_100_continue() {
        let mut pipe = Pipe::new(
            "POST /v1/solve HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n{}",
        );
        let req = read_request(&mut pipe, 1024).unwrap();
        assert_eq!(req.body, "{}");
        assert!(String::from_utf8(pipe.output)
            .unwrap()
            .starts_with("HTTP/1.1 100 Continue"));
    }

    #[test]
    fn rejects_oversized_bodies_and_chunked_encoding() {
        let mut pipe = Pipe::new("POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n");
        assert!(matches!(
            read_request(&mut pipe, 100),
            Err(RequestError::BodyTooLarge { limit: 100 })
        ));
        let mut pipe = Pipe::new("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(matches!(
            read_request(&mut pipe, 100),
            Err(RequestError::Unimplemented(_))
        ));
    }

    #[test]
    fn rejects_torn_and_malformed_requests() {
        let mut pipe = Pipe::new("GET /healthz HTTP/1.1\r\n"); // head never ends
        assert!(matches!(
            read_request(&mut pipe, 1024),
            Err(RequestError::Malformed(_))
        ));
        let mut pipe = Pipe::new("NONSENSE\r\n\r\n");
        assert!(matches!(
            read_request(&mut pipe, 1024),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_whitespace_before_header_colon() {
        // RFC 7230 §3.2.4: `Content-Length : 7` must be refused, not
        // silently repaired into a valid header.
        let mut pipe = Pipe::new("POST / HTTP/1.1\r\nContent-Length : 7\r\n\r\n{\"a\":1}");
        assert!(matches!(
            read_request(&mut pipe, 1024),
            Err(RequestError::Malformed(_))
        ));
        let mut pipe = Pipe::new("GET / HTTP/1.1\r\n\tHost: x\r\n\r\n");
        assert!(matches!(
            read_request(&mut pipe, 1024),
            Err(RequestError::Malformed(_))
        ));
        let mut pipe = Pipe::new("GET / HTTP/1.1\r\n: novalue\r\n\r\n");
        assert!(matches!(
            read_request(&mut pipe, 1024),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn content_length_must_be_digits_only() {
        // `usize::from_str` would happily take `+7`; the wire grammar
        // is 1*DIGIT.
        // (OWS around the value is legal and trimmed; the value
        // itself must be 1*DIGIT.)
        for bad in ["+7", "-7", "0x7", "7a", ""] {
            let mut pipe = Pipe::new(&format!("POST / HTTP/1.1\r\nContent-Length:{bad}\r\n\r\n"));
            assert!(
                matches!(
                    read_request(&mut pipe, 1024),
                    Err(RequestError::Malformed(_))
                ),
                "Content-Length {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn duplicate_content_lengths_must_agree() {
        let mut pipe =
            Pipe::new("POST / HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 2\r\n\r\n{\"a\":1}");
        assert!(matches!(
            read_request(&mut pipe, 1024),
            Err(RequestError::Malformed(_))
        ));
        // Identical duplicates are fine (RFC 7230 §3.3.2 allows them).
        let mut pipe =
            Pipe::new("POST / HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7\r\n\r\n{\"a\":1}");
        assert_eq!(read_request(&mut pipe, 1024).unwrap().body, "{\"a\":1}");
    }

    #[test]
    fn response_has_framing_headers() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            &[("Retry-After", "1")],
            "{\"error\":\"busy\"}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"busy\"}"));
    }

    #[test]
    fn keep_alive_responses_differ_only_in_connection_header() {
        let open =
            String::from_utf8(render_response(200, "application/json", &[], "{}", true)).unwrap();
        let closed =
            String::from_utf8(render_response(200, "application/json", &[], "{}", false)).unwrap();
        assert!(open.contains("Connection: keep-alive\r\n"));
        assert!(closed.contains("Connection: close\r\n"));
        assert_eq!(
            open.replace("Connection: keep-alive", "Connection: close"),
            closed
        );
    }
}
