//! A hand-rolled `poll(2)` readiness binding — the event loop's only
//! system dependency beyond std.
//!
//! Same no-new-deps discipline as the CLI's `signal(2)` binding: std
//! already links libc on every supported platform, so a one-line
//! `extern "C"` declaration gives us level-triggered readiness
//! without the `libc` crate, let alone mio or tokio. The surface is
//! deliberately tiny — an interest list rebuilt every iteration and a
//! blocking wait — because the server polls a few thousand fds at
//! most and rebuild cost is dwarfed by a single syscall.
//!
//! On non-unix targets there is no `poll(2)`; the fallback sleeps
//! briefly and reports every registered fd ready. That degrades the
//! event loop to a ~2 ms spin — correct (all loop I/O is nonblocking
//! and handles `WouldBlock`) but wasteful, which is exactly the
//! honesty rule the shims follow: degrade loudly in docs, never
//! silently change semantics.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// A raw file descriptor as `poll(2)` sees it. On non-unix targets
/// the value is a placeholder — the fallback never dereferences it.
pub type Fd = i32;

/// The descriptor behind a listener, for [`Poller::register`].
#[cfg(unix)]
pub fn listener_fd(l: &TcpListener) -> Fd {
    use std::os::unix::io::AsRawFd;
    l.as_raw_fd()
}

/// The descriptor behind a stream, for [`Poller::register`].
#[cfg(unix)]
pub fn stream_fd(s: &TcpStream) -> Fd {
    use std::os::unix::io::AsRawFd;
    s.as_raw_fd()
}

#[cfg(not(unix))]
pub fn listener_fd(_l: &TcpListener) -> Fd {
    0
}

#[cfg(not(unix))]
pub fn stream_fd(_s: &TcpStream) -> Fd {
    0
}

#[cfg(unix)]
mod sys {
    use super::Fd;

    /// `struct pollfd` from `<poll.h>`; layout is identical on every
    /// unix std supports (two shorts after an int).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: Fd,
        pub events: i16,
        pub revents: i16,
    }

    /// `nfds_t`: `unsigned long` on Linux, `unsigned int` on the BSDs
    /// and macOS.
    #[cfg(target_os = "linux")]
    pub type NfdsT = u64;
    #[cfg(not(target_os = "linux"))]
    pub type NfdsT = u32;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }
}

#[cfg(not(unix))]
mod sys {
    use super::Fd;

    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: Fd,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
}

/// A reusable interest list over `poll(2)`. The event loop clears it,
/// registers every live fd, waits, then reads per-slot readiness by
/// the index `register` returned.
pub struct Poller {
    fds: Vec<sys::PollFd>,
}

impl Poller {
    /// An empty interest list.
    pub fn new() -> Self {
        Poller { fds: Vec::new() }
    }

    /// Drop all registered interest (start of an event-loop turn).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Register `fd` with read and/or write interest; returns the
    /// slot index for [`Poller::readable`]/[`Poller::writable`] after
    /// the wait.
    pub fn register(&mut self, fd: Fd, read: bool, write: bool) -> usize {
        let mut events = 0i16;
        if read {
            events |= sys::POLLIN;
        }
        if write {
            events |= sys::POLLOUT;
        }
        self.fds.push(sys::PollFd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses (`None` blocks forever). Returns the ready count; 0 on
    /// timeout or an interrupting signal (the loop just turns again).
    #[cfg(unix)]
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // +999_999 ns rounds up so a 1 ns deadline is not a busy
            // 0 ms spin.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        let rc = unsafe {
            sys::poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as sys::NfdsT,
                timeout_ms,
            )
        };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            // A signal (ctrl-c during shutdown) woke the wait; report
            // nothing ready and let the loop re-check its flags.
            return Ok(0);
        }
        Err(err)
    }

    /// Fallback wait: sleep briefly, then report every slot ready.
    /// All loop I/O is nonblocking, so spurious readiness only costs
    /// a `WouldBlock` per fd.
    #[cfg(not(unix))]
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        let nap = timeout
            .unwrap_or(Duration::from_millis(2))
            .min(Duration::from_millis(2));
        std::thread::sleep(nap);
        for slot in &mut self.fds {
            slot.revents = slot.events;
        }
        Ok(self.fds.len())
    }

    /// Whether slot `i` is readable — `POLLERR`/`POLLHUP` count, so a
    /// dead socket surfaces through the next `read` instead of being
    /// polled forever.
    pub fn readable(&self, i: usize) -> bool {
        self.fds[i].revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP) != 0
    }

    /// Whether slot `i` is writable (or errored — same rationale).
    pub fn writable(&self, i: usize) -> bool {
        self.fds[i].revents & (sys::POLLOUT | sys::POLLERR | sys::POLLHUP) != 0
    }
}

impl Default for Poller {
    fn default() -> Self {
        Poller::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    #[test]
    fn reports_a_connectable_listener_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new();

        // Nothing pending: a short wait times out with nothing ready.
        poller.clear();
        let slot = poller.register(listener_fd(&listener), true, false);
        let n = poller.wait(Some(Duration::from_millis(10))).unwrap();
        #[cfg(unix)]
        {
            assert_eq!(n, 0);
            assert!(!poller.readable(slot));
        }
        #[cfg(not(unix))]
        let _ = (n, slot);

        // A pending connection flips the listener readable.
        let client = TcpStream::connect(addr).unwrap();
        poller.clear();
        let slot = poller.register(listener_fd(&listener), true, false);
        let n = poller.wait(Some(Duration::from_millis(2000))).unwrap();
        assert!(n >= 1);
        assert!(poller.readable(slot));
        drop(client);
    }

    #[test]
    fn reports_stream_readability_on_data_and_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new();
        poller.clear();
        let slot = poller.register(stream_fd(&server_side), true, false);
        #[cfg(unix)]
        assert_eq!(poller.wait(Some(Duration::from_millis(10))).unwrap(), 0);

        client.write_all(b"x").unwrap();
        client.flush().unwrap();
        poller.clear();
        let slot2 = poller.register(stream_fd(&server_side), true, false);
        assert!(poller.wait(Some(Duration::from_millis(2000))).unwrap() >= 1);
        assert!(poller.readable(slot2));
        let mut byte = [0u8; 8];
        let mut s = &server_side;
        assert_eq!(s.read(&mut byte).unwrap(), 1);

        // EOF is also readability (read returns Ok(0)).
        drop(client);
        poller.clear();
        let slot3 = poller.register(stream_fd(&server_side), true, false);
        assert!(poller.wait(Some(Duration::from_millis(2000))).unwrap() >= 1);
        assert!(poller.readable(slot3));
        assert_eq!(s.read(&mut byte).unwrap(), 0);
        let _ = slot;
    }

    #[test]
    fn write_interest_reports_writable_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let mut poller = Poller::new();
        poller.clear();
        let slot = poller.register(stream_fd(&client), false, true);
        assert!(poller.wait(Some(Duration::from_millis(2000))).unwrap() >= 1);
        assert!(poller.writable(slot));
    }
}
